#include "nn/linear.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace rptcn::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features) {
  RPTCN_CHECK(in_features > 0 && out_features > 0,
              "Linear dims must be positive");
  weight_ = register_parameter(
      "weight",
      xavier_uniform({out_features, in_features}, in_features, out_features,
                     rng));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_features}));
}

Variable Linear::forward(const Variable& x) const {
  return ag::linear(x, weight_, bias_);
}

}  // namespace rptcn::nn
