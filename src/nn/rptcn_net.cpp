#include "nn/rptcn_net.h"

#include "autograd/ops.h"

namespace rptcn::nn {

namespace {
Conv1dOptions fc_options() {
  Conv1dOptions o;
  o.kernel_size = 1;
  o.dilation = 1;
  o.causal = true;
  o.bias = true;
  o.weight_norm = false;
  return o;
}
}  // namespace

RptcnNet::RptcnNet(const RptcnOptions& options)
    : options_(options),
      rng_(options.seed),
      tcn_(options.input_features, options.tcn, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("tcn", tcn_);
  const std::size_t backbone_dim = tcn_.output_channels();
  std::size_t feat_dim = backbone_dim;
  if (options_.use_fc) {
    fc_ = std::make_unique<Conv1d>(backbone_dim, options_.fc_dim, fc_options(),
                                   rng_);
    register_module("fc", *fc_);
    feat_dim = options_.fc_dim;
  }
  if (options_.use_attention) {
    attention_ = std::make_unique<TemporalAttention>(feat_dim, rng_);
    register_module("attention", *attention_);
  }
  head_ = std::make_unique<Linear>(feat_dim, options_.horizon, rng_);
  register_module("head", *head_);
}

Variable RptcnNet::forward(const Variable& x) {
  RPTCN_CHECK(x.value().rank() == 3, "RptcnNet expects [N,F,T], got "
                                         << x.value().shape_string());
  RPTCN_CHECK(x.dim(1) == options_.input_features,
              "feature mismatch: got " << x.dim(1) << ", expected "
                                       << options_.input_features);
  Variable h = tcn_.forward(x, rng_);  // [N, C, T]
  if (fc_) h = ag::relu(fc_->forward(h));
  Variable summary;
  if (attention_) {
    auto att = attention_->forward(h);
    last_attention_ = att.weights.value();
    // The attention glimpse has no positional signal of its own, so it is
    // combined residually with the most recent timestep's features: the
    // attention re-weights history (eqs. 7-8) on top of the standard causal
    // readout instead of replacing it.
    summary = ag::add(att.glimpse, ag::time_slice(h, h.dim(2) - 1));
  } else {
    // Ablation: summarise with the last timestep (standard TCN readout).
    last_attention_.reset();
    summary = ag::time_slice(h, h.dim(2) - 1);
  }
  return head_->forward(summary);  // [N, horizon]
}

std::optional<Tensor> RptcnNet::last_attention_weights() const {
  return last_attention_;
}

}  // namespace rptcn::nn
