// LSTM baseline (Hochreiter & Schmidhuber), unrolled through the autograd
// tape. Used both standalone (the paper's LSTM baseline) and inside the
// CNN-LSTM baseline.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace rptcn::nn {

/// Single-layer LSTM over [N, F, T] sequences, returning the final hidden
/// state [N, H]. Gates use separate input/recurrent weights per gate;
/// forget-gate bias is initialised to 1 (standard trick for gradient flow).
class Lstm : public Module {
 public:
  Lstm(std::size_t input_features, std::size_t hidden, Rng& rng);

  /// x: [N, F, T] -> final hidden state [N, H].
  Variable forward(const Variable& x) const;

  std::size_t hidden_size() const { return hidden_; }

 private:
  struct Gate {
    Variable wx;  ///< [H, F]
    Variable wh;  ///< [H, H]
    Variable b;   ///< [H]
  };
  Gate make_gate(const char* name, std::size_t input_features, Rng& rng,
                 float bias_init);
  Variable gate_pre(const Gate& g, const Variable& xt,
                    const Variable& h) const;

  std::size_t hidden_;
  Gate input_gate_;
  Gate forget_gate_;
  Gate cell_gate_;
  Gate output_gate_;
};

struct LstmNetOptions {
  std::size_t input_features = 1;
  std::size_t hidden = 32;
  std::size_t horizon = 1;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

/// LSTM regressor: LSTM -> dropout -> linear head [N, horizon].
class LstmNet : public Module {
 public:
  explicit LstmNet(const LstmNetOptions& options);

  /// x: [N, F, T] -> [N, horizon].
  Variable forward(const Variable& x);

  const LstmNetOptions& options() const { return options_; }

 private:
  LstmNetOptions options_;
  Rng rng_;
  Lstm lstm_;
  Linear head_;
};

struct BiLstmNetOptions {
  std::size_t input_features = 1;
  std::size_t hidden = 24;
  std::size_t horizon = 1;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

/// Bidirectional LSTM regressor (the related-work baseline of Gupta &
/// Dinesh 2017): forward and backward passes over the fully observed input
/// window, concatenated final hidden states, linear head. Valid for
/// forecasting because the window lies entirely in the past.
class BiLstmNet : public Module {
 public:
  explicit BiLstmNet(const BiLstmNetOptions& options);

  /// x: [N, F, T] -> [N, horizon].
  Variable forward(const Variable& x);

  const BiLstmNetOptions& options() const { return options_; }

 private:
  BiLstmNetOptions options_;
  Rng rng_;
  Lstm forward_lstm_;
  Lstm backward_lstm_;
  Linear head_;
};

}  // namespace rptcn::nn
