// LSTM baseline (Hochreiter & Schmidhuber), unrolled through the autograd
// tape. Used both standalone (the paper's LSTM baseline) and inside the
// CNN-LSTM baseline.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace rptcn::nn {

/// Single-layer LSTM over [N, F, T] sequences, returning the final hidden
/// state [N, H]. All four gates share one packed weight [4H, F+H] (row
/// blocks i, f, g, o; columns [0,F) input, [F,F+H) recurrent), so each
/// timestep costs a single fused pre-activation GEMM instead of eight small
/// ones. Forget-gate bias rows are initialised to 1 (standard trick for
/// gradient flow); the per-gate init draws match the historical unfused
/// layout exactly.
class Lstm : public Module {
 public:
  Lstm(std::size_t input_features, std::size_t hidden, Rng& rng);

  /// x: [N, F, T] -> final hidden state [N, H].
  Variable forward(const Variable& x) const;

  std::size_t hidden_size() const { return hidden_; }

  // Parameter access for the tape-free weight snapshot (src/serve).
  const Variable& gate_weights() const { return w_; }
  const Variable& gate_biases() const { return b_; }

 private:
  std::size_t hidden_;
  Variable w_;  ///< [4H, F+H] packed gate weights (rows: i, f, g, o)
  Variable b_;  ///< [4H] packed gate biases
};

struct LstmNetOptions {
  std::size_t input_features = 1;
  std::size_t hidden = 32;
  std::size_t horizon = 1;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

/// LSTM regressor: LSTM -> dropout -> linear head [N, horizon].
class LstmNet : public Module {
 public:
  explicit LstmNet(const LstmNetOptions& options);

  /// x: [N, F, T] -> [N, horizon].
  Variable forward(const Variable& x);

  const LstmNetOptions& options() const { return options_; }
  const Lstm& lstm() const { return lstm_; }
  const Linear& head() const { return head_; }

 private:
  LstmNetOptions options_;
  Rng rng_;
  Lstm lstm_;
  Linear head_;
};

struct BiLstmNetOptions {
  std::size_t input_features = 1;
  std::size_t hidden = 24;
  std::size_t horizon = 1;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

/// Bidirectional LSTM regressor (the related-work baseline of Gupta &
/// Dinesh 2017): forward and backward passes over the fully observed input
/// window, concatenated final hidden states, linear head. Valid for
/// forecasting because the window lies entirely in the past.
class BiLstmNet : public Module {
 public:
  explicit BiLstmNet(const BiLstmNetOptions& options);

  /// x: [N, F, T] -> [N, horizon].
  Variable forward(const Variable& x);

  const BiLstmNetOptions& options() const { return options_; }
  const Lstm& forward_lstm() const { return forward_lstm_; }
  const Lstm& backward_lstm() const { return backward_lstm_; }
  const Linear& head() const { return head_; }

 private:
  BiLstmNetOptions options_;
  Rng rng_;
  Lstm forward_lstm_;
  Lstm backward_lstm_;
  Linear head_;
};

}  // namespace rptcn::nn
