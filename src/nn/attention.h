// Temporal attention (paper eqs. 7 and 8).
//
// Given feature maps z in [N, C, T], a small attention network f_phi (a
// per-timestep linear scorer) produces logits over time, softmax yields the
// attention vector a, and the attention glimpse g = a ⊙ z is reduced over
// time to a fixed-size summary [N, C]. This is what lets RPTCN re-weight
// "performance indicators at different moments" before the forecast head.
#pragma once

#include "nn/conv1d.h"
#include "nn/module.h"

namespace rptcn::nn {

class TemporalAttention : public Module {
 public:
  TemporalAttention(std::size_t channels, Rng& rng);

  struct Output {
    Variable glimpse;  ///< [N, C] time-weighted feature summary
    Variable weights;  ///< [N, 1, T] attention distribution (sums to 1 over T)
  };

  /// z: [N, C, T] -> glimpse [N, C] plus the attention weights.
  Output forward(const Variable& z) const;

  const Conv1d& scorer() const { return scorer_; }

 private:
  Conv1d scorer_;  ///< 1x1 conv = per-timestep linear scorer f_phi
};

}  // namespace rptcn::nn
