// Weight initialisation schemes.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rptcn::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)) — for ReLU networks.
Tensor he_normal(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng);

/// Uniform in [-1/sqrt(fan_in), 1/sqrt(fan_in)] — the classic LSTM default.
Tensor lecun_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                     Rng& rng);

}  // namespace rptcn::nn
