#include "nn/module.h"

#include "common/check.h"
#include "tensor/tensor_io.h"

namespace rptcn::nn {

std::vector<Variable> Module::parameters() const {
  std::vector<Variable> out;
  for (const auto& [name, p] : named_parameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_)
    for (const auto& [cname, p] : child->named_parameters())
      out.emplace_back(name + "." + cname, p);
  return out;
}

std::size_t Module::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.size();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::save(const std::string& path) const {
  std::vector<std::pair<std::string, Tensor>> items;
  for (const auto& [name, p] : named_parameters())
    items.emplace_back(name, p.value());
  write_tensors_file(path, items);
}

void Module::load(const std::string& path) {
  const auto items = read_tensors_file(path);
  auto params = named_parameters();
  RPTCN_CHECK(items.size() == params.size(),
              "checkpoint has " << items.size() << " tensors, model has "
                                << params.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    RPTCN_CHECK(items[i].first == params[i].first,
                "checkpoint order mismatch at " << items[i].first << " vs "
                                                << params[i].first);
    RPTCN_CHECK(items[i].second.same_shape(params[i].second.value()),
                "checkpoint shape mismatch for " << items[i].first);
    params[i].second.mutable_value() = items[i].second;
  }
  bump_weights_version();
}

std::uint64_t Module::weights_version() const {
  std::uint64_t v = weights_version_;
  for (const auto& [name, child] : children_) v += child->weights_version();
  return v;
}

Variable Module::register_parameter(std::string name, Tensor value) {
  Variable p(std::move(value), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), p);
  return p;
}

void Module::register_module(std::string name, Module& child) {
  children_.emplace_back(std::move(name), &child);
}

}  // namespace rptcn::nn
