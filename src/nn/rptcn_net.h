// RPTCN network — the paper's primary contribution (Fig. 5).
//
// Architecture: dilated-causal TCN backbone -> per-timestep fully connected
// layer (linear recombination of the convolutional features, eq. 6) ->
// temporal attention (eqs. 7-8) -> linear forecast head emitting the next
// `horizon` values of the predicted resource.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "nn/tcn.h"

namespace rptcn::nn {

struct RptcnOptions {
  std::size_t input_features = 1;  ///< indicator channels after expansion
  std::size_t horizon = 1;         ///< forecast steps (cpu_{m+1..m+k})
  TcnOptions tcn;                  ///< backbone configuration
  std::size_t fc_dim = 32;         ///< width of the per-timestep FC layer
  bool use_attention = true;       ///< ablation switch
  bool use_fc = true;              ///< ablation switch
  std::uint64_t seed = 42;         ///< init + dropout stream
};

class RptcnNet : public Module {
 public:
  explicit RptcnNet(const RptcnOptions& options);

  /// x: [N, F, T] -> forecast [N, horizon].
  Variable forward(const Variable& x);

  /// Attention weights [N, 1, T] of the most recent forward pass
  /// (empty optional when attention is disabled).
  std::optional<Tensor> last_attention_weights() const;

  const RptcnOptions& options() const { return options_; }

  // Layer access for the tape-free weight snapshot (src/serve).
  const Tcn& tcn() const { return tcn_; }
  const Conv1d* fc() const { return fc_.get(); }
  const TemporalAttention* attention() const { return attention_.get(); }
  const Linear& head() const { return *head_; }

 private:
  RptcnOptions options_;
  Rng rng_;
  Tcn tcn_;
  std::unique_ptr<Conv1d> fc_;  ///< 1x1 conv = per-timestep FC
  std::unique_ptr<TemporalAttention> attention_;
  std::unique_ptr<Linear> head_;
  std::optional<Tensor> last_attention_;
};

}  // namespace rptcn::nn
