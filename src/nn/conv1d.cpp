#include "nn/conv1d.h"

#include <cmath>

#include "autograd/ops.h"
#include "nn/init.h"

namespace rptcn::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               const Conv1dOptions& options, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      options_(options) {
  RPTCN_CHECK(in_channels > 0 && out_channels > 0,
              "Conv1d channels must be positive");
  RPTCN_CHECK(options.kernel_size > 0, "Conv1d kernel must be positive");
  RPTCN_CHECK(options.dilation > 0, "Conv1d dilation must be positive");

  // Reference-TCN style initialisation: small normal weights keep the
  // activation variance flat through the residual stack (He init compounds
  // ~2x per conv here and makes the first epochs chase a huge output scale).
  const float init_std =
      1.0f / std::sqrt(static_cast<float>(in_channels * options.kernel_size) *
                       4.0f);
  Tensor w = Tensor::randn({out_channels, in_channels, options.kernel_size},
                           rng, 0.0f, init_std);
  if (options_.weight_norm) {
    // Standard init: g_c = ||v_c|| so the effective weight equals v at t=0.
    Tensor g({out_channels});
    const std::size_t row = in_channels * options.kernel_size;
    for (std::size_t c = 0; c < out_channels; ++c) {
      double s = 0.0;
      for (std::size_t i = 0; i < row; ++i) {
        const float v = w[c * row + i];
        s += static_cast<double>(v) * v;
      }
      g.at(c) = static_cast<float>(std::sqrt(s));
    }
    weight_v_ = register_parameter("v", std::move(w));
    gain_ = register_parameter("g", std::move(g));
  } else {
    weight_v_ = register_parameter("weight", std::move(w));
  }
  if (options.bias)
    bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

Variable Conv1d::forward(const Variable& x) const {
  const Variable w = options_.weight_norm
                         ? ag::weight_norm(weight_v_, gain_)
                         : weight_v_;
  const std::ptrdiff_t pad = options_.causal ? -1 : 0;
  return ag::conv1d(x, w, bias_, options_.dilation, pad);
}

}  // namespace rptcn::nn
