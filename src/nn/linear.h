// Fully connected layer (paper eq. 6: y = Wx + b).
#pragma once

#include "nn/module.h"

namespace rptcn {
class Rng;
}

namespace rptcn::nn {

class Linear : public Module {
 public:
  /// Weight [out, in] Xavier-initialised; bias zero unless disabled.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool bias = true);

  /// x: [N, in] -> [N, out].
  Variable forward(const Variable& x) const;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  // Parameter access for the tape-free weight snapshot (src/serve).
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }  ///< undefined unless bias

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Variable weight_;
  Variable bias_;
};

}  // namespace rptcn::nn
