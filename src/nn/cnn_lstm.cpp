#include "nn/cnn_lstm.h"

#include "autograd/ops.h"

namespace rptcn::nn {

namespace {
Conv1dOptions conv_options(const CnnLstmOptions& o) {
  Conv1dOptions c;
  c.kernel_size = o.kernel_size;
  c.dilation = 1;
  c.causal = true;
  c.bias = true;
  c.weight_norm = false;
  return c;
}
}  // namespace

CnnLstm::CnnLstm(const CnnLstmOptions& options)
    : options_(options),
      rng_(options.seed),
      conv_(options.input_features, options.conv_channels,
            conv_options(options), rng_),
      lstm_(options.conv_channels, options.hidden, rng_),
      head_(options.hidden, options.horizon, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("conv", conv_);
  register_module("lstm", lstm_);
  register_module("head", head_);
}

Variable CnnLstm::forward(const Variable& x) {
  Variable h = ag::relu(conv_.forward(x));  // [N, C, T]
  h = lstm_.forward(h);                     // [N, H]
  h = ag::dropout(h, options_.dropout, rng_, training());
  return head_.forward(h);
}

}  // namespace rptcn::nn
