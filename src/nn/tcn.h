// Temporal convolutional network (Bai et al. 2018), as used by the paper.
//
// TemporalBlock is the residual unit of Fig. 6: two weight-normalised
// dilated causal convolutions, each followed by ReLU and spatial dropout,
// plus a 1x1-convolution shortcut when channel counts differ; the block
// output is Activation(x + F(x)) (eq. 5). TCN stacks blocks with
// exponentially growing dilation (1, 2, 4, ...), giving receptive field
// 1 + sum_i 2*(K-1)*d_i.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/conv1d.h"
#include "nn/module.h"

namespace rptcn::nn {

class TemporalBlock : public Module {
 public:
  TemporalBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t kernel_size, std::size_t dilation, float dropout,
                Rng& rng);

  /// x: [N, Cin, T] -> [N, Cout, T].
  Variable forward(const Variable& x, Rng& rng) const;

  // Layer access for the tape-free weight snapshot (src/serve).
  const Conv1d& conv1() const { return conv1_; }
  const Conv1d& conv2() const { return conv2_; }
  const Conv1d* shortcut() const { return shortcut_.get(); }

 private:
  Conv1d conv1_;
  Conv1d conv2_;
  std::unique_ptr<Conv1d> shortcut_;  ///< 1x1 conv when Cin != Cout
  float dropout_;
};

struct TcnOptions {
  std::vector<std::size_t> channels = {16, 16, 16};  ///< one entry per block
  std::size_t kernel_size = 3;
  float dropout = 0.1f;
  std::size_t dilation_base = 2;  ///< dilation of block i = base^i
};

class Tcn : public Module {
 public:
  Tcn(std::size_t input_channels, const TcnOptions& options, Rng& rng);

  /// x: [N, F, T] -> [N, channels.back(), T].
  Variable forward(const Variable& x, Rng& rng) const;

  std::size_t output_channels() const;
  /// Timesteps of history that influence the last output step.
  std::size_t receptive_field() const;
  const TcnOptions& options() const { return options_; }
  const std::vector<std::unique_ptr<TemporalBlock>>& blocks() const {
    return blocks_;
  }

 private:
  TcnOptions options_;
  std::vector<std::unique_ptr<TemporalBlock>> blocks_;
};

}  // namespace rptcn::nn
