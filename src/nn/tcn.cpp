#include "nn/tcn.h"

#include "autograd/ops.h"

namespace rptcn::nn {

namespace {
Conv1dOptions block_conv_options(std::size_t kernel_size, std::size_t dilation) {
  Conv1dOptions o;
  o.kernel_size = kernel_size;
  o.dilation = dilation;
  o.causal = true;
  o.bias = true;
  o.weight_norm = true;
  return o;
}

Conv1dOptions shortcut_options() {
  Conv1dOptions o;
  o.kernel_size = 1;
  o.dilation = 1;
  o.causal = true;  // k=1: no padding either way
  o.bias = true;
  o.weight_norm = false;
  return o;
}
}  // namespace

TemporalBlock::TemporalBlock(std::size_t in_channels, std::size_t out_channels,
                             std::size_t kernel_size, std::size_t dilation,
                             float dropout, Rng& rng)
    : conv1_(in_channels, out_channels,
             block_conv_options(kernel_size, dilation), rng),
      conv2_(out_channels, out_channels,
             block_conv_options(kernel_size, dilation), rng),
      dropout_(dropout) {
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  if (in_channels != out_channels) {
    shortcut_ = std::make_unique<Conv1d>(in_channels, out_channels,
                                         shortcut_options(), rng);
    register_module("shortcut", *shortcut_);
  }
}

Variable TemporalBlock::forward(const Variable& x, Rng& rng) const {
  Variable h = ag::relu(conv1_.forward(x));
  h = ag::spatial_dropout(h, dropout_, rng, training());
  h = ag::relu(conv2_.forward(h));
  h = ag::spatial_dropout(h, dropout_, rng, training());
  const Variable res = shortcut_ ? shortcut_->forward(x) : x;
  return ag::relu(ag::add(res, h));  // eq. (5)
}

Tcn::Tcn(std::size_t input_channels, const TcnOptions& options, Rng& rng)
    : options_(options) {
  RPTCN_CHECK(!options.channels.empty(), "TCN needs at least one block");
  RPTCN_CHECK(options.dilation_base >= 1, "dilation base must be >= 1");
  std::size_t in_ch = input_channels;
  std::size_t dilation = 1;
  for (std::size_t i = 0; i < options.channels.size(); ++i) {
    blocks_.push_back(std::make_unique<TemporalBlock>(
        in_ch, options.channels[i], options.kernel_size, dilation,
        options.dropout, rng));
    register_module("block" + std::to_string(i), *blocks_.back());
    in_ch = options.channels[i];
    dilation *= options.dilation_base;
  }
}

Variable Tcn::forward(const Variable& x, Rng& rng) const {
  Variable h = x;
  for (const auto& block : blocks_) h = block->forward(h, rng);
  return h;
}

std::size_t Tcn::output_channels() const { return options_.channels.back(); }

std::size_t Tcn::receptive_field() const {
  std::size_t field = 1;
  std::size_t dilation = 1;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    field += 2 * (options_.kernel_size - 1) * dilation;  // two convs per block
    dilation *= options_.dilation_base;
  }
  return field;
}

}  // namespace rptcn::nn
