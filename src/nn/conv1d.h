// Dilated causal 1-D convolution layer, with optional weight normalisation
// (the paper's residual blocks always weight-normalise; the 1x1 shortcut and
// the per-timestep FC layer do not).
#pragma once

#include "nn/module.h"

namespace rptcn {
class Rng;
}

namespace rptcn::nn {

struct Conv1dOptions {
  std::size_t kernel_size = 3;
  std::size_t dilation = 1;
  bool causal = true;        ///< left-pad (K-1)*dilation so T is preserved
  bool bias = true;
  bool weight_norm = false;  ///< reparameterise w = g * v/||v|| per channel
};

class Conv1d : public Module {
 public:
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         const Conv1dOptions& options, Rng& rng);

  /// x: [N, Cin, T] -> [N, Cout, T] (causal) or shorter (valid).
  Variable forward(const Variable& x) const;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  const Conv1dOptions& options() const { return options_; }

  // Parameter access for the tape-free weight snapshot (src/serve).
  const Variable& weight_v() const { return weight_v_; }
  const Variable& gain() const { return gain_; }  ///< undefined unless weight_norm
  const Variable& bias() const { return bias_; }  ///< undefined unless bias

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  Conv1dOptions options_;
  Variable weight_v_;  ///< direction (or the plain weight if !weight_norm)
  Variable gain_;      ///< per-channel magnitude g (weight_norm only)
  Variable bias_;
};

}  // namespace rptcn::nn
