// Module base class: parameter registry, train/eval mode, checkpointing.
//
// Modules own their submodules as ordinary members and register them (and
// their parameters) by name in the constructor. parameters() walks the tree.
// Unlike framework-scale libraries there is no virtual forward — each layer
// exposes a typed forward for its activation shape.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace rptcn::nn {

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Variable> parameters() const;
  /// Parameters with hierarchical dotted names ("block0.conv1.v", ...).
  std::vector<std::pair<std::string, Variable>> named_parameters() const;

  /// Total scalar parameter count.
  std::size_t parameter_count() const;

  /// Clear gradients of every parameter.
  void zero_grad();

  /// Switch between training (dropout active) and evaluation mode.
  void set_training(bool training);
  bool training() const { return training_; }

  /// Save/load all parameters by name to a checkpoint file.
  void save(const std::string& path) const;
  void load(const std::string& path);

  /// Monotonic counter over out-of-plan parameter mutations (checkpoint
  /// restore, best-epoch rollback, hot-swap loads), summed over children.
  /// Anything that bakes parameter-derived state (prepacked GEMM panels,
  /// captured training plans) records this at capture and re-validates at
  /// replay — one invalidation mechanism for every mutation path.
  /// In-plan optimizer updates intentionally do NOT bump it.
  std::uint64_t weights_version() const;
  /// Record an out-of-plan mutation of this module's parameters.
  void bump_weights_version() { ++weights_version_; }

 protected:
  /// Create and register a trainable parameter.
  Variable register_parameter(std::string name, Tensor value);
  /// Register a child module (must outlive this module — it is a member).
  void register_module(std::string name, Module& child);

 private:
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
  std::uint64_t weights_version_ = 0;
};

}  // namespace rptcn::nn
