// CNN-LSTM baseline (Ouhame et al. 2021, as cited by the paper): a causal
// convolutional feature extractor feeding an LSTM, with a linear head.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"

namespace rptcn::nn {

struct CnnLstmOptions {
  std::size_t input_features = 1;
  std::size_t conv_channels = 16;
  std::size_t kernel_size = 3;
  std::size_t hidden = 32;
  std::size_t horizon = 1;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

class CnnLstm : public Module {
 public:
  explicit CnnLstm(const CnnLstmOptions& options);

  /// x: [N, F, T] -> [N, horizon].
  Variable forward(const Variable& x);

  const CnnLstmOptions& options() const { return options_; }
  const Conv1d& conv() const { return conv_; }
  const Lstm& lstm() const { return lstm_; }
  const Linear& head() const { return head_; }

 private:
  CnnLstmOptions options_;
  Rng rng_;
  Conv1d conv_;
  Lstm lstm_;
  Linear head_;
};

}  // namespace rptcn::nn
