#include "nn/lstm.h"

#include <algorithm>

#include "autograd/ops.h"
#include "nn/init.h"
#include "obs/metrics.h"

namespace rptcn::nn {

namespace {

/// Registry handles for the recurrent-kernel counters, resolved once.
struct LstmMetrics {
  obs::Counter& steps = obs::metrics().counter("kernel/lstm_steps");
  obs::Counter& gate_flops = obs::metrics().counter("kernel/lstm_gate_flops");
};

LstmMetrics& lstm_metrics() {
  static LstmMetrics* m = new LstmMetrics();
  return *m;
}

}  // namespace

Lstm::Lstm(std::size_t input_features, std::size_t hidden, Rng& rng)
    : hidden_(hidden) {
  RPTCN_CHECK(input_features > 0 && hidden > 0, "Lstm dims must be positive");
  const std::size_t f = input_features, h = hidden;
  Tensor w = Tensor::zeros({4 * h, f + h});
  Tensor b = Tensor::zeros({4 * h});
  // Draw each gate's blocks in the historical order (gates i, f, g, o; the
  // input block before the recurrent block, each with its own fan-in) so the
  // packed layout reproduces the unfused per-gate init statistics exactly.
  for (std::size_t gate = 0; gate < 4; ++gate) {
    const Tensor wx = lecun_uniform({h, f}, f, rng);
    const Tensor wh = lecun_uniform({h, h}, h, rng);
    for (std::size_t r = 0; r < h; ++r) {
      float* row = w.raw() + (gate * h + r) * (f + h);
      std::copy_n(wx.raw() + r * f, f, row);
      std::copy_n(wh.raw() + r * h, h, row + f);
    }
  }
  std::fill_n(b.raw() + h, h, 1.0f);  // forget-gate bias = 1
  w_ = register_parameter("gates.w", std::move(w));
  b_ = register_parameter("gates.b", std::move(b));
}

Variable Lstm::forward(const Variable& x) const {
  RPTCN_CHECK(x.value().rank() == 3, "Lstm expects [N,F,T], got "
                                         << x.value().shape_string());
  const std::size_t n = x.dim(0), t_len = x.dim(2);
  if (obs::enabled()) {
    const std::size_t f = x.dim(1);
    lstm_metrics().steps.add(t_len);
    // Gate pre-activation cost: per step one [N, F+H] x [F+H, 4H] GEMM.
    lstm_metrics().gate_flops.add(2ull * n * (f + hidden_) * 4 * hidden_ *
                                  t_len);
  }
  Variable h(Tensor::zeros({n, hidden_}));
  Variable c(Tensor::zeros({n, hidden_}));
  for (std::size_t t = 0; t < t_len; ++t) {
    const Variable xt = ag::time_slice(x, t);    // [N, F]
    const Variable xh = ag::concat_cols(xt, h);  // [N, F+H]
    // One fused GEMM yields all four gate pre-activations at once.
    const Variable pre = ag::linear(xh, w_, b_);  // [N, 4H]
    const Variable i = ag::sigmoid(ag::slice_cols(pre, 0, hidden_));
    const Variable f = ag::sigmoid(ag::slice_cols(pre, hidden_, hidden_));
    const Variable g = ag::tanh_v(ag::slice_cols(pre, 2 * hidden_, hidden_));
    const Variable o = ag::sigmoid(ag::slice_cols(pre, 3 * hidden_, hidden_));
    c = ag::add(ag::mul(f, c), ag::mul(i, g));
    h = ag::mul(o, ag::tanh_v(c));
  }
  return h;
}

LstmNet::LstmNet(const LstmNetOptions& options)
    : options_(options),
      rng_(options.seed),
      lstm_(options.input_features, options.hidden, rng_),
      head_(options.hidden, options.horizon, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("lstm", lstm_);
  register_module("head", head_);
}

Variable LstmNet::forward(const Variable& x) {
  Variable h = lstm_.forward(x);
  h = ag::dropout(h, options_.dropout, rng_, training());
  return head_.forward(h);
}

BiLstmNet::BiLstmNet(const BiLstmNetOptions& options)
    : options_(options),
      rng_(options.seed),
      forward_lstm_(options.input_features, options.hidden, rng_),
      backward_lstm_(options.input_features, options.hidden, rng_),
      head_(2 * options.hidden, options.horizon, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("fwd", forward_lstm_);
  register_module("bwd", backward_lstm_);
  register_module("head", head_);
}

Variable BiLstmNet::forward(const Variable& x) {
  const Variable h_fwd = forward_lstm_.forward(x);
  const Variable h_bwd = backward_lstm_.forward(ag::time_reverse(x));
  Variable h = ag::concat_cols(h_fwd, h_bwd);
  h = ag::dropout(h, options_.dropout, rng_, training());
  return head_.forward(h);
}

}  // namespace rptcn::nn
