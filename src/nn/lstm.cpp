#include "nn/lstm.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace rptcn::nn {

Lstm::Gate Lstm::make_gate(const char* name, std::size_t input_features,
                           Rng& rng, float bias_init) {
  Gate g;
  g.wx = register_parameter(std::string(name) + ".wx",
                            lecun_uniform({hidden_, input_features},
                                          input_features, rng));
  g.wh = register_parameter(std::string(name) + ".wh",
                            lecun_uniform({hidden_, hidden_}, hidden_, rng));
  g.b = register_parameter(std::string(name) + ".b",
                           Tensor::full({hidden_}, bias_init));
  return g;
}

Lstm::Lstm(std::size_t input_features, std::size_t hidden, Rng& rng)
    : hidden_(hidden) {
  RPTCN_CHECK(input_features > 0 && hidden > 0, "Lstm dims must be positive");
  input_gate_ = make_gate("i", input_features, rng, 0.0f);
  forget_gate_ = make_gate("f", input_features, rng, 1.0f);
  cell_gate_ = make_gate("g", input_features, rng, 0.0f);
  output_gate_ = make_gate("o", input_features, rng, 0.0f);
}

Variable Lstm::gate_pre(const Gate& g, const Variable& xt,
                        const Variable& h) const {
  // pre = xt wx^T + h wh^T + b  (bias added once, via the first linear)
  return ag::add(ag::linear(xt, g.wx, g.b), ag::linear(h, g.wh, Variable{}));
}

Variable Lstm::forward(const Variable& x) const {
  RPTCN_CHECK(x.value().rank() == 3, "Lstm expects [N,F,T], got "
                                         << x.value().shape_string());
  const std::size_t n = x.dim(0), t_len = x.dim(2);
  Variable h(Tensor::zeros({n, hidden_}));
  Variable c(Tensor::zeros({n, hidden_}));
  for (std::size_t t = 0; t < t_len; ++t) {
    const Variable xt = ag::time_slice(x, t);  // [N, F]
    const Variable i = ag::sigmoid(gate_pre(input_gate_, xt, h));
    const Variable f = ag::sigmoid(gate_pre(forget_gate_, xt, h));
    const Variable g = ag::tanh_v(gate_pre(cell_gate_, xt, h));
    const Variable o = ag::sigmoid(gate_pre(output_gate_, xt, h));
    c = ag::add(ag::mul(f, c), ag::mul(i, g));
    h = ag::mul(o, ag::tanh_v(c));
  }
  return h;
}

LstmNet::LstmNet(const LstmNetOptions& options)
    : options_(options),
      rng_(options.seed),
      lstm_(options.input_features, options.hidden, rng_),
      head_(options.hidden, options.horizon, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("lstm", lstm_);
  register_module("head", head_);
}

Variable LstmNet::forward(const Variable& x) {
  Variable h = lstm_.forward(x);
  h = ag::dropout(h, options_.dropout, rng_, training());
  return head_.forward(h);
}

BiLstmNet::BiLstmNet(const BiLstmNetOptions& options)
    : options_(options),
      rng_(options.seed),
      forward_lstm_(options.input_features, options.hidden, rng_),
      backward_lstm_(options.input_features, options.hidden, rng_),
      head_(2 * options.hidden, options.horizon, rng_) {
  RPTCN_CHECK(options.horizon > 0, "horizon must be positive");
  register_module("fwd", forward_lstm_);
  register_module("bwd", backward_lstm_);
  register_module("head", head_);
}

Variable BiLstmNet::forward(const Variable& x) {
  const Variable h_fwd = forward_lstm_.forward(x);
  const Variable h_bwd = backward_lstm_.forward(ag::time_reverse(x));
  Variable h = ag::concat_cols(h_fwd, h_bwd);
  h = ag::dropout(h, options_.dropout, rng_, training());
  return head_.forward(h);
}

}  // namespace rptcn::nn
