#include "nn/attention.h"

#include "autograd/ops.h"

namespace rptcn::nn {

namespace {
Conv1dOptions scorer_options() {
  Conv1dOptions o;
  o.kernel_size = 1;
  o.dilation = 1;
  o.causal = true;
  o.bias = true;
  o.weight_norm = false;
  return o;
}
}  // namespace

TemporalAttention::TemporalAttention(std::size_t channels, Rng& rng)
    : scorer_(channels, 1, scorer_options(), rng) {
  register_module("scorer", scorer_);
}

TemporalAttention::Output TemporalAttention::forward(const Variable& z) const {
  RPTCN_CHECK(z.value().rank() == 3, "attention expects [N,C,T]");
  const Variable logits = scorer_.forward(z);        // [N,1,T]
  const Variable a = ag::softmax_lastdim_v(logits);  // eq. (7)
  const Variable g = ag::mul_bcast_channel(a, z);    // eq. (8)
  return {ag::sum_lastdim(g), a};
}

}  // namespace rptcn::nn
