#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::nn {

Tensor xavier_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng) {
  RPTCN_CHECK(fan_in + fan_out > 0, "xavier needs positive fans");
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform(std::move(shape), rng, -a, a);
}

Tensor he_normal(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng) {
  RPTCN_CHECK(fan_in > 0, "he_normal needs positive fan_in");
  const float s = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, 0.0f, s);
}

Tensor lecun_uniform(std::vector<std::size_t> shape, std::size_t fan_in,
                     Rng& rng) {
  RPTCN_CHECK(fan_in > 0, "lecun_uniform needs positive fan_in");
  const float a = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::rand_uniform(std::move(shape), rng, -a, a);
}

}  // namespace rptcn::nn
