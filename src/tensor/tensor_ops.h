// Raw (non-autograd) tensor math.
//
// These kernels are the numeric substrate shared by the autograd layer and
// the classical baselines. The three GEMM variants (NN/TN/NT) share one
// blocked, packed, register-tiled kernel whose micro-kernel, pack routines,
// and transcendental loops come from the runtime-dispatched KernelTable
// (tensor/dispatch.h: scalar / avx2 / avx512 tiers, bit-identical across
// tiers). All kernels are branch-free on data and bit-deterministic for
// any thread count: parallelism is only ever over disjoint output rows, and
// per-element reduction order is fixed. Kernel-level OpenMP collapses to one
// thread while the experiment worker pool is saturated (see
// common/thread_pool.h).
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace rptcn {

// -- elementwise binary (shapes must match exactly) --------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// -- scalar ops ---------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

// -- in-place helpers ---------------------------------------------------------
/// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);
/// y *= s.
void scale_inplace(Tensor& y, float s);
/// y += x.
void add_inplace(Tensor& y, const Tensor& x);

// -- unary maps ---------------------------------------------------------------
Tensor map(const Tensor& a, const std::function<float(float)>& f);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor exp_t(const Tensor& a);
Tensor log_t(const Tensor& a);
Tensor sqrt_t(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs_t(const Tensor& a);

// -- reductions ----------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
/// L2 norm of all elements.
float norm2(const Tensor& a);
/// L2 norm of a raw span. norm2 delegates here; callers that hold gradient
/// slabs instead of Tensors (the planned training step) use it directly so
/// the double accumulation is the one this translation unit compiles.
float norm2_raw(const float* p, std::size_t n);
/// Row sums of a 2-D tensor -> rank-1 [rows].
Tensor sum_rows(const Tensor& a);
/// Column sums of a 2-D tensor -> rank-1 [cols].
Tensor sum_cols(const Tensor& a);

// -- linear algebra -------------------------------------------------------------
/// Raw GEMM entry point: C[m,n] += op(A)·op(B), where op transposes iff
/// trans_a/trans_b and lda/ldb are the *storage* leading dimensions. C must
/// be initialised by the caller (zeros, or a bias to accumulate onto). Same
/// blocked packed deterministic kernel as matmul/_tn/_nt; exposed for
/// callers that manage their own buffers — the conv1d im2col lowering in
/// autograd/ops.cpp drives all three of its GEMMs through this.
void gemm_accumulate(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, bool trans_a,
                     const float* b, std::size_t ldb, bool trans_b, float* c);

/// True iff gemm_accumulate(m,n,k,...) takes the blocked packed path rather
/// than the small-shape triple loop. Shape-only, never data-dependent; the
/// graph planner uses it to decide ahead of time whether a prepacked operand
/// is legal for a given batch shape (the two paths round differently when C
/// is prefilled with a bias, so a plan must make the same choice the eager
/// kernel makes).
bool gemm_uses_blocked(std::size_t m, std::size_t n, std::size_t k);

/// A GEMM B operand packed ahead of time into the blocked kernel's k-major
/// column panels — byte-for-byte the layout pack_b produces per k-panel on
/// the fly, so replaying through gemm_accumulate_packed_b is bit-identical
/// to gemm_accumulate on the unpacked operand. Prepacking a weight matrix
/// once (LSTM gate weights, linear heads) removes the per-call pack_b pass
/// and its scratch acquire from every replay.
struct PackedB {
  std::vector<float> data;              ///< concatenated per-k-panel packs
  std::vector<std::size_t> panel_off;   ///< float offset of each k-panel
  std::size_t k = 0;                    ///< logical rows of op(B)
  std::size_t n = 0;                    ///< logical cols of op(B)
  /// Panel width (nr) of the kernel tier that packed this operand. The
  /// layout is tier-dependent (avx512 packs 16-wide panels); replay checks
  /// it against the active tier and fails loudly on a mismatch, so packs
  /// cannot silently survive a test-hook arch switch.
  std::size_t nr = 0;
};

/// Pack op(B)[k,n] (transpose applied iff trans_b, ldb = storage leading
/// dimension) for gemm_accumulate_packed_b.
PackedB gemm_pack_b(const float* b, std::size_t ldb, bool trans_b,
                    std::size_t k, std::size_t n);

/// gemm_accumulate with a prepacked B. Only valid on shapes where
/// gemm_uses_blocked(m,n,k) holds (checked); bit-identical to the unpacked
/// call on those shapes.
void gemm_accumulate_packed_b(std::size_t m, std::size_t n, std::size_t k,
                              const float* a, std::size_t lda, bool trans_a,
                              const PackedB& b, float* c);

/// C = A[m,k] * B[k,n]; blocked + packed, OpenMP over row blocks.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T * B -> (k x n) given A[m,k], B[m,n]; same blocked kernel.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T -> (m x k) given A[m,n], B[k,n]; same blocked kernel.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose2d(const Tensor& a);
/// Matrix-vector product: A[m,n] * x[n] -> [m].
Tensor matvec(const Tensor& a, const Tensor& x);

// -- softmax ---------------------------------------------------------------------
/// Numerically stable softmax over the last dimension (any rank >= 1).
Tensor softmax_lastdim(const Tensor& a);

/// Raw row-wise kernel behind softmax_lastdim: `rows` independent rows of
/// `last` elements, in == out allowed. Exposed so the planned executor runs
/// the exact kernel (max-shift, shared exp, double-accumulated denominator)
/// the eager path runs.
void softmax_rows(const float* in, float* out, std::size_t rows,
                  std::size_t last);

/// Raw kernels behind sigmoid / tanh_t: p[i] = sigmoid(p[i]) (negate, shared
/// exp kernel, one rational pass — the exact sigmoid() pipeline) and
/// p[i] = tanh(p[i]). Exposed so the planned executor's fused LSTM gate op
/// evaluates transcendentals in this translation unit, with the same
/// compile flags and the same code paths as the eager ops.
void sigmoid_inplace(float* p, std::size_t n);
void tanh_inplace(float* p, std::size_t n);

// -- comparison (for tests) --------------------------------------------------------
/// True iff shapes match and every |a-b| <= atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace rptcn
