// Raw (non-autograd) tensor math.
//
// These kernels are the numeric substrate shared by the autograd layer and
// the classical baselines. The three GEMM variants (NN/TN/NT) share one
// blocked, packed, register-tiled kernel (8x8 fma micro-kernel, OpenMP over
// row blocks); the elementwise kernels are simple loops the compiler
// vectorises. All kernels are branch-free on data and bit-deterministic for
// any thread count: parallelism is only ever over disjoint output rows, and
// per-element reduction order is fixed. Kernel-level OpenMP collapses to one
// thread while the experiment worker pool is saturated (see
// common/thread_pool.h).
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace rptcn {

// -- elementwise binary (shapes must match exactly) --------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// -- scalar ops ---------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

// -- in-place helpers ---------------------------------------------------------
/// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);
/// y *= s.
void scale_inplace(Tensor& y, float s);
/// y += x.
void add_inplace(Tensor& y, const Tensor& x);

// -- unary maps ---------------------------------------------------------------
Tensor map(const Tensor& a, const std::function<float(float)>& f);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor exp_t(const Tensor& a);
Tensor log_t(const Tensor& a);
Tensor sqrt_t(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs_t(const Tensor& a);

// -- reductions ----------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
/// L2 norm of all elements.
float norm2(const Tensor& a);
/// Row sums of a 2-D tensor -> rank-1 [rows].
Tensor sum_rows(const Tensor& a);
/// Column sums of a 2-D tensor -> rank-1 [cols].
Tensor sum_cols(const Tensor& a);

// -- linear algebra -------------------------------------------------------------
/// Raw GEMM entry point: C[m,n] += op(A)·op(B), where op transposes iff
/// trans_a/trans_b and lda/ldb are the *storage* leading dimensions. C must
/// be initialised by the caller (zeros, or a bias to accumulate onto). Same
/// blocked packed deterministic kernel as matmul/_tn/_nt; exposed for
/// callers that manage their own buffers — the conv1d im2col lowering in
/// autograd/ops.cpp drives all three of its GEMMs through this.
void gemm_accumulate(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, bool trans_a,
                     const float* b, std::size_t ldb, bool trans_b, float* c);

/// C = A[m,k] * B[k,n]; blocked + packed, OpenMP over row blocks.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T * B -> (k x n) given A[m,k], B[m,n]; same blocked kernel.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T -> (m x k) given A[m,n], B[k,n]; same blocked kernel.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose2d(const Tensor& a);
/// Matrix-vector product: A[m,n] * x[n] -> [m].
Tensor matvec(const Tensor& a, const Tensor& x);

// -- softmax ---------------------------------------------------------------------
/// Numerically stable softmax over the last dimension (any rank >= 1).
Tensor softmax_lastdim(const Tensor& a);

// -- comparison (for tests) --------------------------------------------------------
/// True iff shapes match and every |a-b| <= atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace rptcn
