// Shared kernel bodies for the per-arch tiers (dispatch.h).
//
// Everything here lives in an ANONYMOUS namespace on purpose: each arch
// translation unit (kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp) is compiled with different ISA flags, and the
// instantiations must stay private to their TU — with external linkage the
// linker would fold the copies and one tier would silently run another
// tier's codegen. Internal linkage makes each TU's copy its own.
//
// Bit-identity across tiers rests on two rules encoded here:
//   1. Float kernels fix the per-element operation sequence (fma chains,
//      k-ascending reductions). Vectorising across elements then cannot
//      change any result, because lanes never interact.
//   2. The transcendental kernels (exp_core / tanh_core) are written once
//      against a tiny vector-ops concept `V`; the scalar specialisation
//      (VecScalar) performs literally the same per-lane operations the SIMD
//      specialisations perform, including vmaxps/vminps NaN semantics.
//      Loop tails in the SIMD tiers run exp_core<VecScalar>, which is the
//      scalar tier — so lane position never matters either.
//
// No libm anywhere: exp is a Cephes-style degree-5 polynomial with two-step
// exact power-of-two scaling (covers the full float range, +inf above
// 88.7228, flush-to-zero below -87.3365 where libm would return subnormals
// — documented rounding difference vs std::exp, identical across tiers);
// tanh is the Cephes odd split (direct polynomial for |x| <= 0.625, exp
// composition above).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace rptcn::kdetail {
namespace {

// -- scalar lane ops ----------------------------------------------------------

/// Scalar instantiation of the vector-ops concept. SIMD tiers must match
/// these semantics lane-for-lane (notably: max_/min_ return the SECOND
/// operand when the comparison is unordered, mirroring vmaxps/vminps).
struct VecScalar {
  static constexpr std::size_t kWidth = 1;
  using F = float;
  using I = std::int32_t;
  static F load(const float* p) { return *p; }
  static void store(float* p, F v) { *p = v; }
  static F set1(float v) { return v; }
  static I set1_i(std::int32_t v) { return v; }
  static F add(F a, F b) { return a + b; }
  static F sub(F a, F b) { return a - b; }
  static F mul(F a, F b) { return a * b; }
  static F div(F a, F b) { return a / b; }
  static F fma(F a, F b, F c) { return std::fma(a, b, c); }
  static F max_(F a, F b) { return a > b ? a : b; }
  static F min_(F a, F b) { return a < b ? a : b; }
  static F round_(F a) { return std::nearbyintf(a); }
  static I f2i(F a) { return static_cast<I>(a); }
  static I add_i(I a, I b) { return a + b; }
  static I sub_i(I a, I b) { return a - b; }
  static I min_i(I a, I b) { return a < b ? a : b; }
  static F pow2_from_biased(I e) {
    return std::bit_cast<float>(static_cast<std::uint32_t>(e) << 23);
  }
  static F abs_(F a) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) & 0x7fffffffu);
  }
  /// a with x's sign bit OR-ed in (a must be non-negative).
  static F or_sign(F a, F x) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) |
                                (std::bit_cast<std::uint32_t>(x) &
                                 0x80000000u));
  }
  static F select_gt(F a, F b, F t, F f) { return a > b ? t : f; }
  static F select_lt(F a, F b, F t, F f) { return a < b ? t : f; }
  static F select_nan(F a, F t, F f) { return a != a ? t : f; }
};

// -- shared transcendental cores ----------------------------------------------

// Cephes expf constants (degree-5 minimax on [-ln2/2, ln2/2], ~2 ulp).
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;        // ln2 split, high part
inline constexpr float kExpC2 = -2.12194440e-4f;     // ln2 split, low part
inline constexpr float kExpHi = 88.722839f;          // exp(x) -> +inf above
inline constexpr float kExpLo = -87.336548f;         // exp(x) -> 0 below

/// p[i] = exp(p[i]) for one lane pack. Saturates exactly: +inf above kExpHi,
/// 0 below kExpLo (subnormal results flush to zero), NaN propagates.
template <class V>
inline typename V::F exp_core(typename V::F x) {
  using F = typename V::F;
  const F hi = V::set1(kExpHi);
  const F lo = V::set1(kExpLo);
  const F xc = V::min_(V::max_(x, lo), hi);  // also squashes NaN lanes
  const F n = V::round_(V::mul(xc, V::set1(kLog2e)));
  F r = V::fma(n, V::set1(-kExpC1), xc);
  r = V::fma(n, V::set1(-kExpC2), r);
  F p = V::set1(1.9875691500e-4f);
  p = V::fma(p, r, V::set1(1.3981999507e-3f));
  p = V::fma(p, r, V::set1(8.3334519073e-3f));
  p = V::fma(p, r, V::set1(4.1665795894e-2f));
  p = V::fma(p, r, V::set1(1.6666665459e-1f));
  p = V::fma(p, r, V::set1(5.0000001201e-1f));
  p = V::fma(V::mul(r, r), p, V::add(r, V::set1(1.0f)));  // exp(r)
  // Scale by 2^n in two exact power-of-two multiplies: n reaches 128 at the
  // high clamp, which a single biased exponent cannot represent.
  const auto ni = V::f2i(n);  // in [-126, 128] after the clamp
  const auto j = V::min_i(ni, V::set1_i(127));
  const F s1 = V::pow2_from_biased(V::add_i(j, V::set1_i(127)));
  const F s2 =
      V::pow2_from_biased(V::add_i(V::sub_i(ni, j), V::set1_i(127)));
  F out = V::mul(V::mul(p, s1), s2);
  const F inf = V::set1(std::numeric_limits<float>::infinity());
  out = V::select_gt(x, hi, inf, out);
  out = V::select_lt(x, lo, V::set1(0.0f), out);
  out = V::select_nan(x, x, out);
  return out;
}

/// tanh via the Cephes odd split. |x| <= 0.625: odd polynomial in x.
/// Above: 1 - 2/(exp(2|x|)+1) through the shared exp core, sign restored
/// bitwise. Saturates to exactly +/-1 for large |x|; NaN propagates through
/// the polynomial branch.
template <class V>
inline typename V::F tanh_core(typename V::F x) {
  using F = typename V::F;
  const F ax = V::abs_(x);
  const F e = exp_core<V>(V::mul(ax, V::set1(2.0f)));
  F big = V::sub(V::set1(1.0f),
                 V::div(V::set1(2.0f), V::add(e, V::set1(1.0f))));
  big = V::or_sign(big, x);
  const F z = V::mul(x, x);
  F q = V::set1(-5.70498872745e-3f);
  q = V::fma(q, z, V::set1(2.06390887954e-2f));
  q = V::fma(q, z, V::set1(-5.37397155531e-2f));
  q = V::fma(q, z, V::set1(1.33314422036e-1f));
  q = V::fma(q, z, V::set1(-3.33332819422e-1f));
  const F small = V::fma(V::mul(q, z), x, x);
  return V::select_gt(ax, V::set1(0.625f), big, small);
}

/// In-place elementwise driver: full-width packs through V, the remainder
/// through VecScalar (identical per-element results, so the split point is
/// unobservable).
template <class V, typename V::F (*CoreV)(typename V::F),
          float (*CoreS)(float)>
inline void elementwise_inplace(float* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth)
    V::store(p + i, CoreV(V::load(p + i)));
  for (; i < n; ++i) p[i] = CoreS(p[i]);
}

// -- GEMM building blocks -----------------------------------------------------

/// Element accessor abstraction: op(M)(i,j) with optional transpose.
inline float at_maybe_t(const float* p, std::size_t ld, bool trans,
                        std::size_t i, std::size_t j) {
  return trans ? p[j * ld + i] : p[i * ld + j];
}

/// Pack op(A)[mc x kc] (transpose applied) into row panels of height MR,
/// k-major inside each panel; short panels are zero-padded.
template <std::size_t MR>
inline void pack_a_impl(const float* a, std::size_t lda, bool trans,
                        std::size_t i0, std::size_t p0, std::size_t mc,
                        std::size_t kc, float* buf) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* panel = buf + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < mr; ++r)
        panel[p * MR + r] = at_maybe_t(a, lda, trans, i0 + ir + r, p0 + p);
      for (std::size_t r = mr; r < MR; ++r) panel[p * MR + r] = 0.0f;
    }
  }
}

/// Pack op(B)[kc x n] (transpose applied) into column panels of width NR,
/// k-major inside each panel; short panels are zero-padded.
template <std::size_t NR>
inline void pack_b_impl(const float* b, std::size_t ldb, bool trans,
                        std::size_t p0, std::size_t kc, std::size_t n,
                        float* buf) {
  for (std::size_t jr = 0; jr < n; jr += NR) {
    const std::size_t nr = std::min(NR, n - jr);
    float* panel = buf + jr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t c = 0; c < nr; ++c)
        panel[p * NR + c] = at_maybe_t(b, ldb, trans, p0 + p, jr + c);
      for (std::size_t c = nr; c < NR; ++c) panel[p * NR + c] = 0.0f;
    }
  }
}

/// Portable MR x NR register tile: acc[r][c] = sum_p fma(Ap[p][r], Bp[p][c]),
/// k ascending, one fma rounding per product. Processed in strips of 4 rows
/// so each strip's accumulators stay in vector registers.
template <std::size_t MR, std::size_t NR>
inline void micro_kernel_impl(std::size_t kc, const float* ap, const float* bp,
                              float* acc /* MR*NR, zeroed */) {
  static_assert(MR % 4 == 0);
  for (std::size_t r0 = 0; r0 < MR; r0 += 4) {
    float a0[NR] = {0.0f}, a1[NR] = {0.0f};
    float a2[NR] = {0.0f}, a3[NR] = {0.0f};
    for (std::size_t p = 0; p < kc; ++p) {
      const float* arow = ap + p * MR + r0;
      const float* brow = bp + p * NR;
      const float v0 = arow[0], v1 = arow[1], v2 = arow[2], v3 = arow[3];
      for (std::size_t c = 0; c < NR; ++c) {
        a0[c] = std::fma(v0, brow[c], a0[c]);
        a1[c] = std::fma(v1, brow[c], a1[c]);
        a2[c] = std::fma(v2, brow[c], a2[c]);
        a3[c] = std::fma(v3, brow[c], a3[c]);
      }
    }
    for (std::size_t c = 0; c < NR; ++c) {
      acc[(r0 + 0) * NR + c] = a0[c];
      acc[(r0 + 1) * NR + c] = a1[c];
      acc[(r0 + 2) * NR + c] = a2[c];
      acc[(r0 + 3) * NR + c] = a3[c];
    }
  }
}

/// Simple branch-free triple loop for tiny shapes (same reduction order:
/// k ascending, fma per product), accumulating into zero-initialised C.
inline void gemm_small_impl(std::size_t m, std::size_t n, std::size_t k,
                            const float* a, std::size_t lda, bool ta,
                            const float* b, std::size_t ldb, bool tb,
                            float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = at_maybe_t(a, lda, ta, i, p);
      for (std::size_t j = 0; j < n; ++j)
        crow[j] = std::fma(av, at_maybe_t(b, ldb, tb, p, j), crow[j]);
    }
  }
}

// -- im2col -------------------------------------------------------------------

/// Valid output range [t_lo, t_hi) of one kernel tap at offset `off`: the
/// t for which 0 <= t + off < t_in. Outside it the patch row is zero. Both
/// ends clamp to [0, t_out]: with pad > T_in a tap can sit entirely in the
/// zero padding, which must yield an empty range, not an out-of-bounds fill.
inline void tap_range_impl(std::ptrdiff_t off, std::size_t t_in,
                           std::size_t t_out, std::size_t& t_lo,
                           std::size_t& t_hi) {
  t_lo = off < 0 ? std::min(static_cast<std::size_t>(-off), t_out) : 0u;
  const std::ptrdiff_t hi =
      std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(t_out),
                               static_cast<std::ptrdiff_t>(t_in) - off);
  t_hi = hi > static_cast<std::ptrdiff_t>(t_lo)
             ? static_cast<std::size_t>(hi)
             : t_lo;
}

/// Causal-padding-aware im2col over nc sample-major samples:
/// patches[(ci*K + kk), s*T_out + t] = x[s, ci, t + kk*d - pad], zero where
/// the tap reaches the left padding. Pure data movement — exact in any tier.
inline void im2col_impl(const float* x, std::size_t xs, std::size_t xc,
                        std::size_t nc, std::size_t cin, std::size_t t_in,
                        std::size_t k, std::size_t d, std::size_t pad,
                        std::size_t t_out, float* patches) {
  const std::size_t nt = nc * t_out;
  for (std::size_t ci = 0; ci < cin; ++ci) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      float* row = patches + (ci * k + kk) * nt;
      const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk * d) -
                                 static_cast<std::ptrdiff_t>(pad);
      std::size_t t_lo, t_hi;
      tap_range_impl(off, t_in, t_out, t_lo, t_hi);
      for (std::size_t s = 0; s < nc; ++s) {
        float* seg = row + s * t_out;
        const float* xrow = x + s * xs + ci * xc;
        std::fill(seg, seg + t_lo, 0.0f);
        std::copy(xrow + static_cast<std::ptrdiff_t>(t_lo) + off,
                  xrow + static_cast<std::ptrdiff_t>(t_hi) + off, seg + t_lo);
        std::fill(seg + t_hi, seg + t_out, 0.0f);
      }
    }
  }
}

// -- int8 GEMM ----------------------------------------------------------------

/// Reference s8 x s8 -> s32 GEMM: C[m,n] = A[m,k] * B[n,k]^T, C overwritten.
/// Integer arithmetic is exact, so any tier's reordering is bit-identical.
inline void gemm_s8_impl(std::size_t m, std::size_t n, std::size_t k,
                         const std::int8_t* a, const std::int8_t* b,
                         std::int32_t* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<std::int32_t>(arow[p]) *
               static_cast<std::int32_t>(brow[p]);
      c[i * n + j] = acc;
    }
  }
}

// Scalar entry points for the elementwise drivers (usable as CoreS template
// arguments from any tier).
inline float exp_scalar_lane(float x) { return exp_core<VecScalar>(x); }
inline float tanh_scalar_lane(float x) { return tanh_core<VecScalar>(x); }

}  // namespace
}  // namespace rptcn::kdetail
