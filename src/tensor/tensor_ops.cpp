#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace rptcn {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  RPTCN_CHECK(a.same_shape(b), op << ": shape mismatch " << a.shape_string()
                                  << " vs " << b.shape_string());
}

template <typename F>
Tensor zip(const Tensor& a, const Tensor& b, F&& f, const char* op) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const auto pa = a.data();
  const auto pb = b.data();
  auto po = out.data();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x / y; }, "div");
}

Tensor add_scalar(const Tensor& a, float s) {
  return map(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return map(a, [s](float x) { return x * s; });
}
Tensor neg(const Tensor& a) {
  return map(a, [](float x) { return -x; });
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const auto px = x.data();
  auto py = y.data();
  for (std::size_t i = 0; i < px.size(); ++i) py[i] += alpha * px[i];
}

void scale_inplace(Tensor& y, float s) {
  for (auto& v : y.data()) v *= s;
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const auto pa = a.data();
  auto po = out.data();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = f(pa[i]);
  return out;
}

Tensor relu(const Tensor& a) {
  return map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  return map(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh_t(const Tensor& a) {
  return map(a, [](float x) { return std::tanh(x); });
}
Tensor exp_t(const Tensor& a) {
  return map(a, [](float x) { return std::exp(x); });
}
Tensor log_t(const Tensor& a) {
  return map(a, [](float x) { return std::log(x); });
}
Tensor sqrt_t(const Tensor& a) {
  return map(a, [](float x) { return std::sqrt(x); });
}
Tensor square(const Tensor& a) {
  return map(a, [](float x) { return x * x; });
}
Tensor abs_t(const Tensor& a) {
  return map(a, [](float x) { return std::fabs(x); });
}

float sum(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += v;
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  RPTCN_CHECK(a.size() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.size());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

float norm2(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

Tensor sum_rows(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "sum_rows expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += a.at(i, j);
    out.at(i) = static_cast<float>(s);
  }
  return out;
}

Tensor sum_cols(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "sum_cols expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j) += a.at(i, j);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RPTCN_CHECK(b.dim(0) == k, "matmul inner-dimension mismatch: "
                                 << a.shape_string() << " x " << b.shape_string());
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // i-k-j loop order: unit-stride access on B and C rows; OpenMP over rows.
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_tn expects rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RPTCN_CHECK(b.dim(0) == m, "matmul_tn outer-dimension mismatch");
  Tensor c({k, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // C[kk,j] = sum_i A[i,kk] * B[i,j]
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_nt expects rank-2 tensors");
  const std::size_t m = a.dim(0), n = a.dim(1), k = b.dim(0);
  RPTCN_CHECK(b.dim(1) == n, "matmul_nt inner-dimension mismatch");
  Tensor c({m, k});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * n;
    float* crow = pc + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n;
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += static_cast<double>(arow[j]) * brow[j];
      crow[kk] = static_cast<float>(s);
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "transpose2d expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  RPTCN_CHECK(a.rank() == 2 && x.rank() == 1, "matvec expects (2-D, 1-D)");
  RPTCN_CHECK(a.dim(1) == x.dim(0), "matvec dimension mismatch");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor y({m});
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += static_cast<double>(a.at(i, j)) * x.at(j);
    y.at(i) = static_cast<float>(s);
  }
  return y;
}

Tensor softmax_lastdim(const Tensor& a) {
  RPTCN_CHECK(a.rank() >= 1, "softmax of rank-0 tensor");
  const std::size_t last = a.shape().back();
  const std::size_t rows = a.size() / last;
  Tensor out(a.shape());
  const float* pa = a.raw();
  float* po = out.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = pa + r * last;
    float* o = po + r * last;
    float mx = in[0];
    for (std::size_t j = 1; j < last; ++j) mx = std::max(mx, in[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < last; ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < last; ++j) o[j] *= inv;
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const auto pa = a.data();
  const auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
    if (std::isnan(pa[i]) != std::isnan(pb[i])) return false;
  }
  return true;
}

}  // namespace rptcn
