#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "tensor/dispatch.h"

namespace rptcn {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  RPTCN_CHECK(a.same_shape(b), op << ": shape mismatch " << a.shape_string()
                                  << " vs " << b.shape_string());
}

// zip/map run on contiguous restrict-qualified raw pointers with the functor
// inlined as a template parameter (no std::function indirection), so the
// compiler auto-vectorises the arithmetic cases and the libm ones
// (exp/tanh) at least stay in one tight loop.

template <typename F>
Tensor zip(const Tensor& a, const Tensor& b, F&& f, const char* op) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const float* __restrict pa = a.raw();
  const float* __restrict pb = b.raw();
  float* __restrict po = out.raw();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  const float* __restrict pa = a.raw();
  float* __restrict po = out.raw();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

/// The one stabilised exponential kernel: out[i] = exp(out[i]) in place.
/// softmax_lastdim writes row-max-shifted inputs into its output buffer and
/// exponentiates here; exp_t and sigmoid reuse the same loop so every
/// transcendental path in the library goes through one kernel — the
/// dispatched polynomial vexp (tensor/dispatch.h), bit-identical in every
/// arch tier and independent of libm.
void vexp_inplace(float* p, std::size_t n) { kernels().vexp(p, n); }
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x / y; }, "div");
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}
Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const auto px = x.data();
  auto py = y.data();
  for (std::size_t i = 0; i < px.size(); ++i) py[i] += alpha * px[i];
}

void scale_inplace(Tensor& y, float s) {
  for (auto& v : y.data()) v *= s;
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  return unary(a, [&f](float x) { return f(x); });
}

Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  // 1/(1+exp(-x)) through the shared exp kernel: negate, exponentiate in
  // place, then one rational pass. Saturates cleanly (exp(-x) -> inf gives
  // exactly 0) — same values as the scalar form, one buffer end to end.
  Tensor out = neg(a);
  vexp_inplace(out.raw(), out.size());
  float* __restrict po = out.raw();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) po[i] = 1.0f / (1.0f + po[i]);
  return out;
}
Tensor tanh_t(const Tensor& a) {
  Tensor out = a;
  kernels().vtanh(out.raw(), out.size());
  return out;
}

void sigmoid_inplace(float* p, std::size_t n) {
  // Same pipeline as sigmoid() above, minus the out-of-place negate.
  for (std::size_t i = 0; i < n; ++i) p[i] = -p[i];
  vexp_inplace(p, n);
  for (std::size_t i = 0; i < n; ++i) p[i] = 1.0f / (1.0f + p[i]);
}

void tanh_inplace(float* p, std::size_t n) { kernels().vtanh(p, n); }
Tensor exp_t(const Tensor& a) {
  Tensor out = a;
  vexp_inplace(out.raw(), out.size());
  return out;
}
Tensor log_t(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
Tensor sqrt_t(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor square(const Tensor& a) {
  return unary(a, [](float x) { return x * x; });
}
Tensor abs_t(const Tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}

float sum(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += v;
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  RPTCN_CHECK(a.size() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.size());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

float norm2(const Tensor& a) { return norm2_raw(a.raw(), a.size()); }

float norm2_raw(const float* p, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(s));
}

Tensor sum_rows(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "sum_rows expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += a.at(i, j);
    out.at(i) = static_cast<float>(s);
  }
  return out;
}

Tensor sum_cols(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "sum_cols expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j) += a.at(i, j);
  return out;
}

// ---------------------------------------------------------------------------
// GEMM: one blocked, packed, register-tiled kernel serving all three layout
// variants (NN, TN, NT). The input layout only affects the packing routines;
// the micro-kernel is branch-free and identical everywhere. The micro-kernel
// and pack routines themselves come from the runtime-dispatched KernelTable
// (tensor/dispatch.h): scalar 8x8, avx2 8x8 intrinsics, avx512 16x16 — all
// bit-identical per element.
//
// Structure (BLIS-style, scaled to L1/L2 on a laptop-class core):
//   * K is split into kKC panels; for each panel the B block [kc x n] is
//     packed once into column panels of width kt.nr (k-major);
//   * rows are split into kMC blocks (OpenMP over row blocks — this is the
//     only parallel axis, so every C element is written by exactly one
//     thread and results are bit-identical for any thread count);
//   * each row block packs its A panel [mc x kc] into row panels of height
//     kt.mr (k-major) and runs the kt.mr x kt.nr micro-kernel.
//
// Determinism contract: per C element the reduction order is k ascending
// within a panel, panels ascending, each product folded with a single
// rounding via fma. Tile geometry only changes which elements are computed
// together, never the per-element sequence, so results are identical across
// tiers too. No data-dependent branches, no atomic reductions.
// tests/test_tensor_ops.cpp checks bit-exact equality against a reference
// triple loop that mirrors this reduction order;
// tests/test_kernel_dispatch.cpp checks it across tiers.
namespace {

constexpr std::size_t kMC = 64;   // row-block height (A panel rows)
constexpr std::size_t kKC = 256;  // k-panel depth
// Largest micro-tile any tier registers (avx512 is 16x16); sizes the
// stack accumulator in gemm_row_block.
constexpr std::size_t kMaxTileElems = 16 * 16;
// Below this flop count the packing overhead dominates; use the simple
// branch-free triple loop. Shape-dependent dispatch only — never
// data-dependent.
constexpr std::size_t kSmallGemmFlops = 1u << 13;
// OpenMP fan-out threshold for the blocked path.
constexpr std::size_t kParallelGemmFlops = 1u << 16;

/// Registry handles for the GEMM counters, resolved once. Accounting is
/// computed analytically before the blocked loops so the hot path (and the
/// OpenMP region) stays untouched.
struct GemmMetrics {
  obs::Counter& calls = obs::metrics().counter("kernel/gemm_calls");
  obs::Counter& flops = obs::metrics().counter("kernel/gemm_flops");
  obs::Counter& bytes_packed =
      obs::metrics().counter("kernel/gemm_bytes_packed");
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics* m = new GemmMetrics();
  return *m;
}

/// One row block of the blocked kernel: pack the A panel and drive the
/// micro-kernel against an already-packed B k-panel. Shared by gemm and the
/// prepacked-B replay so both paths execute the identical code (and thus
/// the identical rounding sequence).
void gemm_row_block(const KernelTable& kt, std::size_t i0, std::size_t mc,
                    std::size_t n, std::size_t kc, std::size_t p0,
                    const float* a, std::size_t lda, bool ta,
                    const float* bpack, float* c) {
  pool::Scratch apack(((mc + kt.mr - 1) / kt.mr) * kt.mr * kc);
  kt.pack_a(a, lda, ta, i0, p0, mc, kc, apack.data());
  for (std::size_t jr = 0; jr < n; jr += kt.nr) {
    const std::size_t nr = std::min(kt.nr, n - jr);
    const float* bp = bpack + jr * kc;
    for (std::size_t ir = 0; ir < mc; ir += kt.mr) {
      const std::size_t mr = std::min(kt.mr, mc - ir);
      float acc[kMaxTileElems];
      kt.micro_kernel(kc, apack.data() + ir * kc, bp, acc);
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i0 + ir + r) * n + jr;
        for (std::size_t cc = 0; cc < nr; ++cc)
          crow[cc] += acc[r * kt.nr + cc];
      }
    }
  }
}

/// Analytic pack-traffic accounting for the blocked path (bytes_packed
/// counter); b_side toggles whether the B panels count (they do not when a
/// prepacked B is replayed).
void count_packed_bytes(const KernelTable& kt, std::size_t m, std::size_t n,
                        std::size_t k, bool b_side) {
  const std::size_t n_panels = (n + kt.nr - 1) / kt.nr;
  std::uint64_t packed_rows = 0;
  for (std::size_t i0 = 0; i0 < m; i0 += kMC) {
    const std::size_t mc = std::min(kMC, m - i0);
    packed_rows += (mc + kt.mr - 1) / kt.mr * kt.mr;
  }
  if (b_side) packed_rows += n_panels * kt.nr;
  gemm_metrics().bytes_packed.add(packed_rows *
                                  static_cast<std::uint64_t>(k) *
                                  sizeof(float));
}

/// C[m,n] += op(A) * op(B) with C zero-initialised by the caller.
/// op is transpose iff ta/tb; lda/ldb are the *storage* leading dimensions.
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, bool ta, const float* b, std::size_t ldb, bool tb,
          float* c) {
  const KernelTable& kt = kernels();
  const bool metrics_on = obs::enabled();
  if (metrics_on) {
    gemm_metrics().calls.add(1);
    gemm_metrics().flops.add(2ull * m * n * k);
  }
  if (m * n * k <= kSmallGemmFlops) {
    kt.gemm_small(m, n, k, a, lda, ta, b, ldb, tb, c);
    return;
  }
  const std::size_t n_panels = (n + kt.nr - 1) / kt.nr;
  if (metrics_on) count_packed_bytes(kt, m, n, k, /*b_side=*/true);
  pool::Scratch bpack(kKC * n_panels * kt.nr);
  const std::size_t row_blocks = (m + kMC - 1) / kMC;
  const bool fan_out =
      m * n * k > kParallelGemmFlops && kernel_parallelism_allowed();
  for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
    const std::size_t kc = std::min(kKC, k - p0);
    kt.pack_b(b, ldb, tb, p0, kc, n, bpack.data());
#pragma omp parallel for schedule(static) if (fan_out)
    for (std::size_t blk = 0; blk < row_blocks; ++blk) {
      const std::size_t i0 = blk * kMC;
      const std::size_t mc = std::min(kMC, m - i0);
      gemm_row_block(kt, i0, mc, n, kc, p0, a, lda, ta, bpack.data(), c);
    }
  }
}

}  // namespace

void gemm_accumulate(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, bool trans_a,
                     const float* b, std::size_t ldb, bool trans_b, float* c) {
  gemm(m, n, k, a, lda, trans_a, b, ldb, trans_b, c);
}

bool gemm_uses_blocked(std::size_t m, std::size_t n, std::size_t k) {
  return m * n * k > kSmallGemmFlops;
}

PackedB gemm_pack_b(const float* b, std::size_t ldb, bool trans_b,
                    std::size_t k, std::size_t n) {
  const KernelTable& kt = kernels();
  PackedB pb;
  pb.k = k;
  pb.n = n;
  pb.nr = kt.nr;
  const std::size_t n_panels = (n + kt.nr - 1) / kt.nr;
  std::size_t off = 0;
  for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
    const std::size_t kc = std::min(kKC, k - p0);
    pb.panel_off.push_back(off);
    off += n_panels * kt.nr * kc;
  }
  pb.data.resize(off);
  std::size_t pi = 0;
  for (std::size_t p0 = 0; p0 < k; p0 += kKC, ++pi) {
    const std::size_t kc = std::min(kKC, k - p0);
    kt.pack_b(b, ldb, trans_b, p0, kc, n, pb.data.data() + pb.panel_off[pi]);
  }
  return pb;
}

void gemm_accumulate_packed_b(std::size_t m, std::size_t n, std::size_t k,
                              const float* a, std::size_t lda, bool trans_a,
                              const PackedB& b, float* c) {
  const KernelTable& kt = kernels();
  RPTCN_CHECK(b.k == k && b.n == n, "packed B shape mismatch: packed ["
                                        << b.k << ", " << b.n << "], GEMM ["
                                        << k << ", " << n << "]");
  RPTCN_CHECK(b.nr == kt.nr,
              "packed B panel width " << b.nr << " does not match the active "
              "kernel tier's " << kt.nr << " (" << kernel_arch_name(kt.arch)
              << "); repack after switching tiers");
  RPTCN_CHECK(gemm_uses_blocked(m, n, k),
              "gemm_accumulate_packed_b on a small shape: " << m << "x" << n
                                                            << "x" << k);
  const bool metrics_on = obs::enabled();
  if (metrics_on) {
    gemm_metrics().calls.add(1);
    gemm_metrics().flops.add(2ull * m * n * k);
    count_packed_bytes(kt, m, n, k, /*b_side=*/false);
  }
  const std::size_t row_blocks = (m + kMC - 1) / kMC;
  const bool fan_out =
      m * n * k > kParallelGemmFlops && kernel_parallelism_allowed();
  std::size_t pi = 0;
  for (std::size_t p0 = 0; p0 < k; p0 += kKC, ++pi) {
    const std::size_t kc = std::min(kKC, k - p0);
    const float* bpack = b.data.data() + b.panel_off[pi];
#pragma omp parallel for schedule(static) if (fan_out)
    for (std::size_t blk = 0; blk < row_blocks; ++blk) {
      const std::size_t i0 = blk * kMC;
      const std::size_t mc = std::min(kMC, m - i0);
      gemm_row_block(kt, i0, mc, n, kc, p0, a, lda, trans_a, bpack, c);
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RPTCN_CHECK(b.dim(0) == k, "matmul inner-dimension mismatch: "
                                 << a.shape_string() << " x " << b.shape_string());
  Tensor c({m, n});
  gemm(m, n, k, a.raw(), k, false, b.raw(), n, false, c.raw());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_tn expects rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RPTCN_CHECK(b.dim(0) == m, "matmul_tn outer-dimension mismatch");
  // C[k,n] = A^T * B given A[m,k], B[m,n]: the packing transposes A.
  Tensor c({k, n});
  gemm(k, n, m, a.raw(), k, true, b.raw(), n, false, c.raw());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_nt expects rank-2 tensors");
  const std::size_t m = a.dim(0), n = a.dim(1), k = b.dim(0);
  RPTCN_CHECK(b.dim(1) == n, "matmul_nt inner-dimension mismatch");
  // C[m,k] = A * B^T given A[m,n], B[k,n]: the packing transposes B.
  Tensor c({m, k});
  gemm(m, k, n, a.raw(), n, false, b.raw(), n, true, c.raw());
  return c;
}

Tensor transpose2d(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 2, "transpose2d expects rank 2");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  RPTCN_CHECK(a.rank() == 2 && x.rank() == 1, "matvec expects (2-D, 1-D)");
  RPTCN_CHECK(a.dim(1) == x.dim(0), "matvec dimension mismatch");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor y({m});
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += static_cast<double>(a.at(i, j)) * x.at(j);
    y.at(i) = static_cast<float>(s);
  }
  return y;
}

void softmax_rows(const float* in, float* out, std::size_t rows,
                  std::size_t last) {
  // Single output buffer, no temporaries: shift by the row max into `out`,
  // exponentiate in place through the shared kernel, then normalise.
  // No __restrict here: the contract allows in == out (the row max is read
  // before the first aliased write of each row).
  for (std::size_t r = 0; r < rows; ++r) {
    const float* pi = in + r * last;
    float* o = out + r * last;
    float mx = pi[0];
    for (std::size_t j = 1; j < last; ++j) mx = std::max(mx, pi[j]);
    for (std::size_t j = 0; j < last; ++j) o[j] = pi[j] - mx;
    vexp_inplace(o, last);
    double denom = 0.0;
    for (std::size_t j = 0; j < last; ++j) denom += o[j];
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < last; ++j) o[j] *= inv;
  }
}

Tensor softmax_lastdim(const Tensor& a) {
  RPTCN_CHECK(a.rank() >= 1, "softmax of rank-0 tensor");
  const std::size_t last = a.shape().back();
  const std::size_t rows = a.size() / last;
  Tensor out(a.shape());
  softmax_rows(a.raw(), out.raw(), rows, last);
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const auto pa = a.data();
  const auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
    if (std::isnan(pa[i]) != std::isnan(pb[i])) return false;
  }
  return true;
}

}  // namespace rptcn
