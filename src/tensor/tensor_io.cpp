#include "tensor/tensor_io.h"

#include <cstdint>
#include <fstream>

#include "common/check.h"

namespace rptcn {

namespace {
constexpr char kMagic[4] = {'R', 'P', 'T', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  RPTCN_CHECK(in.good(), "truncated tensor stream");
  return v;
}
}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(t.rank()));
  for (auto d : t.shape()) write_pod(out, static_cast<std::uint64_t>(d));
  out.write(reinterpret_cast<const char*>(t.raw()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
  RPTCN_CHECK(out.good(), "tensor write failed");
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  RPTCN_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
              "bad tensor magic");
  const auto version = read_pod<std::uint32_t>(in);
  RPTCN_CHECK(version == kVersion, "unsupported tensor version " << version);
  const auto rank = read_pod<std::uint32_t>(in);
  std::vector<std::size_t> shape(rank);
  for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  RPTCN_CHECK(in.good(), "truncated tensor data");
  return t;
}

void write_tensors_file(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& items) {
  std::ofstream out(path, std::ios::binary);
  RPTCN_CHECK(out.good(), "cannot open for writing: " << path);
  write_pod(out, static_cast<std::uint64_t>(items.size()));
  for (const auto& [name, tensor] : items) {
    write_pod(out, static_cast<std::uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(out, tensor);
  }
}

std::vector<std::pair<std::string, Tensor>> read_tensors_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RPTCN_CHECK(in.good(), "cannot open for reading: " << path);
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<std::pair<std::string, Tensor>> items;
  items.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto len = read_pod<std::uint64_t>(in);
    std::string name(len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(len));
    RPTCN_CHECK(in.good(), "truncated tensor name");
    items.emplace_back(std::move(name), read_tensor(in));
  }
  return items;
}

}  // namespace rptcn
