// Scalar kernel tier: portable baseline, compiled with no ISA flags.
// Always registered; the reference every other tier must match bitwise.

#include "tensor/dispatch.h"
#include "tensor/kernels_detail.h"

namespace rptcn {
namespace {

using kdetail::VecScalar;

void vexp_scalar(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecScalar, kdetail::exp_core<VecScalar>,
                               kdetail::exp_scalar_lane>(p, n);
}

void vtanh_scalar(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecScalar, kdetail::tanh_core<VecScalar>,
                               kdetail::tanh_scalar_lane>(p, n);
}

const KernelTable kTable = {
    /*arch=*/KernelArch::kScalar,
    /*mr=*/8,
    /*nr=*/8,
    /*micro_kernel=*/kdetail::micro_kernel_impl<8, 8>,
    /*pack_a=*/kdetail::pack_a_impl<8>,
    /*pack_b=*/kdetail::pack_b_impl<8>,
    /*gemm_small=*/kdetail::gemm_small_impl,
    /*vexp=*/vexp_scalar,
    /*vtanh=*/vtanh_scalar,
    /*im2col=*/kdetail::im2col_impl,
    /*gemm_s8=*/kdetail::gemm_s8_impl,
};

}  // namespace

const KernelTable* kernel_table_scalar() { return &kTable; }

}  // namespace rptcn
