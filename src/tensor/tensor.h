// Dense row-major float32 tensor.
//
// Design notes:
//  * Value semantics, contiguous std::vector<float> storage. Models in this
//    reproduction are small (thousands to low millions of elements), so the
//    simplicity of copies-by-value beats a strided-view design; hot paths
//    (GEMM, dilated conv) operate on raw spans and never copy.
//  * Storage is recycled through the thread-local buffer pool
//    (tensor/buffer_pool.h): construction acquires a size-bucketed buffer,
//    destruction/assignment releases it, so the per-op "allocate a fresh
//    output" idiom is allocation-free in steady state. A tensor always
//    uniquely owns its buffer — recycling never aliases live tensors.
//  * Rank is dynamic (vector<size_t> shape); the NN layers use ranks 1–3.
//  * All shape errors are RPTCN_CHECK failures (throwing), never UB.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace rptcn {

class Rng;

class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;

  /// Tensor of the given shape, filled with `fill`.
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);

  // Storage goes through the thread-local buffer pool: copies acquire a
  // recycled buffer, destruction/assignment releases the old one.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // -- factories ------------------------------------------------------------
  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor ones(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// Rank-0-like scalar, stored as shape {1}.
  static Tensor scalar(float value);
  /// Build from explicit values (row-major); size must match the shape.
  static Tensor from(std::vector<std::size_t> shape, std::vector<float> values);
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float mean = 0.0f, float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                             float hi);
  /// {0, 1, ..., n-1} as a rank-1 tensor.
  static Tensor arange(std::size_t n);

  // -- shape ---------------------------------------------------------------
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::vector<std::size_t>& shape() const { return shape_; }
  /// Extent of dimension i; throws if i >= rank().
  std::size_t dim(std::size_t i) const;
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reinterpret with a new shape of identical element count (copies value
  /// semantics; data layout is unchanged).
  Tensor reshape(std::vector<std::size_t> new_shape) const;

  // -- element access --------------------------------------------------------
  std::span<float> data() { return {data_.data(), data_.size()}; }
  std::span<const float> data() const { return {data_.data(), data_.size()}; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::size_t flat) {
    RPTCN_DCHECK(flat < data_.size(), "flat index out of range");
    return data_[flat];
  }
  float operator[](std::size_t flat) const {
    RPTCN_DCHECK(flat < data_.size(), "flat index out of range");
    return data_[flat];
  }

  /// Checked multi-dimensional accessors for ranks 1–4.
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  /// Scalar value of a single-element tensor.
  float item() const;

  /// Fill all elements with a value.
  void fill(float value);

  /// Human-readable shape, e.g. "[2, 3, 5]".
  std::string shape_string() const;

 private:
  std::size_t offset2(std::size_t i, std::size_t j) const;
  std::size_t offset3(std::size_t i, std::size_t j, std::size_t k) const;
  std::size_t offset4(std::size_t i, std::size_t j, std::size_t k,
                      std::size_t l) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Total element count implied by a shape.
std::size_t shape_size(const std::vector<std::size_t>& shape);

}  // namespace rptcn
