// Binary tensor serialization (model checkpoints).
//
// Format: magic "RPTN", u32 version, u32 rank, u64 dims..., float32 data.
// Little-endian host order — checkpoints are a single-machine convenience,
// not an interchange format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rptcn {

void write_tensor(std::ostream& out, const Tensor& t);
Tensor read_tensor(std::istream& in);

/// Save/load a named set of tensors (e.g. all parameters of a model).
void write_tensors_file(const std::string& path,
                        const std::vector<std::pair<std::string, Tensor>>& items);
std::vector<std::pair<std::string, Tensor>> read_tensors_file(
    const std::string& path);

}  // namespace rptcn
