// AVX2+FMA kernel tier. Compiled with -mavx2 -mfma (gated by the
// RPTCN_KERNELS_AVX2 define from CMake); registers a 256-bit 8x8 GEMM
// micro-kernel, vectorised exp/tanh through the shared polynomial cores,
// and a madd_epi16-based int8 GEMM. Bit-identical to the scalar tier by
// construction — see kernels_detail.h for the contract.
//
// Int8 note: we deliberately use s8 x s8 via sign-extension to s16 +
// _mm256_madd_epi16 instead of the u8·s8 vpmaddubsw idiom — maddubs
// saturates its intermediate s16 sums (e.g. 255*127+255*127 > 32767),
// which would make results depend on element pairing. madd_epi16 widens its
// s16 x s16 products to s32 before the pair-add, and sign-extended s8 inputs
// can never hit the one saturating madd case (both operands -32768), so the
// accumulation is exact in every tier.

#include "tensor/dispatch.h"

#if defined(RPTCN_KERNELS_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "tensor/kernels_detail.h"

namespace rptcn {
namespace {

// 256-bit instantiation of the vector-ops concept in kernels_detail.h.
// Semantics must match VecScalar lane-for-lane (NaN behaviour of
// max_/min_ matches vmaxps/vminps by definition here; VecScalar mirrors it).
struct VecAvx2 {
  static constexpr std::size_t kWidth = 8;
  using F = __m256;
  using I = __m256i;
  static F load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, F v) { _mm256_storeu_ps(p, v); }
  static F set1(float v) { return _mm256_set1_ps(v); }
  static I set1_i(std::int32_t v) { return _mm256_set1_epi32(v); }
  static F add(F a, F b) { return _mm256_add_ps(a, b); }
  static F sub(F a, F b) { return _mm256_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm256_mul_ps(a, b); }
  static F div(F a, F b) { return _mm256_div_ps(a, b); }
  static F fma(F a, F b, F c) { return _mm256_fmadd_ps(a, b, c); }
  static F max_(F a, F b) { return _mm256_max_ps(a, b); }
  static F min_(F a, F b) { return _mm256_min_ps(a, b); }
  static F round_(F a) {
    return _mm256_round_ps(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static I f2i(F a) { return _mm256_cvtps_epi32(a); }
  static I add_i(I a, I b) { return _mm256_add_epi32(a, b); }
  static I sub_i(I a, I b) { return _mm256_sub_epi32(a, b); }
  static I min_i(I a, I b) { return _mm256_min_epi32(a, b); }
  static F pow2_from_biased(I e) {
    return _mm256_castsi256_ps(_mm256_slli_epi32(e, 23));
  }
  static F abs_(F a) {
    return _mm256_and_ps(a, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
  }
  static F or_sign(F a, F x) {
    const F sign =
        _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(
                             static_cast<std::int32_t>(0x80000000u))));
    return _mm256_or_ps(a, sign);
  }
  static F select_gt(F a, F b, F t, F f) {
    return _mm256_blendv_ps(f, t, _mm256_cmp_ps(a, b, _CMP_GT_OQ));
  }
  static F select_lt(F a, F b, F t, F f) {
    return _mm256_blendv_ps(f, t, _mm256_cmp_ps(a, b, _CMP_LT_OQ));
  }
  static F select_nan(F a, F t, F f) {
    return _mm256_blendv_ps(f, t, _mm256_cmp_ps(a, a, _CMP_UNORD_Q));
  }
};

void vexp_avx2(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecAvx2, kdetail::exp_core<VecAvx2>,
                               kdetail::exp_scalar_lane>(p, n);
}

void vtanh_avx2(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecAvx2, kdetail::tanh_core<VecAvx2>,
                               kdetail::tanh_scalar_lane>(p, n);
}

/// 8x8 register tile: one ymm per output row, broadcast-A fmadd per product.
/// Per element this is exactly acc = fma(a[p][r], b[p][c], acc) with p
/// ascending — the scalar reduction order.
void micro_kernel_avx2(std::size_t kc, const float* ap, const float* bp,
                       float* acc) {
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps(), c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps(), c7 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b = _mm256_loadu_ps(bp + p * 8);
    const float* arow = ap + p * 8;
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 0), b, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 1), b, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 2), b, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 3), b, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 4), b, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 5), b, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 6), b, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 7), b, c7);
  }
  _mm256_storeu_ps(acc + 0 * 8, c0);
  _mm256_storeu_ps(acc + 1 * 8, c1);
  _mm256_storeu_ps(acc + 2 * 8, c2);
  _mm256_storeu_ps(acc + 3 * 8, c3);
  _mm256_storeu_ps(acc + 4 * 8, c4);
  _mm256_storeu_ps(acc + 5 * 8, c5);
  _mm256_storeu_ps(acc + 6 * 8, c6);
  _mm256_storeu_ps(acc + 7 * 8, c7);
}

std::int32_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

std::int32_t dot_s8_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::size_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  std::int32_t sum = hsum_epi32(acc);
  for (; p < k; ++p)
    sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  return sum;
}

void gemm_s8_avx2(std::size_t m, std::size_t n, std::size_t k,
                  const std::int8_t* a, const std::int8_t* b,
                  std::int32_t* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j)
      c[i * n + j] = dot_s8_avx2(arow, b + j * k, k);
  }
}

const KernelTable kTable = {
    /*arch=*/KernelArch::kAvx2,
    /*mr=*/8,
    /*nr=*/8,
    /*micro_kernel=*/micro_kernel_avx2,
    /*pack_a=*/kdetail::pack_a_impl<8>,
    /*pack_b=*/kdetail::pack_b_impl<8>,
    /*gemm_small=*/kdetail::gemm_small_impl,
    /*vexp=*/vexp_avx2,
    /*vtanh=*/vtanh_avx2,
    /*im2col=*/kdetail::im2col_impl,
    /*gemm_s8=*/gemm_s8_avx2,
};

}  // namespace

const KernelTable* kernel_table_avx2() { return &kTable; }

}  // namespace rptcn

#else  // tier not compiled in

namespace rptcn {
const KernelTable* kernel_table_avx2() { return nullptr; }
}  // namespace rptcn

#endif
