// Runtime kernel tier resolution. See dispatch.h for the contract.

#include "tensor/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace rptcn {

// Per-tier accessors, defined in kernels_{scalar,avx2,avx512}.cpp. A tier
// that was not compiled in (missing compiler support or RPTCN_SIMD=OFF)
// returns nullptr.
const KernelTable* kernel_table_scalar();
const KernelTable* kernel_table_avx2();
const KernelTable* kernel_table_avx512();

namespace {

const KernelTable* table_for(KernelArch arch) {
  switch (arch) {
    case KernelArch::kScalar:
      return kernel_table_scalar();
    case KernelArch::kAvx2:
      return kernel_table_avx2();
    case KernelArch::kAvx512:
      return kernel_table_avx512();
  }
  return nullptr;
}

bool host_supports(KernelArch arch) {
#if defined(__x86_64__) || defined(__i386__)
  switch (arch) {
    case KernelArch::kScalar:
      return true;
    case KernelArch::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case KernelArch::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return arch == KernelArch::kScalar;
#endif
}

std::atomic<const KernelTable*> g_active{nullptr};
std::mutex g_resolve_mu;

const KernelTable* resolve_active() {
  const KernelArch best = best_supported_arch();
  const KernelArch pick =
      resolve_arch(std::getenv("RPTCN_FORCE_ARCH"), best);
  const KernelTable* table = table_for(pick);
  RPTCN_CHECK(table != nullptr, "kernel tier resolved to a table that is "
                                "not compiled in");
  return table;
}

}  // namespace

const char* kernel_arch_name(KernelArch arch) {
  switch (arch) {
    case KernelArch::kScalar:
      return "scalar";
    case KernelArch::kAvx2:
      return "avx2";
    case KernelArch::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool cpu_supports(KernelArch arch) { return host_supports(arch); }

KernelArch best_supported_arch() {
  for (KernelArch arch : {KernelArch::kAvx512, KernelArch::kAvx2}) {
    if (host_supports(arch) && table_for(arch) != nullptr) return arch;
  }
  return KernelArch::kScalar;
}

KernelArch resolve_arch(const char* forced, KernelArch best) {
  if (forced == nullptr || *forced == '\0') return best;
  KernelArch want;
  if (std::strcmp(forced, "scalar") == 0) {
    want = KernelArch::kScalar;
  } else if (std::strcmp(forced, "avx2") == 0) {
    want = KernelArch::kAvx2;
  } else if (std::strcmp(forced, "avx512") == 0) {
    want = KernelArch::kAvx512;
  } else {
    RPTCN_WARN("RPTCN_FORCE_ARCH='" << forced
                                    << "' not recognised (want "
                                       "scalar|avx2|avx512); using "
                                    << kernel_arch_name(best));
    return best;
  }
  if (want > best) {
    RPTCN_WARN("RPTCN_FORCE_ARCH=" << forced
                                   << " unavailable on this host/build; "
                                      "clamping to "
                                   << kernel_arch_name(best));
    return best;
  }
  return want;
}

const KernelTable& kernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    std::lock_guard<std::mutex> lock(g_resolve_mu);
    table = g_active.load(std::memory_order_relaxed);
    if (table == nullptr) {
      table = resolve_active();
      g_active.store(table, std::memory_order_release);
    }
  }
  return *table;
}

KernelArch kernel_arch() { return kernels().arch; }

std::string cpu_flags_string() {
  std::ostringstream out;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports requires literal arguments.
  out << "avx2=" << (__builtin_cpu_supports("avx2") ? 1 : 0)
      << " fma=" << (__builtin_cpu_supports("fma") ? 1 : 0)
      << " avx512f=" << (__builtin_cpu_supports("avx512f") ? 1 : 0)
      << " avx512bw=" << (__builtin_cpu_supports("avx512bw") ? 1 : 0)
      << " avx512dq=" << (__builtin_cpu_supports("avx512dq") ? 1 : 0)
      << " avx512vl=" << (__builtin_cpu_supports("avx512vl") ? 1 : 0);
#else
  out << "non-x86";
#endif
  out << " compiled:scalar";
  if (kernel_table_avx2() != nullptr) out << ",avx2";
  if (kernel_table_avx512() != nullptr) out << ",avx512";
  return out.str();
}

void set_kernel_arch_for_testing(KernelArch arch) {
  const KernelTable* table = table_for(arch);
  RPTCN_CHECK(table != nullptr, "kernel tier not compiled into this binary");
  RPTCN_CHECK(host_supports(arch), "kernel tier not supported by this CPU");
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  g_active.store(table, std::memory_order_release);
}

void redetect_kernel_arch_for_testing() {
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  g_active.store(resolve_active(), std::memory_order_release);
}

}  // namespace rptcn
