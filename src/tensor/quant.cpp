#include "tensor/quant.h"

#include <cmath>

#include "common/check.h"
#include "tensor/dispatch.h"

namespace rptcn {

namespace {

std::int8_t quantize_one(float x, float inv_scale) {
  float q = std::nearbyintf(x * inv_scale);
  // Clamp with NaN-squashing comparisons (a NaN weight quantizes to 0
  // rather than poisoning the int cast with UB).
  q = q < 127.0f ? q : 127.0f;
  q = q > -127.0f ? q : -127.0f;
  return static_cast<std::int8_t>(q);
}

}  // namespace

float symmetric_scale(const float* x, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;  // NaN compares false: ignored, like the zero case
  }
  return m > 0.0f ? m / 127.0f : 1.0f;
}

void quantize_with_scale(const float* x, std::size_t n, float scale,
                         std::int8_t* q) {
  RPTCN_CHECK(scale > 0.0f, "quantize_with_scale: scale must be positive");
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < n; ++i) q[i] = quantize_one(x[i], inv);
}

QuantizedMatrix quantize_rows_symmetric(const float* w, std::size_t rows,
                                        std::size_t cols) {
  QuantizedMatrix qm;
  qm.rows = rows;
  qm.cols = cols;
  qm.data.resize(rows * cols);
  qm.scales.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = w + i * cols;
    const float scale = symmetric_scale(row, cols);
    qm.scales[i] = scale;
    quantize_with_scale(row, cols, scale, qm.data.data() + i * cols);
  }
  return qm;
}

void gemm_s8_nt(std::size_t m, std::size_t n, std::size_t k,
                const std::int8_t* a, const std::int8_t* b, std::int32_t* c) {
  kernels().gemm_s8(m, n, k, a, b, c);
}

void dequantize_bias(const std::int32_t* c, std::size_t m, std::size_t n,
                     float a_scale, const float* w_scales, const float* bias,
                     float* out) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t* crow = c + i * n;
    float* orow = out + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float s = a_scale * w_scales[j];
      const float v = static_cast<float>(crow[j]) * s;
      orow[j] = bias != nullptr ? v + bias[j] : v;
    }
  }
}

}  // namespace rptcn
