// Int8 symmetric quantization primitives for the inference-only quantized
// serving path (serve/quant.h).
//
// Scheme: weights are quantized per OUTPUT CHANNEL (per row of the [out, in]
// weight matrix) with a symmetric scale s_j = max|w_j|/127, q = clamp(
// round(w/s_j), -127, 127); activations are quantized dynamically per GEMM
// call with one symmetric scale for the whole batch. The int8 GEMM
// accumulates exactly in int32 (s8 x s8 products through the dispatched
// kernel — see tensor/dispatch.h), and the dequantize step folds
// s_act * s_w[j] and the float bias back in one pass. Rounding ties use
// nearbyintf (round-to-nearest-even, the current FP environment default) so
// quantization itself is deterministic and tier-independent; two
// quantizations of the same weights are byte-identical.
//
// The [-127, 127] clamp (not -128) keeps the scheme symmetric: q and -q are
// both representable, so sign-flipped weights quantize to sign-flipped
// codes.
#pragma once

#include <cstdint>
#include <vector>

namespace rptcn {

/// A row-major [rows, cols] int8 matrix with one symmetric scale per row.
/// dequant(i, j) = static_cast<float>(data[i*cols+j]) * scales[i].
struct QuantizedMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> data;  ///< [rows, cols]
  std::vector<float> scales;      ///< [rows]
};

/// Quantize a row-major [rows, cols] float matrix per row (per output
/// channel for an [out, in] weight matrix). An all-zero (or all-NaN-free
/// zero-magnitude) row gets scale 1.0f and all-zero codes — the degenerate
/// case stays exact.
QuantizedMatrix quantize_rows_symmetric(const float* w, std::size_t rows,
                                        std::size_t cols);

/// One symmetric scale for n values: max|x|/127, or 1.0f when max|x| == 0.
float symmetric_scale(const float* x, std::size_t n);

/// q[i] = clamp(round(x[i]/scale), -127, 127) with round-to-nearest-even.
void quantize_with_scale(const float* x, std::size_t n, float scale,
                         std::int8_t* q);

/// C[m,n] (int32, overwritten) = A[m,k] x B[n,k]^T on int8 operands through
/// the dispatched kernel. Exact in every tier.
void gemm_s8_nt(std::size_t m, std::size_t n, std::size_t k,
                const std::int8_t* a, const std::int8_t* b, std::int32_t* c);

/// out[i*n+j] = float(c[i*n+j]) * (a_scale * w_scales[j]) + bias[j]
/// (bias == nullptr -> no bias). The combined scale is formed once per
/// column in float, so the pass is deterministic and tier-independent.
void dequantize_bias(const std::int32_t* c, std::size_t m, std::size_t n,
                     float a_scale, const float* w_scales, const float* bias,
                     float* out);

}  // namespace rptcn
