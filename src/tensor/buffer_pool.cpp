#include "tensor/buffer_pool.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace rptcn::pool {

namespace {

bool env_disabled() {
  const char* v = std::getenv("RPTCN_DISABLE_POOL");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{!env_disabled()};
  return flag;
}

constexpr std::size_t kNumBuckets = 19;  // 2^6 .. 2^24

static_assert((kMinBucketFloats << (kNumBuckets - 1)) == kMaxBucketFloats);

/// Smallest bucket whose capacity covers n, or kNumBuckets when n is above
/// the top bucket.
std::size_t bucket_for_size(std::size_t n) {
  std::size_t cap = kMinBucketFloats;
  for (std::size_t b = 0; b < kNumBuckets; ++b, cap <<= 1)
    if (n <= cap) return b;
  return kNumBuckets;
}

std::size_t bucket_capacity(std::size_t b) { return kMinBucketFloats << b; }

/// Registry handles resolved once; Counter::add is a no-op while the
/// metrics layer is disabled, so these cost one relaxed load per event.
struct PoolMetrics {
  obs::Counter& hits = obs::metrics().counter("tensor_pool/hits");
  obs::Counter& misses = obs::metrics().counter("tensor_pool/misses");
  obs::Counter& bytes_recycled =
      obs::metrics().counter("tensor_pool/bytes_recycled");
  obs::Gauge& bytes_live = obs::metrics().gauge("tensor_pool/bytes_live");
};

/// Process-wide live-byte balance behind the tensor_pool/bytes_live gauge.
/// Only touched while metrics are enabled, so the disabled hot path never
/// contends on this shared line.
std::atomic<std::int64_t> g_live_bytes{0};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

struct ThreadCache {
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;
  std::size_t cached_bytes = 0;
  ThreadCacheStats stats;
};

// The dead flag is a trivially-destructible thread_local, so it stays
// readable after the cache's destructor ran (thread_local destruction
// order): releases during thread teardown then fall through to the
// allocator instead of touching a destroyed cache.
thread_local bool t_cache_dead = false;

struct CacheHolder {
  ThreadCache cache;
  ~CacheHolder() { t_cache_dead = true; }
};

ThreadCache* thread_cache() {
  if (t_cache_dead) return nullptr;
  thread_local CacheHolder holder;
  return &holder.cache;
}

/// Record `bytes` handed out by acquire(): per-thread balance plus, while
/// metrics are on, the process-wide bytes_live high-water gauge.
void account_acquire(ThreadCache* tc, std::size_t bytes) {
  if (tc != nullptr) {
    tc->stats.live_bytes += static_cast<std::int64_t>(bytes);
    if (tc->stats.live_bytes > tc->stats.live_bytes_high)
      tc->stats.live_bytes_high = tc->stats.live_bytes;
  }
  if (obs::enabled()) {
    const std::int64_t now =
        g_live_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                               std::memory_order_relaxed) +
        static_cast<std::int64_t>(bytes);
    if (now > 0) pool_metrics().bytes_live.set_max(static_cast<double>(now));
  }
}

void account_release(ThreadCache* tc, std::size_t bytes) {
  if (tc != nullptr) tc->stats.live_bytes -= static_cast<std::int64_t>(bytes);
  if (obs::enabled())
    g_live_bytes.fetch_sub(static_cast<std::int64_t>(bytes),
                           std::memory_order_relaxed);
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::vector<float> acquire(std::size_t n) {
  if (n == 0) return {};
  ThreadCache* tc = thread_cache();
  ThreadCache* cache = enabled() ? tc : nullptr;
  const std::size_t b = bucket_for_size(n);
  if (cache != nullptr && b < kNumBuckets && !cache->buckets[b].empty()) {
    std::vector<float> buf = std::move(cache->buckets[b].back());
    cache->buckets[b].pop_back();
    cache->cached_bytes -= buf.capacity() * sizeof(float);
    ++cache->stats.hits;
    --cache->stats.cached_buffers;
    cache->stats.cached_bytes = cache->cached_bytes;
    pool_metrics().hits.add(1);
    pool_metrics().bytes_recycled.add(n * sizeof(float));
    account_acquire(tc, buf.capacity() * sizeof(float));
    buf.resize(n);  // capacity covers n: never reallocates
    return buf;
  }
  if (cache != nullptr) ++cache->stats.misses;
  pool_metrics().misses.add(1);
  std::vector<float> buf;
  // Reserve the full bucket so the buffer re-enters the same bucket on
  // release; oversized requests get an exact allocation and are not cached.
  if (b < kNumBuckets) buf.reserve(bucket_capacity(b));
  buf.resize(n);
  account_acquire(tc, buf.capacity() * sizeof(float));
  return buf;
}

void release(std::vector<float>&& buf) {
  std::vector<float> victim = std::move(buf);  // frees on every early return
  if (victim.capacity() == 0) return;
  ThreadCache* tc = thread_cache();
  account_release(tc, victim.capacity() * sizeof(float));
  if (!enabled()) return;
  if (tc == nullptr) return;
  // Bucket by capacity: the invariant is capacity >= bucket_capacity(b), so
  // a vector that did not come from acquire() (Tensor::from) is filed under
  // the largest bucket its capacity fully covers.
  const std::size_t cap = victim.capacity();
  if (cap < kMinBucketFloats) return;
  std::size_t b = 0;
  while (b + 1 < kNumBuckets && bucket_capacity(b + 1) <= cap) ++b;
  const std::size_t bytes = cap * sizeof(float);
  if (tc->buckets[b].size() >= kMaxBuffersPerBucket ||
      tc->cached_bytes + bytes > kMaxCachedBytes)
    return;
  tc->buckets[b].push_back(std::move(victim));
  tc->cached_bytes += bytes;
  ++tc->stats.returns;
  ++tc->stats.cached_buffers;
  tc->stats.cached_bytes = tc->cached_bytes;
}

ThreadCacheStats thread_stats() {
  ThreadCache* tc = thread_cache();
  return tc != nullptr ? tc->stats : ThreadCacheStats{};
}

void clear_thread_cache() { trim(0); }

void trim(std::size_t keep_bytes) {
  ThreadCache* tc = thread_cache();
  if (tc == nullptr) return;
  // Largest buckets first: those hold the bytes a retired execution plan is
  // most likely to have stranded, and freeing one buys the most headroom.
  for (std::size_t b = kNumBuckets; b-- > 0 && tc->cached_bytes > keep_bytes;) {
    auto& bucket = tc->buckets[b];
    while (!bucket.empty() && tc->cached_bytes > keep_bytes) {
      tc->cached_bytes -= bucket.back().capacity() * sizeof(float);
      bucket.pop_back();
      --tc->stats.cached_buffers;
    }
  }
  tc->stats.cached_bytes = tc->cached_bytes;
}

}  // namespace rptcn::pool
