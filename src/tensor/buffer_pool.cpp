#include "tensor/buffer_pool.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace rptcn::pool {

namespace {

bool env_disabled() {
  const char* v = std::getenv("RPTCN_DISABLE_POOL");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{!env_disabled()};
  return flag;
}

constexpr std::size_t kNumBuckets = 19;  // 2^6 .. 2^24

static_assert((kMinBucketFloats << (kNumBuckets - 1)) == kMaxBucketFloats);

/// Smallest bucket whose capacity covers n, or kNumBuckets when n is above
/// the top bucket.
std::size_t bucket_for_size(std::size_t n) {
  std::size_t cap = kMinBucketFloats;
  for (std::size_t b = 0; b < kNumBuckets; ++b, cap <<= 1)
    if (n <= cap) return b;
  return kNumBuckets;
}

std::size_t bucket_capacity(std::size_t b) { return kMinBucketFloats << b; }

/// Registry handles resolved once; Counter::add is a no-op while the
/// metrics layer is disabled, so these cost one relaxed load per event.
struct PoolMetrics {
  obs::Counter& hits = obs::metrics().counter("tensor_pool/hits");
  obs::Counter& misses = obs::metrics().counter("tensor_pool/misses");
  obs::Counter& bytes_recycled =
      obs::metrics().counter("tensor_pool/bytes_recycled");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

struct ThreadCache {
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;
  std::size_t cached_bytes = 0;
  ThreadCacheStats stats;
};

// The dead flag is a trivially-destructible thread_local, so it stays
// readable after the cache's destructor ran (thread_local destruction
// order): releases during thread teardown then fall through to the
// allocator instead of touching a destroyed cache.
thread_local bool t_cache_dead = false;

struct CacheHolder {
  ThreadCache cache;
  ~CacheHolder() { t_cache_dead = true; }
};

ThreadCache* thread_cache() {
  if (t_cache_dead) return nullptr;
  thread_local CacheHolder holder;
  return &holder.cache;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::vector<float> acquire(std::size_t n) {
  if (n == 0) return {};
  ThreadCache* tc = enabled() ? thread_cache() : nullptr;
  const std::size_t b = bucket_for_size(n);
  if (tc != nullptr && b < kNumBuckets && !tc->buckets[b].empty()) {
    std::vector<float> buf = std::move(tc->buckets[b].back());
    tc->buckets[b].pop_back();
    tc->cached_bytes -= buf.capacity() * sizeof(float);
    ++tc->stats.hits;
    --tc->stats.cached_buffers;
    tc->stats.cached_bytes = tc->cached_bytes;
    pool_metrics().hits.add(1);
    pool_metrics().bytes_recycled.add(n * sizeof(float));
    buf.resize(n);  // capacity covers n: never reallocates
    return buf;
  }
  if (tc != nullptr) ++tc->stats.misses;
  pool_metrics().misses.add(1);
  std::vector<float> buf;
  // Reserve the full bucket so the buffer re-enters the same bucket on
  // release; oversized requests get an exact allocation and are not cached.
  if (b < kNumBuckets) buf.reserve(bucket_capacity(b));
  buf.resize(n);
  return buf;
}

void release(std::vector<float>&& buf) {
  std::vector<float> victim = std::move(buf);  // frees on every early return
  if (victim.capacity() == 0 || !enabled()) return;
  ThreadCache* tc = thread_cache();
  if (tc == nullptr) return;
  // Bucket by capacity: the invariant is capacity >= bucket_capacity(b), so
  // a vector that did not come from acquire() (Tensor::from) is filed under
  // the largest bucket its capacity fully covers.
  const std::size_t cap = victim.capacity();
  if (cap < kMinBucketFloats) return;
  std::size_t b = 0;
  while (b + 1 < kNumBuckets && bucket_capacity(b + 1) <= cap) ++b;
  const std::size_t bytes = cap * sizeof(float);
  if (tc->buckets[b].size() >= kMaxBuffersPerBucket ||
      tc->cached_bytes + bytes > kMaxCachedBytes)
    return;
  tc->buckets[b].push_back(std::move(victim));
  tc->cached_bytes += bytes;
  ++tc->stats.returns;
  ++tc->stats.cached_buffers;
  tc->stats.cached_bytes = tc->cached_bytes;
}

ThreadCacheStats thread_stats() {
  ThreadCache* tc = thread_cache();
  return tc != nullptr ? tc->stats : ThreadCacheStats{};
}

void clear_thread_cache() {
  ThreadCache* tc = thread_cache();
  if (tc == nullptr) return;
  for (auto& bucket : tc->buckets) bucket.clear();
  tc->cached_bytes = 0;
  tc->stats.cached_buffers = 0;
  tc->stats.cached_bytes = 0;
}

}  // namespace rptcn::pool
