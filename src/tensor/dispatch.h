// Runtime kernel dispatch: cpuid-probed SIMD tiers for the numeric substrate.
//
// Every hot kernel in tensor_ops.cpp (the blocked GEMM micro-kernel and its
// pack routines, the small-shape GEMM, the im2col patch writer, the shared
// vexp/vtanh transcendental kernels, and the int8 GEMM behind quantized
// serving) is reached through one per-process KernelTable of function
// pointers. Three tiers are registered:
//
//   scalar — portable baseline, compiled with no ISA flags. Always present.
//   avx2   — 256-bit intrinsics (compiled with -mavx2 -mfma).
//   avx512 — 512-bit intrinsics (compiled with -mavx512{f,bw,dq,vl} -mfma).
//
// The active tier is resolved exactly once, on first use: the best tier the
// CPU supports (probed via __builtin_cpu_supports) intersected with the
// tiers compiled into the binary, overridden by RPTCN_FORCE_ARCH=
// {scalar,avx2,avx512}. Forcing a tier the host cannot run clamps down to
// the best supported one with a warning, so the override is always safe.
//
// Determinism contract: all tiers are BIT-IDENTICAL, not merely close.
//   * GEMM: every tier folds products with one correctly-rounded fma per
//     element in the same fixed k-ascending order; micro-tile width (8x8
//     scalar/avx2, 16x16 avx512) only changes which elements are computed
//     together, never the per-element operation sequence.
//   * exp/tanh (and sigmoid/softmax built on them): one shared polynomial
//     algorithm (kernels_detail.h) whose per-element fma chain is identical
//     in scalar and vector form. No libm in any tier, so no libm variance
//     either — results are also identical across glibc versions.
//   * im2col / packing: pure data movement, trivially exact.
//   * int8 GEMM: integer arithmetic, exact in any evaluation order.
// tests/test_kernel_dispatch.cpp enforces all of this bitwise, per tier,
// including remainder tails. Committed goldens/CSVs are therefore
// arch-independent: any tier regenerates them byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rptcn {

/// Arch tiers in strictly increasing capability order (comparable with <).
enum class KernelArch : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase tier name ("scalar", "avx2", "avx512").
const char* kernel_arch_name(KernelArch arch);

/// Per-tier kernel registrations. One immutable instance per compiled tier;
/// the active one is swapped atomically (tests) but entries never mutate.
struct KernelTable {
  KernelArch arch = KernelArch::kScalar;
  std::size_t mr = 8;  ///< micro-tile rows   (pack_a panel height)
  std::size_t nr = 8;  ///< micro-tile cols   (pack_b panel width)

  /// mr x nr register tile: acc[r*nr+c] = sum_p fma(ap[p*mr+r], bp[p*nr+c]).
  /// All mr*nr entries of acc are overwritten (no caller init needed);
  /// packed panels are zero-padded so edge tiles are computed in full.
  void (*micro_kernel)(std::size_t kc, const float* ap, const float* bp,
                       float* acc) = nullptr;

  /// Pack op(A)[mc x kc] starting at (i0, p0) into row panels of height mr,
  /// k-major, zero-padded short panels.
  void (*pack_a)(const float* a, std::size_t lda, bool trans, std::size_t i0,
                 std::size_t p0, std::size_t mc, std::size_t kc,
                 float* buf) = nullptr;

  /// Pack op(B)[kc x n] starting at row p0 into column panels of width nr,
  /// k-major, zero-padded short panels.
  void (*pack_b)(const float* b, std::size_t ldb, bool trans, std::size_t p0,
                 std::size_t kc, std::size_t n, float* buf) = nullptr;

  /// Small-shape triple loop (same k-ascending fma reduction), accumulating
  /// into zero-initialised C.
  void (*gemm_small)(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, bool ta, const float* b,
                     std::size_t ldb, bool tb, float* c) = nullptr;

  /// In-place p[i] = exp(p[i]) through the shared polynomial kernel.
  void (*vexp)(float* p, std::size_t n) = nullptr;

  /// In-place p[i] = tanh(p[i]) (odd-symmetric Cephes split: |x| <= 0.625
  /// direct polynomial, above it 1 - 2/(exp(2|x|)+1) through the same exp
  /// core).
  void (*vtanh)(float* p, std::size_t n) = nullptr;

  /// Causal-padding-aware im2col patch writer (signature and semantics of
  /// ag::fwd::im2col_strided; see autograd/ops.h).
  void (*im2col)(const float* x, std::size_t xs, std::size_t xc,
                 std::size_t nc, std::size_t cin, std::size_t t_in,
                 std::size_t k, std::size_t d, std::size_t pad,
                 std::size_t t_out, float* patches) = nullptr;

  /// Int8 GEMM for quantized serving: C[m,n] (int32, overwritten) =
  /// A[m,k] (s8, row-major) x B[n,k]^T (s8, row-major — the natural
  /// [out, in] weight layout). Exact integer arithmetic in every tier.
  void (*gemm_s8)(std::size_t m, std::size_t n, std::size_t k,
                  const std::int8_t* a, const std::int8_t* b,
                  std::int32_t* c) = nullptr;
};

/// The active tier's table. First call resolves the tier (cpuid ∩ compiled
/// tiers, RPTCN_FORCE_ARCH override); subsequent calls are one relaxed
/// atomic load.
const KernelTable& kernels();

/// Arch of the active table.
KernelArch kernel_arch();

/// Best tier this CPU can run among the tiers compiled into the binary.
KernelArch best_supported_arch();

/// True iff the host CPU can execute the given tier (independent of whether
/// it was compiled in).
bool cpu_supports(KernelArch arch);

/// Human-readable probe summary for bench metadata, e.g.
/// "avx2=1 fma=1 avx512f=1 avx512bw=1 avx512dq=1 avx512vl=1".
std::string cpu_flags_string();

/// Pure resolution rule behind the RPTCN_FORCE_ARCH override (exposed for
/// unit tests): empty/null -> best; unknown value -> best (warns); a tier
/// above `best` clamps to best (warns); otherwise the forced tier.
KernelArch resolve_arch(const char* forced, KernelArch best);

// -- test hooks ---------------------------------------------------------------
// Not for production use: the active tier is meant to be fixed for the whole
// process. Switching invalidates PackedB packs made under the old tier
// (gemm_accumulate_packed_b checks the recorded panel width and fails
// loudly). Both hooks are thread-safe to call, but callers must not race
// them against in-flight GEMMs that hold packs.

/// Force the active tier (must be compiled in and CPU-supported; checked).
void set_kernel_arch_for_testing(KernelArch arch);

/// Re-run the full resolution (cpuid + RPTCN_FORCE_ARCH) — lets tests
/// exercise the env-override plumbing with setenv().
void redetect_kernel_arch_for_testing();

}  // namespace rptcn
