// AVX-512 kernel tier. Compiled with -mavx512f -mavx512bw -mavx512dq
// -mavx512vl -mfma (gated by RPTCN_KERNELS_AVX512 from CMake); registers a
// 512-bit 16x16 GEMM micro-kernel (16 zmm accumulators), mask-blended
// exp/tanh through the shared polynomial cores, and a 512-bit madd_epi16
// int8 GEMM. Bit-identical to the scalar tier by construction — the wider
// micro-tile only changes which elements are computed together, never the
// per-element fma chain (zero-padded panel lanes are separate tile elements
// that edge writeback simply discards — they never touch real outputs).

#include "tensor/dispatch.h"

#if defined(RPTCN_KERNELS_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include "tensor/kernels_detail.h"

namespace rptcn {
namespace {

// 512-bit instantiation of the vector-ops concept in kernels_detail.h.
// Comparisons produce __mmask16 and selects use mask blends, but the
// lanewise semantics match VecScalar exactly.
struct VecAvx512 {
  static constexpr std::size_t kWidth = 16;
  using F = __m512;
  using I = __m512i;
  static F load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, F v) { _mm512_storeu_ps(p, v); }
  static F set1(float v) { return _mm512_set1_ps(v); }
  static I set1_i(std::int32_t v) { return _mm512_set1_epi32(v); }
  static F add(F a, F b) { return _mm512_add_ps(a, b); }
  static F sub(F a, F b) { return _mm512_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm512_mul_ps(a, b); }
  static F div(F a, F b) { return _mm512_div_ps(a, b); }
  static F fma(F a, F b, F c) { return _mm512_fmadd_ps(a, b, c); }
  static F max_(F a, F b) { return _mm512_max_ps(a, b); }
  static F min_(F a, F b) { return _mm512_min_ps(a, b); }
  static F round_(F a) {
    return _mm512_roundscale_ps(a,
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static I f2i(F a) { return _mm512_cvtps_epi32(a); }
  static I add_i(I a, I b) { return _mm512_add_epi32(a, b); }
  static I sub_i(I a, I b) { return _mm512_sub_epi32(a, b); }
  static I min_i(I a, I b) { return _mm512_min_epi32(a, b); }
  static F pow2_from_biased(I e) {
    return _mm512_castsi512_ps(_mm512_slli_epi32(e, 23));
  }
  static F abs_(F a) { return _mm512_abs_ps(a); }
  static F or_sign(F a, F x) {
    const F sign = _mm512_castsi512_ps(_mm512_and_epi32(
        _mm512_castps_si512(x),
        _mm512_set1_epi32(static_cast<std::int32_t>(0x80000000u))));
    return _mm512_castsi512_ps(_mm512_or_epi32(_mm512_castps_si512(a),
                                               _mm512_castps_si512(sign)));
  }
  static F select_gt(F a, F b, F t, F f) {
    return _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a, b, _CMP_GT_OQ), f, t);
  }
  static F select_lt(F a, F b, F t, F f) {
    return _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a, b, _CMP_LT_OQ), f, t);
  }
  static F select_nan(F a, F t, F f) {
    return _mm512_mask_blend_ps(_mm512_cmp_ps_mask(a, a, _CMP_UNORD_Q), f, t);
  }
};

void vexp_avx512(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecAvx512, kdetail::exp_core<VecAvx512>,
                               kdetail::exp_scalar_lane>(p, n);
}

void vtanh_avx512(float* p, std::size_t n) {
  kdetail::elementwise_inplace<VecAvx512, kdetail::tanh_core<VecAvx512>,
                               kdetail::tanh_scalar_lane>(p, n);
}

/// 16x16 register tile: one zmm per output row, broadcast-A fmadd per
/// product, p ascending — the scalar per-element reduction order.
void micro_kernel_avx512(std::size_t kc, const float* ap, const float* bp,
                         float* acc) {
  __m512 c[16];
  for (int r = 0; r < 16; ++r) c[r] = _mm512_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512 b = _mm512_loadu_ps(bp + p * 16);
    const float* arow = ap + p * 16;
    for (int r = 0; r < 16; ++r)
      c[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r]), b, c[r]);
  }
  for (int r = 0; r < 16; ++r) _mm512_storeu_ps(acc + r * 16, c[r]);
}

std::int32_t dot_s8_avx512(const std::int8_t* a, const std::int8_t* b,
                           std::size_t k) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m512i av = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p)));
    const __m512i bv = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, bv));
  }
  std::int32_t sum = _mm512_reduce_add_epi32(acc);
  for (; p < k; ++p)
    sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  return sum;
}

void gemm_s8_avx512(std::size_t m, std::size_t n, std::size_t k,
                    const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j)
      c[i * n + j] = dot_s8_avx512(arow, b + j * k, k);
  }
}

const KernelTable kTable = {
    /*arch=*/KernelArch::kAvx512,
    /*mr=*/16,
    /*nr=*/16,
    /*micro_kernel=*/micro_kernel_avx512,
    /*pack_a=*/kdetail::pack_a_impl<16>,
    /*pack_b=*/kdetail::pack_b_impl<16>,
    /*gemm_small=*/kdetail::gemm_small_impl,
    /*vexp=*/vexp_avx512,
    /*vtanh=*/vtanh_avx512,
    /*im2col=*/kdetail::im2col_impl,
    /*gemm_s8=*/gemm_s8_avx512,
};

}  // namespace

const KernelTable* kernel_table_avx512() { return &kTable; }

}  // namespace rptcn

#else  // tier not compiled in

namespace rptcn {
const KernelTable* kernel_table_avx512() { return nullptr; }
}  // namespace rptcn

#endif
