// Thread-local, size-bucketed free list behind Tensor storage.
//
// Every tensor op in this codebase returns a fresh Tensor by value, so one
// RPTCN training step used to perform hundreds of heap allocations on the
// autograd tape (forward values, backward gradients, im2col scratch).
// The pool recycles those buffers: Tensor routes its std::vector<float>
// storage through acquire()/release(), so a buffer freed by a dying
// intermediate is handed straight back to the next op of the same size
// class and the steady-state training loop is allocation-free.
//
// Design:
//  * Buckets are powers of two from kMinBucketFloats to kMaxBucketFloats.
//    acquire(n) pops from the smallest bucket whose capacity covers n; a
//    miss allocates a vector whose capacity is reserved to exactly the
//    bucket size so the buffer re-enters the same bucket on release.
//  * Caches are strictly thread_local — no locks, no cross-thread sharing,
//    so experiment jobs on the worker pool (common/thread_pool) never
//    contend and the pool is trivially race-free under TSAN.
//  * Lifetime rule: a buffer is released ONLY by ~Tensor / Tensor
//    assignment, i.e. when its unique owner dies. Live tensors never share
//    storage, so recycling cannot alias (tests/test_tensor_pool.cpp checks
//    this). Recycled contents are unspecified; Tensor's constructors always
//    initialise every element they expose.
//  * Bounded: at most kMaxBuffersPerBucket buffers per bucket and
//    kMaxCachedBytes cached per thread; excess releases fall through to the
//    allocator. Buffers above the top bucket are never cached.
//  * Escape hatch: RPTCN_DISABLE_POOL=1 in the environment (or
//    set_enabled(false)) makes acquire/release degenerate to plain
//    allocation, for debugging suspected recycling bugs.
//
// Observability: hits, misses and bytes recycled are exported through the
// obs::MetricsRegistry as tensor_pool/{hits,misses,bytes_recycled}; a
// tensor_pool/bytes_live gauge tracks (while metrics are enabled) the
// high-water mark of bytes handed out by acquire() and not yet returned.
// The accounting is approximate under buffer migration — a tensor released
// on a different thread than it was acquired on still balances globally,
// but a vector that never came from acquire() (Tensor::from) subtracts
// without having added. Exact per-thread numbers for tests come from
// thread_stats().
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rptcn::pool {

inline constexpr std::size_t kMinBucketFloats = 1u << 6;   // 256 B
inline constexpr std::size_t kMaxBucketFloats = 1u << 24;  // 64 MiB
inline constexpr std::size_t kMaxBuffersPerBucket = 16;
inline constexpr std::size_t kMaxCachedBytes = 64u << 20;  // per thread

/// Global recycling switch. Defaults to on unless RPTCN_DISABLE_POOL=1.
bool enabled();
void set_enabled(bool on);

/// A float buffer of size n (capacity >= n), recycled when possible.
/// Contents are unspecified — the caller must initialise what it reads.
std::vector<float> acquire(std::size_t n);

/// Return a buffer to the calling thread's cache (or free it when the
/// cache is full, the pool is disabled, or the thread is exiting).
/// The buffer must have no other owner.
void release(std::vector<float>&& buf);

/// Exact counters for the calling thread (tests; not merged across threads).
struct ThreadCacheStats {
  std::uint64_t hits = 0;        ///< acquires served from the cache
  std::uint64_t misses = 0;      ///< acquires that hit the allocator
  std::uint64_t returns = 0;     ///< releases accepted into the cache
  std::size_t cached_buffers = 0;
  std::size_t cached_bytes = 0;
  /// Bytes acquired minus bytes released on this thread. Signed: a thread
  /// that releases buffers acquired elsewhere (futures handing tensors
  /// across threads) legitimately goes negative.
  std::int64_t live_bytes = 0;
  std::int64_t live_bytes_high = 0;  ///< high-water of live_bytes
};
ThreadCacheStats thread_stats();

/// Drop every buffer cached by the calling thread (tests / memory pressure).
void clear_thread_cache();

/// Shrink the calling thread's cache until it holds at most `keep_bytes`,
/// freeing the largest buckets first (they are the ones a new execution
/// plan most often strands: once an arena replaces per-op buffers, the
/// worst-case im2col/activation buckets go permanently dead). trim(0) is
/// clear_thread_cache().
void trim(std::size_t keep_bytes = 0);

/// RAII scratch buffer for kernels (im2col patches, packed panels):
/// acquires on construction, releases on destruction, so per-call scratch
/// is recycled across calls without going through a Tensor.
class Scratch {
 public:
  explicit Scratch(std::size_t n) : buf_(acquire(n)) {}
  ~Scratch() { release(std::move(buf_)); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<float> buf_;
};

}  // namespace rptcn::pool
