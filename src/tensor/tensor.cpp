#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"
#include "tensor/buffer_pool.h"

namespace rptcn {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(pool::acquire(shape_size(shape_))) {
  for (auto d : shape_) RPTCN_CHECK(d > 0, "zero-extent dimension in shape");
  // Recycled buffers hold stale values; every element is initialised here.
  std::fill(data_.begin(), data_.end(), fill);
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(pool::acquire(other.data_.size())) {
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (data_.capacity() >= other.data_.size()) {
    data_.resize(other.data_.size());
  } else {
    pool::release(std::move(data_));
    data_ = pool::acquire(other.data_.size());
  }
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_)) {
  other.shape_.clear();
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  pool::release(std::move(data_));
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  other.shape_.clear();
  other.data_.clear();
  return *this;
}

Tensor::~Tensor() { pool::release(std::move(data_)); }

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape), 0.0f);
}

Tensor Tensor::ones(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape), 1.0f);
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::scalar(float value) { return full({1}, value); }

Tensor Tensor::from(std::vector<std::size_t> shape, std::vector<float> values) {
  RPTCN_CHECK(shape_size(shape) == values.size(),
              "value count " << values.size() << " does not match shape size "
                             << shape_size(shape));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::size_t n) {
  Tensor t({n});
  for (std::size_t i = 0; i < n; ++i) t.data_[i] = static_cast<float>(i);
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  RPTCN_CHECK(i < shape_.size(), "dim index " << i << " out of rank " << rank());
  return shape_[i];
}

Tensor Tensor::reshape(std::vector<std::size_t> new_shape) const {
  RPTCN_CHECK(shape_size(new_shape) == data_.size(),
              "reshape to incompatible size: " << shape_size(new_shape)
                                               << " != " << data_.size());
  Tensor t(*this);  // pooled copy
  t.shape_ = std::move(new_shape);
  return t;
}

std::size_t Tensor::offset2(std::size_t i, std::size_t j) const {
  RPTCN_DCHECK(rank() == 2, "rank-2 access on rank-" << rank() << " tensor");
  RPTCN_DCHECK(i < shape_[0] && j < shape_[1], "index out of range");
  return i * shape_[1] + j;
}

std::size_t Tensor::offset3(std::size_t i, std::size_t j, std::size_t k) const {
  RPTCN_DCHECK(rank() == 3, "rank-3 access on rank-" << rank() << " tensor");
  RPTCN_DCHECK(i < shape_[0] && j < shape_[1] && k < shape_[2],
               "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::offset4(std::size_t i, std::size_t j, std::size_t k,
                            std::size_t l) const {
  RPTCN_DCHECK(rank() == 4, "rank-4 access on rank-" << rank() << " tensor");
  RPTCN_DCHECK(i < shape_[0] && j < shape_[1] && k < shape_[2] && l < shape_[3],
               "index out of range");
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::at(std::size_t i) {
  RPTCN_DCHECK(rank() == 1, "rank-1 access on rank-" << rank() << " tensor");
  RPTCN_DCHECK(i < shape_[0], "index out of range");
  return data_[i];
}
float Tensor::at(std::size_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}
float& Tensor::at(std::size_t i, std::size_t j) { return data_[offset2(i, j)]; }
float Tensor::at(std::size_t i, std::size_t j) const {
  return data_[offset2(i, j)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  return data_[offset3(i, j, k)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return data_[offset3(i, j, k)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
  return data_[offset4(i, j, k, l)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                 std::size_t l) const {
  return data_[offset4(i, j, k, l)];
}

float Tensor::item() const {
  RPTCN_CHECK(data_.size() == 1,
              "item() on tensor with " << data_.size() << " elements");
  return data_[0];
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

std::string Tensor::shape_string() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

}  // namespace rptcn
