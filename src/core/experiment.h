// Experiment runner: one (frame, model, scenario) evaluation, the unit from
// which the Table II / Fig. 8-10 benches are composed.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace rptcn::core {

struct ExperimentResult {
  std::string model;
  std::string scenario;
  models::Accuracy accuracy;      ///< test-split MSE/MAE (normalised units)
  models::TrainCurves curves;     ///< per-epoch losses (empty for ARIMA)
  double fit_seconds = 0.0;
  std::size_t test_samples = 0;
  Tensor predictions;             ///< [S, horizon] test predictions
  Tensor targets;                 ///< [S, horizon] test targets
};

/// Train + evaluate one model under one scenario on one entity's frame.
ExperimentResult run_experiment(const data::TimeSeriesFrame& frame,
                                const std::string& target,
                                const std::string& model_name,
                                Scenario scenario,
                                const PrepareOptions& prepare,
                                const models::ModelConfig& model_config);

/// Average accuracy over several entities (the paper reports containers and
/// machines as groups, not single series).
struct AggregateResult {
  std::string model;
  std::string scenario;
  double mse = 0.0;
  double mae = 0.0;
  std::size_t entities = 0;
};
AggregateResult aggregate(const std::vector<ExperimentResult>& results);

}  // namespace rptcn::core
