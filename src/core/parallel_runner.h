// Parallel experiment runner: executes a flat (scenario x model x entity x
// seed) grid of run_experiment jobs on a fixed worker pool.
//
// Every headline artifact of the reproduction (Table II, Figs. 8-10, the
// ablation) is such a grid of *independent* training runs, so coarse-grained
// job parallelism is the first lever of throughput. The contract:
//
//  * Results come back in submission order, and each job's result is
//    bit-identical to running it serially: jobs carry their own seeds, every
//    numeric kernel is deterministic for any thread count, and OpenMP inside
//    kernels collapses to one thread while the pool is saturated (see
//    common/thread_pool.h and DESIGN.md "Threading model").
//  * The worker count comes from ParallelRunOptions::jobs, else the
//    RPTCN_JOBS environment variable, else hardware_concurrency.
//  * An exception in any job is rethrown on the calling thread after all
//    jobs have settled (no detached work left behind).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace rptcn::core {

/// One cell of an experiment grid. The frame must outlive the run (frames
/// are owned by the caller's ClusterSimulator / loader and only read).
struct ExperimentJob {
  const data::TimeSeriesFrame* frame = nullptr;
  std::string target = "cpu_util_percent";
  std::string model;
  Scenario scenario = Scenario::kMulExp;
  PrepareOptions prepare;
  models::ModelConfig config;
  std::string tag;  ///< caller label ("Mul-Exp/RPTCN/c_0/s42"), used in logs
};

struct ParallelRunOptions {
  std::size_t jobs = 0;   ///< worker threads; 0 = configured_jobs()
  bool verbose = false;   ///< print "[done] tag" lines in submission order
};

/// Worker count: RPTCN_JOBS env var when set (clamped to >= 1), else
/// std::thread::hardware_concurrency().
std::size_t configured_jobs();

/// Decorrelated per-job seed stream: child `index` of `base` via the same
/// SplitMix64 expansion Rng uses internally. Lets callers derive one seed
/// per grid cell without coupling neighbouring cells.
std::uint64_t job_seed(std::uint64_t base, std::size_t index);

/// Run the grid. Results are returned in submission order and are
/// bit-identical to a serial run of the same jobs.
std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentJob>& jobs,
    const ParallelRunOptions& options = {});

}  // namespace rptcn::core
