#include "core/metrics.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::core {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> b) {
  RPTCN_CHECK(a.size() == b.size(), "metric length mismatch: " << a.size()
                                                               << " vs "
                                                               << b.size());
  RPTCN_CHECK(!a.empty(), "metric on empty sequences");
}
}  // namespace

double mse(std::span<const double> truth, std::span<const double> predicted) {
  check_sizes(truth, predicted);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double e = truth[i] - predicted[i];
    s += e * e;
  }
  return s / static_cast<double>(truth.size());
}

double mae(std::span<const double> truth, std::span<const double> predicted) {
  check_sizes(truth, predicted);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    s += std::fabs(truth[i] - predicted[i]);
  return s / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  return std::sqrt(mse(truth, predicted));
}

double improvement_percent(double baseline, double candidate) {
  RPTCN_CHECK(baseline != 0.0, "baseline metric is zero");
  return 100.0 * (baseline - candidate) / baseline;
}

}  // namespace rptcn::core
