#include "core/parallel_runner.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>
#include <iostream>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rptcn::core {

namespace {

/// Registry handles for the runner, resolved once (name lookups take the
/// registry mutex; job bodies must not).
struct RunnerMetrics {
  obs::Counter& jobs = obs::metrics().counter("runner/jobs_total");
  obs::Gauge& workers = obs::metrics().gauge("runner/workers");
  obs::Gauge& peak_active = obs::metrics().gauge("runner/peak_active_jobs");
  obs::Histogram& queue_wait =
      obs::metrics().histogram("runner/queue_wait_seconds");
  obs::Histogram& job_seconds = obs::metrics().histogram("runner/job_seconds");
};

RunnerMetrics& runner_metrics() {
  static RunnerMetrics* m = new RunnerMetrics();
  return *m;
}

/// Decrements the active-job count on scope exit (exception-safe).
struct ActiveJobScope {
  std::atomic<std::size_t>* active;
  ~ActiveJobScope() { active->fetch_sub(1, std::memory_order_relaxed); }
};

}  // namespace

std::size_t configured_jobs() {
  if (const char* env = std::getenv("RPTCN_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
    // Malformed values fall through to the hardware default rather than
    // silently serialising a grid.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t job_seed(std::uint64_t base, std::size_t index) {
  // Jump the SplitMix64 stream to child `index`, then draw once: adjacent
  // indices land 2^64/phi apart in state space, so per-job streams are
  // decorrelated even for base seeds that differ by small integers.
  std::uint64_t state = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentJob>& jobs,
    const ParallelRunOptions& options) {
  for (const auto& job : jobs)
    RPTCN_CHECK(job.frame != nullptr,
                "run_experiments: job '" << job.tag << "' has no frame");

  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;
  const std::size_t workers =
      std::min(options.jobs == 0 ? configured_jobs() : options.jobs,
               jobs.size());

  // Snapshot the obs switch once: every job of this grid reports, or none
  // does, even if the switch flips mid-run.
  const bool metrics_on = obs::enabled();
  if (metrics_on)
    runner_metrics().workers.set(static_cast<double>(workers));
  std::atomic<std::size_t> active{0};

  const auto run_one = [metrics_on, &active](
                           const ExperimentJob& job,
                           std::chrono::steady_clock::time_point submitted) {
    if (!metrics_on)
      return run_experiment(*job.frame, job.target, job.model, job.scenario,
                            job.prepare, job.config);
    RunnerMetrics& m = runner_metrics();
    m.jobs.add(1);
    m.queue_wait.record(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - submitted)
                            .count());
    const std::size_t running =
        active.fetch_add(1, std::memory_order_relaxed) + 1;
    m.peak_active.set_max(static_cast<double>(running));
    ActiveJobScope scope{&active};
    obs::TraceSpan span("runner/job:" + job.tag);
    obs::ScopedTimer timer(m.job_seconds);
    return run_experiment(*job.frame, job.target, job.model, job.scenario,
                          job.prepare, job.config);
  };

  if (workers <= 1) {
    // Serial reference path: same code, same order, no pool.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_one(jobs[i], std::chrono::steady_clock::now());
      if (options.verbose)
        std::cout << "[done] " << jobs[i].tag << "\n" << std::flush;
    }
    return results;
  }

  std::vector<std::future<ExperimentResult>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(workers);
    for (const auto& job : jobs) {
      const auto submitted = std::chrono::steady_clock::now();
      futures.push_back(pool.submit(
          [&run_one, &job, submitted] { return run_one(job, submitted); }));
    }

    // Collect in submission order. Remember the first failure but keep
    // draining so every job settles before the pool is torn down.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        results[i] = futures[i].get();
        if (options.verbose && !first_error)
          std::cout << "[done] " << jobs[i].tag << "\n" << std::flush;
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace rptcn::core
