// Evaluation metrics of the paper (eqs. 9 and 10), on double sequences.
// Tensor-shaped variants live in models/forecaster.h (evaluate_accuracy).
#pragma once

#include <span>

namespace rptcn::core {

/// Mean squared error (eq. 9).
double mse(std::span<const double> truth, std::span<const double> predicted);

/// Mean absolute error (eq. 10).
double mae(std::span<const double> truth, std::span<const double> predicted);

/// Root mean squared error (convenience).
double rmse(std::span<const double> truth, std::span<const double> predicted);

/// Relative improvement of `candidate` over `baseline` in percent:
/// 100 * (baseline - candidate) / baseline. Positive = candidate better.
double improvement_percent(double baseline, double candidate);

}  // namespace rptcn::core
