#include "core/experiment.h"

#include "common/check.h"
#include "common/stopwatch.h"

namespace rptcn::core {

ExperimentResult run_experiment(const data::TimeSeriesFrame& frame,
                                const std::string& target,
                                const std::string& model_name,
                                Scenario scenario,
                                const PrepareOptions& prepare,
                                const models::ModelConfig& model_config) {
  PipelineConfig cfg;
  cfg.target = target;
  cfg.model_name = model_name;
  cfg.scenario = scenario;
  cfg.prepare = prepare;
  cfg.model = model_config;

  RptcnPipeline pipeline(cfg);
  Stopwatch watch;
  pipeline.fit(frame);
  const double fit_seconds = watch.elapsed_seconds();

  ExperimentResult result;
  result.model = model_name;
  result.scenario = scenario_name(scenario);
  result.fit_seconds = fit_seconds;
  result.predictions = pipeline.predict_test();
  result.targets = pipeline.dataset().test.targets;
  result.accuracy =
      models::evaluate_accuracy(result.predictions, result.targets);
  result.curves = pipeline.curves();
  result.test_samples = result.targets.dim(0);
  return result;
}

AggregateResult aggregate(const std::vector<ExperimentResult>& results) {
  RPTCN_CHECK(!results.empty(), "aggregate of no results");
  AggregateResult agg;
  agg.model = results.front().model;
  agg.scenario = results.front().scenario;
  for (const auto& r : results) {
    RPTCN_CHECK(r.model == agg.model && r.scenario == agg.scenario,
                "aggregate across mixed model/scenario");
    agg.mse += r.accuracy.mse;
    agg.mae += r.accuracy.mae;
  }
  agg.entities = results.size();
  agg.mse /= static_cast<double>(results.size());
  agg.mae /= static_cast<double>(results.size());
  return agg;
}

}  // namespace rptcn::core
