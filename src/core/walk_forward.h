// Walk-forward (rolling-origin) evaluation: the deployment-faithful way to
// assess a resource predictor. The series is cut into an initial training
// span plus F equal folds; for each fold the model is retrained on all data
// before the fold and evaluated on the fold alone, mimicking a resource
// manager that periodically refits on fresh history.
#pragma once

#include "core/scenario.h"
#include "models/registry.h"

namespace rptcn::core {

struct WalkForwardOptions {
  std::size_t folds = 4;            ///< evaluation folds after the warmup
  double initial_frac = 0.5;        ///< share of the series used as warmup
  double valid_frac_of_train = 0.2; ///< tail of each train span -> validation
};

struct WalkForwardFold {
  std::size_t fold = 0;
  models::Accuracy accuracy;
  std::size_t test_samples = 0;
  double fit_seconds = 0.0;
};

struct WalkForwardResult {
  std::vector<WalkForwardFold> folds;
  models::Accuracy overall;  ///< sample-weighted across folds
};

/// Retrain-and-roll evaluation of one model under one scenario.
WalkForwardResult walk_forward_evaluate(const data::TimeSeriesFrame& frame,
                                        const std::string& target,
                                        const std::string& model_name,
                                        Scenario scenario,
                                        const PrepareOptions& prepare,
                                        const models::ModelConfig& model_config,
                                        const WalkForwardOptions& options = {});

}  // namespace rptcn::core
