#include "core/walk_forward.h"

#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"
#include "data/correlation.h"

namespace rptcn::core {

namespace {

opt::TrainData take_range(const opt::TrainData& all, std::size_t start,
                          std::size_t count) {
  std::vector<std::size_t> idx(count);
  for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
  return {opt::gather_rows(all.inputs, idx),
          opt::gather_rows(all.targets, idx)};
}

}  // namespace

WalkForwardResult walk_forward_evaluate(
    const data::TimeSeriesFrame& frame, const std::string& target,
    const std::string& model_name, Scenario scenario,
    const PrepareOptions& prepare, const models::ModelConfig& model_config,
    const WalkForwardOptions& options) {
  RPTCN_CHECK(options.folds >= 1, "need at least one fold");
  RPTCN_CHECK(options.initial_frac > 0.0 && options.initial_frac < 1.0,
              "initial_frac must be in (0,1)");
  RPTCN_CHECK(options.valid_frac_of_train > 0.0 &&
                  options.valid_frac_of_train < 0.5,
              "valid_frac_of_train must be in (0, 0.5)");

  const std::size_t n = frame.length();
  const auto initial =
      static_cast<std::size_t>(std::floor(options.initial_frac *
                                          static_cast<double>(n)));
  const std::size_t fold_len = (n - initial) / options.folds;
  RPTCN_CHECK(fold_len > prepare.window.window + prepare.window.horizon,
              "folds too short for the window configuration");

  WalkForwardResult result;
  double mse_acc = 0.0, mae_acc = 0.0;
  std::size_t samples_acc = 0;

  for (std::size_t f = 0; f < options.folds; ++f) {
    const std::size_t train_end = initial + f * fold_len;
    const std::size_t test_end =
        f + 1 == options.folds ? n : train_end + fold_len;

    // Process the prefix with the same path as prepare_scenario, but split
    // windows at the fold boundary instead of 6:2:2.
    const data::TimeSeriesFrame prefix = frame.slice(0, test_end);
    PrepareOptions fold_prepare = prepare;
    // Fractions only matter for the internal 6:2:2 split, which we discard;
    // reuse prepare_scenario for the cleaning/normalising/screening path.
    PreparedData prepared =
        prepare_scenario(prefix, target, scenario, fold_prepare);

    // Window index i has its first forecast target at feature index
    // i + window; the boundary fraction maps the raw fold cut onto the
    // (possibly shortened) feature frame.
    const double boundary_frac =
        static_cast<double>(train_end) / static_cast<double>(test_end);
    const std::size_t feat_len = prepared.features.length();
    const auto boundary = static_cast<std::size_t>(
        std::floor(boundary_frac * static_cast<double>(feat_len)));

    data::WindowOptions wopt = prepare.window;
    const auto all = data::make_windows(prepared.features, target, wopt);
    // Train windows: every forecast target strictly before the boundary.
    std::size_t n_train_total = 0;
    for (std::size_t i = 0; i < all.samples(); ++i) {
      if (i * wopt.stride + wopt.window + wopt.horizon <= boundary)
        ++n_train_total;
      else
        break;
    }
    const std::size_t n_test = all.samples() - n_train_total;
    RPTCN_CHECK(n_train_total >= 20 && n_test >= 1,
                "fold " << f << " leaves too little data");
    const auto n_valid = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               options.valid_frac_of_train *
               static_cast<double>(n_train_total))));
    const std::size_t n_train = n_train_total - n_valid;

    models::ForecastDataset ds;
    ds.train = take_range(all, 0, n_train);
    ds.valid = take_range(all, n_train, n_valid);
    ds.test = take_range(all, n_train_total, n_test);
    ds.window = wopt.window;
    ds.horizon = wopt.horizon;
    ds.target_channel = prepared.features.index_of(target);
    ds.target_series = prepared.features.column(target);
    ds.train_len = n_train + wopt.window;
    ds.valid_len = n_valid;

    auto forecaster = models::make_forecaster(model_name, model_config);
    Stopwatch watch;
    forecaster->fit(ds);

    WalkForwardFold fold;
    fold.fold = f;
    fold.fit_seconds = watch.elapsed_seconds();
    fold.test_samples = n_test;
    fold.accuracy = models::evaluate_accuracy(
        forecaster->predict(ds.test.inputs), ds.test.targets);
    mse_acc += fold.accuracy.mse * static_cast<double>(n_test);
    mae_acc += fold.accuracy.mae * static_cast<double>(n_test);
    samples_acc += n_test;
    result.folds.push_back(fold);
  }

  result.overall.mse = mse_acc / static_cast<double>(samples_acc);
  result.overall.mae = mae_acc / static_cast<double>(samples_acc);
  return result;
}

}  // namespace rptcn::core
