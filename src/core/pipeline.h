// RptcnPipeline — the end-to-end facade of Algorithm 1 and the main public
// entry point of this library:
//
//   rptcn::core::PipelineConfig cfg;
//   rptcn::core::RptcnPipeline pipeline(cfg);
//   pipeline.fit(history_frame);                   // Algorithm 1, lines 1-6
//   auto next = pipeline.predict_next();           // cpu_{m+1..m+k}, raw units
//   auto acc  = pipeline.test_accuracy();          // held-out MSE/MAE
//
// The pipeline owns the preprocessing state (scaler, screened features) and
// any Forecaster from the registry, defaulting to RPTCN itself.
#pragma once

#include <memory>
#include <string>

#include "core/scenario.h"
#include "models/registry.h"

namespace rptcn::core {

struct PipelineConfig {
  std::string target = "cpu_util_percent";
  std::string model_name = "RPTCN";
  Scenario scenario = Scenario::kMulExp;
  PrepareOptions prepare;
  models::ModelConfig model;
};

class RptcnPipeline {
 public:
  explicit RptcnPipeline(PipelineConfig config);

  /// Run Algorithm 1 on a raw indicator frame: clean, normalise, screen,
  /// expand, window, train (with validation-based early stopping).
  void fit(const data::TimeSeriesFrame& history);
  bool fitted() const { return forecaster_ != nullptr; }

  /// Persist the trained model's weights. kUnsupported for models without
  /// weight checkpoints (ARIMA, XGBoost — refitting those is cheap).
  models::CheckpointStatus save_model(const std::string& path) const;
  /// Run Algorithm 1's preprocessing on `history` but load weights from a
  /// checkpoint instead of training. On any non-kOk status the pipeline is
  /// left unfitted (fitted() == false) rather than half-restored.
  models::CheckpointStatus restore(const data::TimeSeriesFrame& history,
                                   const std::string& path);

  /// Forecast the next horizon steps of the target after the end of the
  /// fitted history, mapped back to original resource units.
  std::vector<double> predict_next() const;

  /// Predictions for every held-out test window (normalised units).
  Tensor predict_test() const;
  /// MSE / MAE on the held-out test windows (normalised units, like the
  /// paper's Table II).
  models::Accuracy test_accuracy() const;

  const models::TrainCurves& curves() const;
  const models::ForecastDataset& dataset() const;
  /// The fitted forecaster (null before fit()/restore()). Non-const because
  /// serving snapshots (serve::InferenceSession) read weights through the
  /// forecaster's mutable accessors.
  models::Forecaster* forecaster() { return forecaster_.get(); }
  const data::MinMaxScaler& scaler() const;
  const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
  PreparedData prepared_;
  std::unique_ptr<models::Forecaster> forecaster_;
};

}  // namespace rptcn::core
