#include "core/scenario.h"

#include <cmath>

#include "common/check.h"
#include "data/correlation.h"
#include "obs/trace.h"

namespace rptcn::core {

const std::string& scenario_name(Scenario scenario) {
  static const std::string kUni = "Uni";
  static const std::string kMul = "Mul";
  static const std::string kMulExp = "Mul-Exp";
  switch (scenario) {
    case Scenario::kUni:
      return kUni;
    case Scenario::kMul:
      return kMul;
    case Scenario::kMulExp:
      return kMulExp;
  }
  RPTCN_CHECK(false, "bad scenario");
  return kUni;  // unreachable
}

Scenario scenario_from_name(const std::string& name) {
  if (name == "Uni") return Scenario::kUni;
  if (name == "Mul") return Scenario::kMul;
  if (name == "Mul-Exp" || name == "MulExp") return Scenario::kMulExp;
  RPTCN_CHECK(false, "unknown scenario: " << name);
  return Scenario::kUni;  // unreachable
}

PreparedData prepare_scenario(const data::TimeSeriesFrame& raw,
                              const std::string& target, Scenario scenario,
                              const PrepareOptions& options) {
  RPTCN_CHECK(raw.has(target), "target indicator missing: " << target);
  PreparedData out;

  // Algorithm 1 line 1: DataClean.
  const data::TimeSeriesFrame cleaned = [&] {
    obs::TraceSpan span("pipeline/clean");
    return data::clean_drop_incomplete(raw);
  }();
  RPTCN_CHECK(cleaned.length() > options.window.window + options.window.horizon,
              "too little complete data after cleaning");

  // Line 2: min-max normalisation (eq. 1).
  const data::TimeSeriesFrame normalised = [&] {
    obs::TraceSpan span("pipeline/normalise");
    return out.scaler.fit_transform(cleaned);
  }();

  // Lines 3-4: PCC screening (Mul / Mul-Exp); Uni keeps the target alone.
  data::TimeSeriesFrame screened = [&] {
    obs::TraceSpan span("pipeline/screen");
    data::TimeSeriesFrame kept =
        scenario == Scenario::kUni
            ? normalised.select({target})
            : data::select_top_half(normalised, target);
    // Future-work extension: first-order difference features.
    if (options.add_differences)
      kept = data::expand_with_differences(kept);
    return kept;
  }();

  // Line 5: horizontal expansion (Mul-Exp only). The weighted variant
  // (paper future work) assigns lag copies in proportion to |PCC|.
  {
    obs::TraceSpan span("pipeline/expand");
    if (scenario == Scenario::kMulExp) {
      out.features =
          options.weighted_expansion
              ? data::expand_weighted(screened, target,
                                      options.expansion.copies,
                                      options.expansion.stride)
              : data::expand_horizontal(screened, options.expansion);
    } else {
      out.features = std::move(screened);
    }
  }

  // Line 6 prerequisites: windows + chronological 6:2:2 split.
  obs::TraceSpan window_span("pipeline/window");
  const auto all =
      data::make_windows(out.features, target, options.window);
  auto split =
      data::chrono_split(all, options.train_frac, options.valid_frac);

  models::ForecastDataset& ds = out.dataset;
  ds.train = std::move(split.train);
  ds.valid = std::move(split.valid);
  ds.test = std::move(split.test);
  ds.window = options.window.window;
  ds.horizon = options.window.horizon;
  ds.target_channel = out.features.index_of(target);
  ds.target_series = out.features.column(target);
  // Raw-series lengths corresponding to the window split: the training
  // windows cover exactly [0, n_train + window) of the series (their last
  // target is at n_train + window + horizon - 1; we expose the history
  // boundary that sequential models may condition on without leakage).
  const std::size_t n_train = ds.train.samples();
  const std::size_t n_valid = ds.valid.samples();
  ds.train_len = n_train + options.window.window;
  ds.valid_len = n_valid;
  return out;
}

}  // namespace rptcn::core
