// The paper's three input scenarios (Section V-B) and the data-preparation
// path of Algorithm 1 that produces a ForecastDataset for each.
//
//   Uni     — univariate: the predicted resource's own history only.
//   Mul     — multivariate: the top half of all indicators by |PCC| with the
//             target (Algorithm 1 lines 3-4).
//   Mul-Exp — Mul plus horizontal time-dimension expansion (Fig. 4b).
#pragma once

#include <string>

#include "data/expansion.h"
#include "data/preprocess.h"
#include "data/windowing.h"
#include "models/forecaster.h"

namespace rptcn::core {

enum class Scenario { kUni, kMul, kMulExp };

const std::string& scenario_name(Scenario scenario);
Scenario scenario_from_name(const std::string& name);

struct PrepareOptions {
  data::WindowOptions window;        ///< window/horizon/stride
  data::ExpansionOptions expansion;  ///< Mul-Exp copies/stride
  bool add_differences = false;      ///< append first-difference features
                                     ///< (paper future work, Section V-C)
  bool weighted_expansion = false;   ///< PCC-weighted copies instead of
                                     ///< uniform (paper future work)
  double train_frac = 0.6;           ///< paper split 6:2:2
  double valid_frac = 0.2;
};

/// Result of Algorithm 1 lines 1-5: the processed feature frame, the fitted
/// scaler (for mapping predictions back to resource units) and the
/// supervised dataset.
struct PreparedData {
  data::TimeSeriesFrame features;   ///< cleaned, normalised, screened, expanded
  data::MinMaxScaler scaler;        ///< fitted on the cleaned raw frame
  models::ForecastDataset dataset;  ///< windows + raw target series
};

/// Run DataClean -> Normalise -> PCC screen -> DataExpansion -> windows for
/// the given scenario. The target is always feature channel 0.
PreparedData prepare_scenario(const data::TimeSeriesFrame& raw,
                              const std::string& target, Scenario scenario,
                              const PrepareOptions& options);

}  // namespace rptcn::core
