#include "core/pipeline.h"

#include "common/check.h"
#include "obs/trace.h"

namespace rptcn::core {

RptcnPipeline::RptcnPipeline(PipelineConfig config)
    : config_(std::move(config)) {}

void RptcnPipeline::fit(const data::TimeSeriesFrame& history) {
  obs::TraceSpan fit_span("pipeline/fit");
  {
    obs::TraceSpan span("pipeline/prepare");
    prepared_ = prepare_scenario(history, config_.target, config_.scenario,
                                 config_.prepare);
  }
  forecaster_ = models::make_forecaster(config_.model_name, config_.model);
  obs::TraceSpan train_span("pipeline/train");
  forecaster_->fit(prepared_.dataset);
}

models::CheckpointStatus RptcnPipeline::save_model(
    const std::string& path) const {
  RPTCN_CHECK(fitted(), "save_model before fit");
  return forecaster_->save(path);
}

models::CheckpointStatus RptcnPipeline::restore(
    const data::TimeSeriesFrame& history, const std::string& path) {
  obs::TraceSpan span("pipeline/restore");
  prepared_ = prepare_scenario(history, config_.target, config_.scenario,
                               config_.prepare);
  forecaster_ = models::make_forecaster(config_.model_name, config_.model);
  const models::CheckpointStatus status =
      forecaster_->restore(prepared_.dataset, path);
  if (status != models::CheckpointStatus::kOk) forecaster_.reset();
  return status;
}

std::vector<double> RptcnPipeline::predict_next() const {
  RPTCN_CHECK(fitted(), "predict_next before fit");
  const auto& features = prepared_.features;
  const std::size_t window = config_.prepare.window.window;
  const std::size_t f = features.indicators();
  RPTCN_CHECK(features.length() >= window, "history shorter than window");

  // Assemble the most recent window as a single-sample batch.
  Tensor input({1, f, window});
  const std::size_t start = features.length() - window;
  for (std::size_t c = 0; c < f; ++c) {
    const auto& col = features.column(c);
    for (std::size_t t = 0; t < window; ++t)
      input.at(0, c, t) = static_cast<float>(col[start + t]);
  }
  obs::TraceSpan span("pipeline/predict");
  const Tensor pred = forecaster_->predict(input);

  std::vector<double> normalised(pred.dim(1));
  for (std::size_t h = 0; h < normalised.size(); ++h)
    normalised[h] = pred.at(0, h);
  return prepared_.scaler.inverse_transform(config_.target, normalised);
}

Tensor RptcnPipeline::predict_test() const {
  RPTCN_CHECK(fitted(), "predict_test before fit");
  obs::TraceSpan span("pipeline/predict");
  return forecaster_->predict(prepared_.dataset.test.inputs);
}

models::Accuracy RptcnPipeline::test_accuracy() const {
  return models::evaluate_accuracy(predict_test(),
                                   prepared_.dataset.test.targets);
}

const models::TrainCurves& RptcnPipeline::curves() const {
  RPTCN_CHECK(fitted(), "curves before fit");
  return forecaster_->curves();
}

const models::ForecastDataset& RptcnPipeline::dataset() const {
  RPTCN_CHECK(fitted(), "dataset before fit");
  return prepared_.dataset;
}

const data::MinMaxScaler& RptcnPipeline::scaler() const {
  RPTCN_CHECK(fitted(), "scaler before fit");
  return prepared_.scaler;
}

}  // namespace rptcn::core
