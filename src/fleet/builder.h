// FleetBuilder: the fluent construction front of the fleet API.
//
// Single-entity serving is the N=1 case of the same builder — there is one
// way to stand up serving, not a special-cased pipeline next to a fleet:
//
//   auto fleet = FleetBuilder()
//                    .shards(2)
//                    .workers(4)
//                    .retrain(retrain_opts)
//                    .add_cohort("web", {"RPTCN"}, /*count=*/500, "web-")
//                    .add_entity("db-primary")   // private cohort of one
//                    .build();
//   fleet->bootstrap_cohort("web", history_frame);
//
// build() validates the assembled FleetOptions plus every EntitySpec with
// named errors before any thread or engine exists, and returns the running
// manager (workers up, engines up, zero entities bootstrapped).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fleet/manager.h"
#include "fleet/options.h"

namespace rptcn::fleet {

class FleetBuilder {
 public:
  FleetBuilder() = default;

  /// Replace the whole options aggregate (then refine with the setters).
  FleetBuilder& options(FleetOptions options);

  FleetBuilder& features(std::vector<std::string> names);
  FleetBuilder& shards(std::size_t n);
  FleetBuilder& workers(std::size_t n);
  FleetBuilder& engine(serve::EngineOptions options);
  FleetBuilder& channel(stream::ChannelOptions options);
  FleetBuilder& freeze_normalizer_at_bootstrap(bool on);
  FleetBuilder& drift(stream::DriftOptions options);
  FleetBuilder& retrain(stream::RetrainOptions options);
  FleetBuilder& retrain_on_drift(bool on);
  FleetBuilder& retrain_workers(std::size_t n);
  /// Admission bounds: global queued-tick cap + per-entity backlog cap.
  FleetBuilder& admission(std::size_t max_queued_ticks,
                          std::size_t max_entity_backlog);
  FleetBuilder& record_latencies(bool on);
  FleetBuilder& tenant(std::string tenant);

  /// Register one entity (cohort defaults to the id — no sharing).
  FleetBuilder& add_entity(EntitySpec spec);
  FleetBuilder& add_entity(std::string id);
  /// Register `count` entities "<id_prefix>0" .. "<id_prefix><count-1>" in
  /// one cohort sharing `model` — the bulk form a thousand-entity bench or
  /// deployment actually writes.
  FleetBuilder& add_cohort(const std::string& cohort,
                           models::ForecasterSpec model, std::size_t count,
                           const std::string& id_prefix);

  std::size_t entity_count() const { return entities_.size(); }
  const FleetOptions& peek_options() const { return options_; }

  /// Validate everything (named CheckError on the first offending field),
  /// start the manager, register every entity. The builder can be reused
  /// afterwards; build() copies.
  std::unique_ptr<FleetManager> build() const;

 private:
  FleetOptions options_;
  std::vector<EntitySpec> entities_;
};

}  // namespace rptcn::fleet
