#include "fleet/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace rptcn::fleet {

namespace {

/// Validation hook for the member-initializer list.
const SchedulerOptions& validated(const SchedulerOptions& options) {
  options.validate();
  return options;
}

}  // namespace

void SchedulerOptions::validate() const {
  RPTCN_CHECK(workers >= 1, "SchedulerOptions.workers must be >= 1");
  RPTCN_CHECK(max_queue >= 1, "SchedulerOptions.max_queue must be >= 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "SchedulerOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

RetrainScheduler::RetrainScheduler(SchedulerOptions options, FitFn fit)
    : options_(validated(options)),
      fit_(std::move(fit)),
      queue_depth_(obs::metrics().gauge("fleet/retrain_queue_depth",
                                        options_.tenant)),
      inflight_gauge_(
          obs::metrics().gauge("fleet/retrain_inflight", options_.tenant)),
      scheduled_counter_(obs::metrics().counter("fleet/retrains_scheduled",
                                                options_.tenant)),
      rejected_counter_(obs::metrics().counter("fleet/retrain_queue_rejected",
                                               options_.tenant)) {
  RPTCN_CHECK(fit_ != nullptr, "RetrainScheduler needs a fit function");
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

RetrainScheduler::~RetrainScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Queued-but-not-started requests are abandoned: on shutdown the fleet
    // is going away with them, and a fit nobody will serve is pure waste.
    heap_.clear();
    queued_.clear();
    queue_depth_.set(0.0);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool RetrainScheduler::request(RetrainRequest r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return false;
    auto it = queued_.find(r.entity);
    if (it != queued_.end()) {
      // Already queued: raise the live priority in place. The old heap
      // entry goes stale and pop_best skips it.
      if (r.priority > it->second) {
        it->second = r.priority;
        heap_.push_back(HeapEntry{r.priority, next_seq_++,
                                  std::move(r.entity), std::move(r.reason)});
        std::push_heap(heap_.begin(), heap_.end(), heap_less);
        ++reprioritized_;
      }
      return true;
    }
    if (queued_.size() >= options_.max_queue) {
      ++rejected_full_;
      rejected_counter_.add(1);
      return false;
    }
    queued_.emplace(r.entity, r.priority);
    heap_.push_back(HeapEntry{r.priority, next_seq_++, std::move(r.entity),
                              std::move(r.reason)});
    std::push_heap(heap_.begin(), heap_.end(), heap_less);
    ++accepted_;
    scheduled_counter_.add(1);
    queue_depth_.set(static_cast<double>(queued_.size()));
  }
  cv_.notify_one();
  return true;
}

bool RetrainScheduler::pop_best(RetrainRequest& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_less);
    HeapEntry e = std::move(heap_.back());
    heap_.pop_back();
    auto it = queued_.find(e.entity);
    // Stale entry: the entity was reprioritized (a fresher entry carries
    // the live priority) or already dispatched.
    if (it == queued_.end() || it->second != e.priority) continue;
    queued_.erase(it);
    out.entity = std::move(e.entity);
    out.priority = e.priority;
    out.reason = std::move(e.reason);
    return true;
  }
  return false;
}

void RetrainScheduler::worker_loop() {
  for (;;) {
    RetrainRequest r;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !heap_.empty(); });
      if (stop_) return;
      if (!pop_best(r)) continue;
      ++inflight_;
      queue_depth_.set(static_cast<double>(queued_.size()));
      inflight_gauge_.set(static_cast<double>(inflight_));
    }
    try {
      fit_(r);
    } catch (...) {
      // The fit contract is no-throw; a violation must not kill the worker.
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
      ++completed_;
      inflight_gauge_.set(static_cast<double>(inflight_));
    }
    idle_cv_.notify_all();
  }
}

void RetrainScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [this] { return queued_.empty() && inflight_ == 0; });
}

SchedulerStats RetrainScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats s;
  s.queued = queued_.size();
  s.inflight = inflight_;
  s.accepted = accepted_;
  s.completed = completed_;
  s.rejected_full = rejected_full_;
  s.reprioritized = reprioritized_;
  return s;
}

bool RetrainScheduler::heap_less(const HeapEntry& a, const HeapEntry& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.seq > b.seq;
}

}  // namespace rptcn::fleet
