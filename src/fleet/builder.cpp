#include "fleet/builder.h"

#include <sstream>
#include <utility>

#include "common/check.h"

namespace rptcn::fleet {

FleetBuilder& FleetBuilder::options(FleetOptions options) {
  options_ = std::move(options);
  return *this;
}

FleetBuilder& FleetBuilder::features(std::vector<std::string> names) {
  options_.features = std::move(names);
  return *this;
}

FleetBuilder& FleetBuilder::shards(std::size_t n) {
  options_.shards = n;
  return *this;
}

FleetBuilder& FleetBuilder::workers(std::size_t n) {
  options_.workers = n;
  return *this;
}

FleetBuilder& FleetBuilder::engine(serve::EngineOptions options) {
  options_.engine = std::move(options);
  return *this;
}

FleetBuilder& FleetBuilder::channel(stream::ChannelOptions options) {
  options_.channel = options;
  return *this;
}

FleetBuilder& FleetBuilder::freeze_normalizer_at_bootstrap(bool on) {
  options_.freeze_normalizer_at_bootstrap = on;
  return *this;
}

FleetBuilder& FleetBuilder::drift(stream::DriftOptions options) {
  options_.drift = std::move(options);
  return *this;
}

FleetBuilder& FleetBuilder::retrain(stream::RetrainOptions options) {
  options_.retrain = std::move(options);
  return *this;
}

FleetBuilder& FleetBuilder::retrain_on_drift(bool on) {
  options_.retrain_on_drift = on;
  return *this;
}

FleetBuilder& FleetBuilder::retrain_workers(std::size_t n) {
  options_.retrain_workers = n;
  return *this;
}

FleetBuilder& FleetBuilder::admission(std::size_t max_queued_ticks,
                                      std::size_t max_entity_backlog) {
  options_.max_queued_ticks = max_queued_ticks;
  options_.max_entity_backlog = max_entity_backlog;
  return *this;
}

FleetBuilder& FleetBuilder::record_latencies(bool on) {
  options_.record_latencies = on;
  return *this;
}

FleetBuilder& FleetBuilder::tenant(std::string tenant) {
  options_.tenant = std::move(tenant);
  return *this;
}

FleetBuilder& FleetBuilder::add_entity(EntitySpec spec) {
  if (spec.cohort.empty()) spec.cohort = spec.id;
  entities_.push_back(std::move(spec));
  return *this;
}

FleetBuilder& FleetBuilder::add_entity(std::string id) {
  EntitySpec spec;
  spec.id = std::move(id);
  spec.cohort = spec.id;
  return add_entity(std::move(spec));
}

FleetBuilder& FleetBuilder::add_cohort(const std::string& cohort,
                                       models::ForecasterSpec model,
                                       std::size_t count,
                                       const std::string& id_prefix) {
  RPTCN_CHECK(count >= 1, "add_cohort count must be >= 1");
  for (std::size_t i = 0; i < count; ++i) {
    std::ostringstream id;
    id << id_prefix << i;
    EntitySpec spec;
    spec.id = id.str();
    spec.cohort = cohort;
    spec.model = model;
    entities_.push_back(std::move(spec));
  }
  return *this;
}

std::unique_ptr<FleetManager> FleetBuilder::build() const {
  options_.validate();
  for (const EntitySpec& spec : entities_) spec.validate();
  auto manager = std::make_unique<FleetManager>(options_);
  for (const EntitySpec& spec : entities_) manager->add_entity(spec);
  return manager;
}

}  // namespace rptcn::fleet
