// RetrainScheduler: RollingRetrainer generalised from 1 to N.
//
// The single-pipeline retrainer is a one-thread pool with a busy flag: one
// entity, one in-flight fit. A fleet has thousands of entities whose drift
// events cluster (a regime change hits a whole cohort at once), so the
// scheduler is an elastic priority queue in front of a bounded worker pool:
//
//  * request() files (entity, priority, reason); priority is the drift
//    severity the manager computes from the detector statistics, so the
//    worst-drifted entities are retrained first and stable ones starve —
//    by design, the budget goes where the drift is.
//  * At most `workers` fits run concurrently — the global retrain budget.
//    A drift storm over 500 entities queues 500 requests and trickles
//    them through K fit slots instead of forking 500 trainers.
//  * One queue slot per entity: a re-request while queued raises the
//    priority in place (max), it never duplicates work.
//  * The queue is bounded (max_queue); beyond it requests are rejected
//    and the caller's drift detectors simply re-trigger later.
//
// The scheduler is mechanism only — it runs an opaque FitFn per request.
// The FleetManager supplies the fit (history snapshot -> gated fit ->
// session install); tests supply stubs to pin ordering and budget.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rptcn::fleet {

struct SchedulerOptions {
  std::size_t workers = 2;      ///< concurrent-fit budget (>= 1)
  std::size_t max_queue = 256;  ///< pending requests bound (>= 1)
  std::string tenant;           ///< fleet/retrain_* metrics label

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

struct RetrainRequest {
  std::string entity;
  double priority = 0.0;  ///< drift severity; higher runs first
  std::string reason;     ///< detector reason string, for the outcome log
};

struct SchedulerStats {
  std::size_t queued = 0;           ///< requests waiting for a fit slot
  std::size_t inflight = 0;         ///< fits running right now
  std::uint64_t accepted = 0;       ///< requests ever queued
  std::uint64_t completed = 0;      ///< fits finished (success or failure)
  std::uint64_t rejected_full = 0;  ///< requests bounced off max_queue
  std::uint64_t reprioritized = 0;  ///< re-requests that raised a priority
};

class RetrainScheduler {
 public:
  /// `fit` runs on a scheduler worker thread, one call per dispatched
  /// request; it must not throw (a throwing fit is counted and swallowed).
  using FitFn = std::function<void(const RetrainRequest&)>;

  RetrainScheduler(SchedulerOptions options, FitFn fit);
  /// Stops intake, abandons queued requests, waits for in-flight fits.
  ~RetrainScheduler();
  RetrainScheduler(const RetrainScheduler&) = delete;
  RetrainScheduler& operator=(const RetrainScheduler&) = delete;

  /// File a request. Returns false when the queue is full or the scheduler
  /// is stopping. A request for an already-queued entity raises that
  /// entry's priority to max(old, new) and returns true without consuming
  /// a second slot.
  bool request(RetrainRequest r);

  /// Block until the queue is empty and no fit is in flight.
  void wait_idle();

  SchedulerStats stats() const;
  const SchedulerOptions& options() const { return options_; }

 private:
  struct HeapEntry {
    double priority = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tiebreak among equal priorities
    std::string entity;
    std::string reason;
  };

  void worker_loop();
  /// Highest-priority live entry, skipping stale (reprioritized) ones.
  /// Caller holds mutex_; returns false when the queue is empty.
  bool pop_best(RetrainRequest& out);
  /// std::push_heap "less" ordering: max priority at the front, FIFO
  /// (lower seq) among equals.
  static bool heap_less(const HeapEntry& a, const HeapEntry& b);

  SchedulerOptions options_;
  FitFn fit_;

  obs::Gauge& queue_depth_;
  obs::Gauge& inflight_gauge_;
  obs::Counter& scheduled_counter_;
  obs::Counter& rejected_counter_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  /// entity -> live priority; the dedup index. A heap entry whose priority
  /// no longer matches is stale and skipped on pop (lazy invalidation).
  std::map<std::string, double> queued_;
  std::vector<HeapEntry> heap_;  ///< max-heap via std::push/pop_heap
  std::uint64_t next_seq_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t reprioritized_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rptcn::fleet
