#include "fleet/manager.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"
#include "trace/indicators.h"

namespace rptcn::fleet {

namespace {

/// Validation hook for the member-initializer list.
FleetOptions validated(FleetOptions options) {
  options.validate();
  return options;
}

/// Kept feature names: the explicit list, or all eight in Table-I order.
std::vector<std::string> resolve_features(const FleetOptions& options) {
  if (!options.features.empty()) return options.features;
  const auto& all = trace::indicator_names();
  return {all.begin(), all.end()};
}

/// Per-shard tenant label: "<tenant>/shard<k>" ("shard<k>" when the fleet
/// tenant is empty).
std::string shard_tenant_label(const std::string& tenant, std::size_t shard) {
  std::ostringstream out;
  if (!tenant.empty()) out << tenant << "/";
  out << "shard" << shard;
  return out.str();
}

stream::DriftOptions shard_drift_options(const FleetOptions& options,
                                         std::size_t shard) {
  stream::DriftOptions d = options.drift;
  d.tenant = shard_tenant_label(options.tenant, shard);
  return d;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Entity
// ---------------------------------------------------------------------------

FleetManager::Entity::Entity(EntitySpec s, std::size_t shard_index,
                             const std::vector<std::string>& features,
                             const FleetOptions& options)
    : spec(std::move(s)),
      shard(shard_index),
      channel(features, options.channel),
      drift(features, shard_drift_options(options, shard_index)) {
  norm_row.resize(features.size(), 0.0);
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

FleetManager::FleetManager(FleetOptions options)
    : options_(validated(std::move(options))),
      features_(resolve_features(options_)),
      ticks_counter_(
          obs::metrics().counter("fleet/ticks_total", options_.tenant)),
      dropped_counter_(
          obs::metrics().counter("fleet/ticks_dropped", options_.tenant)),
      rejected_counter_(
          obs::metrics().counter("fleet/ticks_rejected", options_.tenant)),
      forecasts_counter_(
          obs::metrics().counter("fleet/forecasts_total", options_.tenant)),
      forecast_failures_counter_(obs::metrics().counter(
          "fleet/forecast_failures_total", options_.tenant)),
      drift_counter_(
          obs::metrics().counter("fleet/drift_events", options_.tenant)),
      retrains_counter_(
          obs::metrics().counter("fleet/retrains_total", options_.tenant)),
      retrain_failures_counter_(obs::metrics().counter(
          "fleet/retrain_failures_total", options_.tenant)),
      tick_latency_hist_(obs::metrics().histogram(
          "fleet/tick_to_forecast_seconds", options_.tenant)),
      retrain_seconds_(
          obs::metrics().histogram("fleet/retrain_seconds", options_.tenant)),
      entities_gauge_(
          obs::metrics().gauge("fleet/entities", options_.tenant)),
      queue_depth_gauge_(
          obs::metrics().gauge("fleet/queue_depth", options_.tenant)),
      unique_snapshots_gauge_(
          obs::metrics().gauge("fleet/unique_snapshots", options_.tenant)) {
  engines_.reserve(options_.shards);
  for (std::size_t k = 0; k < options_.shards; ++k) {
    serve::EngineOptions eo = options_.engine;
    eo.tenant = shard_tenant_label(options_.tenant, k);
    engines_.push_back(std::make_unique<serve::BatchingEngine>(eo));
  }
  SchedulerOptions so;
  so.workers = options_.retrain_workers;
  so.max_queue = options_.max_retrain_queue;
  so.tenant = options_.tenant;
  scheduler_ = std::make_unique<RetrainScheduler>(
      so, [this](const RetrainRequest& r) { retrain_entity(r); });
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

FleetManager::~FleetManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Members tear down in reverse declaration order: the scheduler first
  // (finishing in-flight fits while entities_ and engines_ are alive),
  // then entities_, then the shard engines drain.
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void FleetManager::add_entity(EntitySpec spec) {
  if (spec.cohort.empty()) spec.cohort = spec.id;
  spec.validate();
  const std::size_t shard = shard_of(spec.id);
  auto entity = std::make_unique<Entity>(std::move(spec), shard, features_,
                                         options_);
  std::lock_guard<std::mutex> lock(mutex_);
  RPTCN_CHECK(entities_.find(entity->spec.id) == entities_.end(),
              "duplicate entity id: " << entity->spec.id);
  // Late joiner of a bootstrapped cohort: share the cohort session at
  // once. The entity is not yet visible to workers, so its state fields
  // are safe to touch without state_mutex.
  auto cohort_it = cohort_sessions_.find(entity->spec.cohort);
  if (cohort_it != cohort_sessions_.end()) {
    entity->session = cohort_it->second;
    entity->generation = 1;
    entity->shares_cohort_session = true;
  }
  entities_.emplace(entity->spec.id, std::move(entity));
  entities_gauge_.set(static_cast<double>(entities_.size()));
}

stream::RetrainOutcome FleetManager::bootstrap_cohort(
    const std::string& cohort, const data::TimeSeriesFrame& frame,
    bool seed_history) {
  std::vector<Entity*> members;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, e] : entities_)
      if (e->spec.cohort == cohort) members.push_back(e.get());
  }
  RPTCN_CHECK(!members.empty(),
              "bootstrap_cohort: no entities in cohort \"" << cohort << "\"");

  std::vector<const std::vector<double>*> cols;
  cols.reserve(features_.size());
  for (const std::string& name : features_) {
    RPTCN_CHECK(frame.has(name),
                "bootstrap_cohort frame is missing feature: " << name);
    cols.push_back(&frame.column(name));
  }

  // A scratch channel replays the frame once, producing exactly the
  // cleaned history + normalizer state every seeded member ends up with.
  stream::IngestChannel scratch(features_, options_.channel);
  std::vector<double> row(features_.size(), 0.0);
  for (std::size_t t = 0; t < frame.length(); ++t) {
    for (std::size_t f = 0; f < cols.size(); ++f) row[f] = (*cols[f])[t];
    scratch.ingest(row);
  }
  const std::size_t retained =
      std::min(scratch.ticks(), options_.channel.capacity);
  const std::size_t span = std::min(options_.retrain.history, retained);

  stream::FittedGeneration g;
  {
    obs::ScopedTimer timer(retrain_seconds_);
    g = stream::fit_generation_gated(
        scratch.history(span), scratch.normalizer(),
        retrain_options_for(members.front()->spec), /*next_generation=*/1,
        "bootstrap:" + cohort);
  }
  if (g.session == nullptr) {
    retrains_failed_.fetch_add(1, std::memory_order_relaxed);
    retrain_failures_counter_.add(1);
    return g.outcome;
  }
  // A gate-rejected bootstrap is still installed — some model must serve,
  // and drift retraining replaces a mediocre one later (pipeline parity).

  {
    std::lock_guard<std::mutex> lock(mutex_);
    cohort_sessions_[cohort] = g.session;
  }
  for (Entity* e : members) {
    std::lock_guard<std::mutex> state(e->state_mutex);
    if (seed_history) {
      for (std::size_t t = 0; t < frame.length(); ++t) {
        for (std::size_t f = 0; f < cols.size(); ++f) row[f] = (*cols[f])[t];
        e->channel.ingest(row);
      }
    }
    if (e->generation == 0) {
      e->session = g.session;
      e->generation = 1;
      e->shares_cohort_session = true;
      e->last_retrain_tick = e->channel.ticks();
    }
    if (options_.freeze_normalizer_at_bootstrap)
      e->channel.freeze_normalizer();
  }
  return g.outcome;
}

std::size_t FleetManager::entity_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entities_.size();
}

std::vector<std::string> FleetManager::entity_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(entities_.size());
  for (const auto& [id, e] : entities_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---------------------------------------------------------------------------
// Ingest / mailbox pool
// ---------------------------------------------------------------------------

Admission FleetManager::ingest(const std::string& entity,
                               std::vector<double> row) {
  RPTCN_CHECK(row.size() == features_.size(),
              "ingest row for \"" << entity << "\" carries " << row.size()
                                  << " values, fleet has "
                                  << features_.size() << " features");
  const auto now = std::chrono::steady_clock::now();
  bool notify = false;
  Admission verdict = Admission::kAccepted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      verdict = Admission::kStopped;
    } else {
      auto it = entities_.find(entity);
      if (it == entities_.end()) {
        verdict = Admission::kUnknownEntity;
      } else {
        Entity& e = *it->second;
        if (queued_ticks_ >= options_.max_queued_ticks) {
          verdict = Admission::kQueueFull;
          ++e.rejected;
        } else if (e.backlog.size() >= options_.max_entity_backlog) {
          verdict = Admission::kBacklogFull;
          ++e.rejected;
        } else {
          e.backlog.push_back(QueuedTick{std::move(row), now});
          ++queued_ticks_;
          queue_depth_gauge_.set(static_cast<double>(queued_ticks_));
          if (!e.scheduled) {
            e.scheduled = true;
            ready_.push_back(&e);
            notify = true;
          }
        }
      }
    }
  }
  if (verdict == Admission::kAccepted) {
    if (notify) work_cv_.notify_one();
  } else {
    ticks_rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_counter_.add(1);
  }
  return verdict;
}

void FleetManager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock,
                 [this] { return queued_ticks_ == 0 && processing_ == 0; });
}

void FleetManager::worker_loop() {
  for (;;) {
    Entity* e = nullptr;
    std::deque<QueuedTick> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) {
        // stop_ must be set (the predicate held) — drained, exit.
        return;
      }
      e = ready_.front();
      ready_.pop_front();
      batch.swap(e->backlog);
      queued_ticks_ -= batch.size();
      queue_depth_gauge_.set(static_cast<double>(queued_ticks_));
      ++processing_;
    }
    {
      std::lock_guard<std::mutex> state(e->state_mutex);
      for (QueuedTick& tick : batch) process_tick(*e, std::move(tick));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --processing_;
      if (!e->backlog.empty()) {
        // Refilled while we processed: back in line (scheduled stays set —
        // the entity is owned by the queue again, never by two workers).
        ready_.push_back(e);
        work_cv_.notify_one();
      } else {
        e->scheduled = false;
      }
      if (queued_ticks_ == 0 && processing_ == 0) drain_cv_.notify_all();
    }
  }
}

void FleetManager::process_tick(Entity& e, QueuedTick tick) {
  if (!e.channel.ingest(tick.row)) {
    ticks_dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter_.add(1);
    return;
  }
  ticks_accepted_.fetch_add(1, std::memory_order_relaxed);
  ticks_counter_.add(1);

  bool drift_fired = harvest_due(e);

  if (e.session != nullptr && options_.drift.monitor_inputs) {
    for (std::size_t f = 0; f < e.norm_row.size(); ++f)
      e.norm_row[f] = e.channel.latest_norm(f);
    if (e.drift.observe_inputs(e.norm_row)) drift_fired = true;
  }

  if (e.session != nullptr) {
    const std::size_t window = options_.retrain.window.window;
    if (e.channel.ready(window)) {
      try {
        std::future<Tensor> fut = engines_[e.shard]->submit(
            e.channel.latest_window(window), e.session);
        const Tensor out = fut.get();
        Entity::PendingForecast p;
        p.predicted_norm = static_cast<double>(out.raw()[0]);
        p.due_provider_tick = e.channel.ticks() + e.channel.dropped() + 1;
        p.generation = e.generation;
        e.pending = p;
        EntityForecast f;
        f.entity = e.spec.id;
        f.predicted_norm = p.predicted_norm;
        f.predicted_raw =
            e.channel.normalizer().denormalize(0, p.predicted_norm);
        f.generation = e.generation;
        f.tick = e.channel.ticks();
        e.last_forecast = std::move(f);
        ++e.forecasts;
        forecasts_.fetch_add(1, std::memory_order_relaxed);
        forecasts_counter_.add(1);
        const double latency = seconds_since(tick.accepted_at);
        tick_latency_hist_.record(latency);
        if (options_.record_latencies) {
          std::lock_guard<std::mutex> lock(latency_mutex_);
          latencies_.push_back(latency);
        }
      } catch (const std::exception&) {
        // The batch failure was delivered to every future; this entity's
        // tick simply has no forecast.
        forecast_failures_.fetch_add(1, std::memory_order_relaxed);
        forecast_failures_counter_.add(1);
      }
    }
  }

  if (drift_fired) {
    ++e.drift_events;
    drift_events_.fetch_add(1, std::memory_order_relaxed);
    drift_counter_.add(1);
    maybe_request_retrain(e);
  } else {
    // No fire this tick, but a latched one may have aged out of the
    // cooldown window since it was caught.
    request_latched_retrain(e);
  }
}

bool FleetManager::harvest_due(Entity& e) {
  if (!e.pending.has_value()) return false;
  const std::size_t now = e.channel.ticks() + e.channel.dropped();
  if (e.pending->due_provider_tick > now) return false;
  const Entity::PendingForecast p = *e.pending;
  e.pending.reset();
  // The targeted tick was dropped: no ground truth, discard (the residual
  // stream stays strictly one-step — same rule as OnlinePipeline).
  if (p.due_provider_tick < now) return false;
  const double actual = e.channel.latest_norm(0);
  const double residual = std::abs(actual - p.predicted_norm);
  e.last_residual = residual;
  e.residual_sum += residual;
  ++e.residuals_scored;
  // A predecessor generation's residual must not seed the freshly reset
  // detectors with the old model's error regime.
  if (p.generation != e.generation) return false;
  return e.drift.observe_residual(residual);
}

// ---------------------------------------------------------------------------
// Elastic retraining
// ---------------------------------------------------------------------------

double FleetManager::drift_severity(const stream::DriftMonitor& drift,
                                    const stream::DriftOptions& options) {
  // How far past its threshold the loudest detector sits; >= 1 whenever a
  // detector just fired, and larger for harder drift — the scheduler
  // priority, so the worst-drifted entities win fit slots.
  double severity = 1.0;
  if (options.residual_ph.lambda > 0.0)
    severity = std::max(severity, drift.residual_detector().last_statistic() /
                                      options.residual_ph.lambda);
  if (options.windowed.ratio_threshold > 0.0)
    severity = std::max(severity, drift.windowed_monitor().last_ratio() /
                                      options.windowed.ratio_threshold);
  return severity;
}

void FleetManager::maybe_request_retrain(Entity& e) {
  if (!options_.retrain_on_drift || e.session == nullptr) return;
  // Latch first: the fire survives even when the cooldown or an in-flight
  // fit blocks the request right now. A louder fire raises the latched
  // severity (and takes over the reason) while a quieter repeat cannot
  // demote it.
  const double severity = drift_severity(e.drift, options_.drift);
  if (severity >= e.latched_severity) {
    e.latched_severity = severity;
    e.latched_reason = e.drift.last_reason();
  }
  request_latched_retrain(e);
}

void FleetManager::request_latched_retrain(Entity& e) {
  if (e.latched_severity <= 0.0) return;
  if (!options_.retrain_on_drift || e.session == nullptr) return;
  if (e.retrain_inflight) return;
  if (e.channel.ticks() - e.last_retrain_tick <
      options_.retrain.min_ticks_between)
    return;
  RetrainRequest r;
  r.entity = e.spec.id;
  r.priority = e.latched_severity;
  r.reason = e.latched_reason;
  if (scheduler_->request(std::move(r))) {
    e.retrain_inflight = true;
    e.last_retrain_tick = e.channel.ticks();
    e.latched_severity = 0.0;
    e.latched_reason.clear();
  }
}

stream::RetrainOptions FleetManager::retrain_options_for(
    const EntitySpec& spec) const {
  stream::RetrainOptions opt = options_.retrain;
  opt.model_name = spec.model.name;
  opt.model = spec.model.config;
  opt.tenant = options_.tenant;
  opt.quantized_serving = spec.quantized_serving;
  return opt;
}

void FleetManager::retrain_entity(const RetrainRequest& r) {
  Entity* e = find_entity(r.entity);
  if (e == nullptr) return;

  data::TimeSeriesFrame history;
  stream::OnlineNormalizer normalizer;
  std::uint64_t next_generation = 0;
  {
    std::lock_guard<std::mutex> state(e->state_mutex);
    const std::size_t retained =
        std::min(e->channel.ticks(), options_.channel.capacity);
    const std::size_t span = std::min(options_.retrain.history, retained);
    if (span <= options_.retrain.window.window +
                    options_.retrain.window.horizon) {
      // Not enough history for one supervised sample; the detectors will
      // re-trigger once there is.
      e->retrain_inflight = false;
      return;
    }
    history = e->channel.history(span);
    normalizer = e->channel.normalizer();
    next_generation = e->generation + 1;
  }

  stream::FittedGeneration g;
  {
    obs::ScopedTimer timer(retrain_seconds_);
    g = stream::fit_generation_gated(history, normalizer,
                                     retrain_options_for(e->spec),
                                     next_generation, r.reason);
  }
  const bool installed = g.session != nullptr && !g.outcome.quality_rejected;
  {
    std::lock_guard<std::mutex> state(e->state_mutex);
    e->retrain_inflight = false;
    if (installed) {
      // The entity splinters off the cohort snapshot onto its own
      // generation; other cohort members keep sharing the old pointer.
      e->session = g.session;
      e->generation = g.outcome.generation;
      e->shares_cohort_session = false;
      e->drift.reset();
      e->pending.reset();
      e->last_retrain_tick = e->channel.ticks();
      ++e->retrains;
    }
  }
  if (installed) {
    retrains_completed_.fetch_add(1, std::memory_order_relaxed);
    retrains_counter_.add(1);
  } else {
    retrains_failed_.fetch_add(1, std::memory_order_relaxed);
    retrain_failures_counter_.add(1);
  }
}

// ---------------------------------------------------------------------------
// Placement / observation
// ---------------------------------------------------------------------------

std::uint64_t FleetManager::entity_hash(const std::string& id) {
  // FNV-1a 64-bit: deterministic across runs, processes and platforms —
  // never std::hash, whose result is implementation-defined.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t FleetManager::shard_of(const std::string& id) const {
  return static_cast<std::size_t>(entity_hash(id) % options_.shards);
}

FleetManager::Entity* FleetManager::find_entity(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second.get();
}

EntityStats FleetManager::entity_stats(const std::string& id) const {
  Entity* e = nullptr;
  EntityStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entities_.find(id);
    RPTCN_CHECK(it != entities_.end(), "no such entity: " << id);
    e = it->second.get();
    s.rejected = e->rejected;
  }
  std::lock_guard<std::mutex> state(e->state_mutex);
  s.id = e->spec.id;
  s.cohort = e->spec.cohort;
  s.shard = e->shard;
  s.generation = e->generation;
  s.shares_cohort_session = e->shares_cohort_session;
  s.ticks = e->channel.ticks();
  s.dropped = e->channel.dropped();
  s.forecasts = e->forecasts;
  s.drift_events = e->drift_events;
  s.retrains = e->retrains;
  s.last_drift_reason = e->drift.last_reason();
  s.last_residual = e->last_residual;
  s.mean_abs_residual = e->residuals_scored == 0
                            ? 0.0
                            : e->residual_sum /
                                  static_cast<double>(e->residuals_scored);
  if (e->last_forecast.has_value()) {
    s.has_forecast = true;
    s.last_forecast_norm = e->last_forecast->predicted_norm;
    s.last_forecast_raw = e->last_forecast->predicted_raw;
  }
  return s;
}

std::vector<EntityForecast> FleetManager::latest_forecasts() const {
  std::vector<Entity*> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(entities_.size());
    for (const auto& [id, e] : entities_) all.push_back(e.get());
  }
  std::vector<EntityForecast> out;
  out.reserve(all.size());
  for (Entity* e : all) {
    std::lock_guard<std::mutex> state(e->state_mutex);
    if (e->last_forecast.has_value()) out.push_back(*e->last_forecast);
  }
  std::sort(out.begin(), out.end(),
            [](const EntityForecast& a, const EntityForecast& b) {
              return a.entity < b.entity;
            });
  return out;
}

FleetStats FleetManager::stats() const {
  FleetStats s;
  std::vector<Entity*> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.entities = entities_.size();
    s.queued_ticks = queued_ticks_;
    all.reserve(entities_.size());
    for (const auto& [id, e] : entities_) all.push_back(e.get());
  }
  s.shards = engines_.size();
  s.ticks_accepted = ticks_accepted_.load(std::memory_order_relaxed);
  s.ticks_dropped = ticks_dropped_.load(std::memory_order_relaxed);
  s.ticks_rejected = ticks_rejected_.load(std::memory_order_relaxed);
  s.forecasts = forecasts_.load(std::memory_order_relaxed);
  s.forecast_failures = forecast_failures_.load(std::memory_order_relaxed);
  s.drift_events = drift_events_.load(std::memory_order_relaxed);
  s.retrains_completed = retrains_completed_.load(std::memory_order_relaxed);
  s.retrains_failed = retrains_failed_.load(std::memory_order_relaxed);
  // Entity pointers are stable (the registry only grows), so the session
  // census can walk outside mutex_ taking each state mutex in turn.
  std::set<const void*> sessions;
  for (Entity* e : all) {
    std::lock_guard<std::mutex> state(e->state_mutex);
    if (e->session != nullptr) sessions.insert(e->session.get());
  }
  s.unique_snapshots = sessions.size();
  unique_snapshots_gauge_.set(static_cast<double>(s.unique_snapshots));
  return s;
}

std::vector<double> FleetManager::latencies_seconds() const {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  return latencies_;
}

serve::BatchingEngine& FleetManager::shard_engine(std::size_t shard) {
  RPTCN_CHECK(shard < engines_.size(),
              "shard " << shard << " out of range (" << engines_.size()
                       << " shards)");
  return *engines_[shard];
}

}  // namespace rptcn::fleet
