// Fleet construction vocabulary: the typed aggregates a FleetManager (or a
// FleetBuilder) is configured from, plus the admission-control result enum.
//
// Everything is an Options struct with a validate() that throws
// common::CheckError naming the offending field — the same construction API
// the serve/stream layers expose (EngineOptions, SourceOptions,
// PipelineOptions, ...), scaled from one pipeline to N entities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "models/registry.h"
#include "serve/engine.h"
#include "stream/channel.h"
#include "stream/drift.h"
#include "stream/retrain.h"

namespace rptcn::fleet {

/// One entity (machine / container / service instance) the fleet serves.
struct EntitySpec {
  /// Unique entity key; also the deterministic shard hash input.
  std::string id;
  /// Snapshot-sharing group. Entities in one cohort are bootstrapped from a
  /// single fit and share one immutable InferenceSession (shared_ptr) until
  /// drift splinters them onto private generations. Empty = the entity id:
  /// a private cohort of one, no sharing.
  std::string cohort;
  /// Cold-start recipe for the cohort's model. The first spec registered
  /// for a cohort wins; later members inherit it.
  models::ForecasterSpec model;
  /// Serve this entity's retrained generations through the int8 quantized
  /// snapshot (stream::RetrainOptions::quantized_serving). Set it on every
  /// member of a cohort to opt the whole cohort in — like `model`, the
  /// bootstrap fit follows the first spec registered for the cohort.
  bool quantized_serving = false;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

struct FleetOptions {
  /// Kept feature columns, target first; empty = the eight Table-I
  /// indicators in canonical order.
  std::vector<std::string> features;

  /// BatchingEngine shards; entities map to shards by FNV-1a hash of the
  /// id, so placement is deterministic across runs and processes.
  std::size_t shards = 4;
  /// Per-shard engine template. The tenant field is overwritten per shard
  /// ("<tenant>/shard<k>") so N shards never collide on serve/* metrics.
  serve::EngineOptions engine;

  /// Ingest worker pool multiplexing the per-entity mailboxes.
  std::size_t workers = 4;
  /// Global admission bound: ticks queued across all entities. ingest()
  /// answers kQueueFull beyond it — backpressure, not buffering.
  std::size_t max_queued_ticks = 4096;
  /// Per-entity admission bound: one slow or hot entity answers
  /// kBacklogFull instead of starving the rest of the fleet.
  std::size_t max_entity_backlog = 8;

  /// Per-entity streaming state: ring depth + normalizer policy.
  stream::ChannelOptions channel;
  /// Pin every member's scaler when its cohort bootstraps (mirrors
  /// OnlinePipeline::freeze_normalizer_at_bootstrap). A frozen scaler makes
  /// a later regime shift visible to the input detectors as a sustained
  /// out-of-range excursion instead of being absorbed into the running
  /// min/max; the adapting default re-scales drifted inputs back into the
  /// model's training range.
  bool freeze_normalizer_at_bootstrap = false;
  /// Per-entity drift template. The tenant field is overwritten per shard
  /// so detector gauges aggregate per shard and roll up per fleet.
  stream::DriftOptions drift;
  /// Retrain recipe template: window/horizon/history/split/gate/cooldown.
  /// model_name/model are overridden by each entity's ForecasterSpec.
  stream::RetrainOptions retrain;

  /// False freezes every bootstrap snapshot (measure drift, never act) —
  /// the fleet-scale static-model baseline.
  bool retrain_on_drift = true;
  /// Global concurrent-retrain budget: the elastic scheduler runs at most
  /// this many fits at once no matter how many entities drift together.
  std::size_t retrain_workers = 2;
  /// Pending retrain requests bound; beyond it requests are rejected and
  /// the entity re-triggers on its next drift event.
  std::size_t max_retrain_queue = 256;

  /// Record every tick-to-forecast latency sample (ingest-accept to future
  /// delivery) for exact quantiles via latencies_seconds(). Histograms keep
  /// aggregating either way.
  bool record_latencies = true;

  /// Metrics namespace for the whole fleet: fleet/* series label as
  /// {tenant=<tenant>}, shard-scoped series as {tenant=<tenant>/shard<k>}.
  std::string tenant = "fleet";

  /// Throws common::CheckError naming the offending field (recurses into
  /// the sub-option validators).
  void validate() const;
};

/// ingest() verdict. Everything except kAccepted means the tick was NOT
/// taken and the caller owns the shed/retry decision.
enum class Admission {
  kAccepted,      ///< queued to the entity's mailbox
  kQueueFull,     ///< global max_queued_ticks reached
  kBacklogFull,   ///< this entity's max_entity_backlog reached
  kUnknownEntity, ///< no such entity id registered
  kStopped,       ///< the fleet is shutting down
};

/// Stable lowercase name for an Admission verdict (logs, bench JSON).
const char* admission_name(Admission a);

}  // namespace rptcn::fleet
