#include "fleet/options.h"

#include "common/check.h"

namespace rptcn::fleet {

void EntitySpec::validate() const {
  RPTCN_CHECK(!id.empty(), "EntitySpec.id must be non-empty");
  RPTCN_CHECK(id.find_first_of("{}=") == std::string::npos,
              "EntitySpec.id must not contain '{', '}' or '=': \"" << id
                                                                   << "\"");
  RPTCN_CHECK(cohort.find_first_of("{}=") == std::string::npos,
              "EntitySpec.cohort must not contain '{', '}' or '=': \""
                  << cohort << "\"");
  model.validate();
}

void FleetOptions::validate() const {
  RPTCN_CHECK(shards >= 1, "FleetOptions.shards must be >= 1");
  RPTCN_CHECK(workers >= 1, "FleetOptions.workers must be >= 1");
  RPTCN_CHECK(max_queued_ticks >= 1,
              "FleetOptions.max_queued_ticks must be >= 1");
  RPTCN_CHECK(max_entity_backlog >= 1,
              "FleetOptions.max_entity_backlog must be >= 1");
  RPTCN_CHECK(retrain_workers >= 1,
              "FleetOptions.retrain_workers must be >= 1");
  RPTCN_CHECK(max_retrain_queue >= 1,
              "FleetOptions.max_retrain_queue must be >= 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "FleetOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
  channel.validate();
  drift.validate();
  retrain.validate();
  engine.validate();
  RPTCN_CHECK(channel.capacity >= retrain.window.window,
              "FleetOptions.channel.capacity ("
                  << channel.capacity
                  << ") must retain at least one forecast window ("
                  << retrain.window.window << " ticks)");
}

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kQueueFull: return "queue_full";
    case Admission::kBacklogFull: return "backlog_full";
    case Admission::kUnknownEntity: return "unknown_entity";
    case Admission::kStopped: return "stopped";
  }
  return "unknown";
}

}  // namespace rptcn::fleet
