// FleetManager: one engine surface, thousands of entities.
//
// The single-tenant stack (StreamSource -> DriftMonitor -> BatchingEngine
// -> RollingRetrainer) multiplied naively is N engines, N normalizers and N
// retrain threads. The fleet layer multiplexes instead:
//
//  * Model registry keyed by entity id. Each entity carries an immutable
//    shared_ptr<const InferenceSession>; entities in one cohort share the
//    SAME session object after bootstrap_cohort() — snapshot dedup is
//    literal pointer sharing, observable as stats().unique_snapshots.
//    A retrained entity splinters onto a private generation; the cohort
//    pointer lives on in the others.
//  * Engine sharding: `shards` BatchingEngines in multi-tenant shard mode,
//    entity -> shard by FNV-1a hash of the id (deterministic across runs).
//    Requests pin their entity's session; the engine coalesces runs of
//    same-session same-shape windows, so a cohort hashed to one shard
//    still batches its forwards together.
//  * Per-entity streaming state (IngestChannel + DriftMonitor + pending
//    forecast) behind a per-entity mailbox. ingest() is the admission
//    gate: O(1), never blocks, answers kQueueFull / kBacklogFull when the
//    global or per-entity bound is hit — callers shed, the fleet never
//    buffers unboundedly. `workers` pool threads drain ready mailboxes;
//    one entity is owned by at most one worker at a time, so per-entity
//    processing is serial (tick order preserved) while distinct entities
//    proceed in parallel.
//  * Elastic retraining: drift severity (detector statistic over its
//    threshold) becomes the priority of a RetrainScheduler request; at
//    most retrain_workers fits run fleet-wide, worst drift first.
//
// Tick-to-forecast latency is stamped at ingest-accept and recorded when
// the pinned forecast future delivers — mailbox wait, batching delay and
// the forward all included. fleet/tick_to_forecast_seconds aggregates it;
// latencies_seconds() returns the raw samples for exact quantiles.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/timeseries.h"
#include "fleet/options.h"
#include "fleet/scheduler.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "stream/channel.h"
#include "stream/drift.h"
#include "stream/retrain.h"

namespace rptcn::fleet {

/// Point-in-time view of one entity.
struct EntityStats {
  std::string id;
  std::string cohort;
  std::size_t shard = 0;
  std::uint64_t generation = 0;    ///< 0 = not bootstrapped yet
  bool shares_cohort_session = false;  ///< still on the cohort snapshot
  std::uint64_t ticks = 0;         ///< complete ticks accepted
  std::uint64_t dropped = 0;       ///< incomplete ticks dropped
  std::uint64_t rejected = 0;      ///< admissions bounced for this entity
  std::uint64_t forecasts = 0;
  std::uint64_t drift_events = 0;
  std::uint64_t retrains = 0;      ///< generations installed past bootstrap
  /// What fired most recently: "residual-ph", "error-ratio" or
  /// "input:<feature>"; empty while no detector has fired.
  std::string last_drift_reason;
  double last_residual = 0.0;      ///< newest one-step |residual| (norm)
  double mean_abs_residual = 0.0;  ///< running mean over scored forecasts
  bool has_forecast = false;       ///< a forecast has been delivered
  double last_forecast_norm = 0.0; ///< newest next-tick target forecast
  double last_forecast_raw = 0.0;  ///< same, denormalised to raw units
};

/// One entity's newest delivered forecast — the sched layer's input. The
/// raw value is denormalised under the entity's normalizer state at
/// delivery time, so with a frozen normalizer it is exactly what the
/// single-tenant stack would report.
struct EntityForecast {
  std::string entity;
  double predicted_norm = 0.0;  ///< target feature, normalised
  double predicted_raw = 0.0;   ///< target feature, raw units
  std::uint64_t generation = 0; ///< model generation that produced it
  std::uint64_t tick = 0;       ///< entity channel tick it was issued at
};

/// Point-in-time view of the fleet.
struct FleetStats {
  std::size_t entities = 0;
  std::size_t shards = 0;
  std::uint64_t ticks_accepted = 0;
  std::uint64_t ticks_dropped = 0;
  std::uint64_t ticks_rejected = 0;
  std::uint64_t forecasts = 0;
  std::uint64_t forecast_failures = 0;
  std::uint64_t drift_events = 0;
  std::uint64_t retrains_completed = 0;
  std::uint64_t retrains_failed = 0;  ///< fit errors + gate rejections
  std::size_t queued_ticks = 0;       ///< mailbox backlog right now
  /// Distinct InferenceSession objects across all bootstrapped entities —
  /// the dedup proof: equals the cohort count until drift splinters
  /// entities onto private generations, and is < entities whenever any
  /// cohort has >= 2 members still sharing.
  std::size_t unique_snapshots = 0;
};

class FleetManager {
 public:
  explicit FleetManager(FleetOptions options);
  /// Stops intake, drains every queued tick, joins the workers, then the
  /// scheduler finishes in-flight fits (queued ones are abandoned) and the
  /// shard engines drain.
  ~FleetManager();
  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  // -- Registry -------------------------------------------------------------

  /// Register an entity. Thread-safe; allowed while ingest is running (a
  /// fleet grows). If the entity's cohort was already bootstrapped the
  /// shared session is installed immediately. Throws on duplicate id.
  void add_entity(EntitySpec spec);

  /// Cold start one cohort: fit a single generation on `frame` (gated, the
  /// best attempt kept) and install the resulting session — ONE shared
  /// object — into every cohort member that has no private generation yet.
  /// When `seed_history` is true the frame's complete rows are also folded
  /// into each member's channel, so forecasting starts immediately.
  /// Returns the fit outcome; on a failed fit nothing is installed.
  stream::RetrainOutcome bootstrap_cohort(const std::string& cohort,
                                          const data::TimeSeriesFrame& frame,
                                          bool seed_history = true);

  std::size_t entity_count() const;
  std::vector<std::string> entity_ids() const;

  // -- Ingest ---------------------------------------------------------------

  /// Admit one raw tick (one value per fleet feature, in order) for
  /// `entity`. O(1), never blocks on model work. kAccepted means a worker
  /// will process it; anything else means the tick was shed.
  Admission ingest(const std::string& entity, std::vector<double> row);

  /// Block until every accepted tick has been fully processed (forecast
  /// scored, drift observed). Does NOT wait for retrains; use
  /// scheduler().wait_idle() for that.
  void drain();

  // -- Placement ------------------------------------------------------------

  /// FNV-1a 64-bit over the id bytes — the deterministic placement hash.
  static std::uint64_t entity_hash(const std::string& id);
  std::size_t shard_of(const std::string& id) const;

  // -- Observation ----------------------------------------------------------

  EntityStats entity_stats(const std::string& id) const;
  FleetStats stats() const;
  /// Newest delivered forecast for every entity that has one, sorted by
  /// entity id (deterministic). The bulk read the scheduling layer drives
  /// allocation from — one lock round-trip instead of N entity_stats calls.
  std::vector<EntityForecast> latest_forecasts() const;
  /// Copy of every recorded tick-to-forecast latency (seconds), for exact
  /// quantiles. Empty when record_latencies is off.
  std::vector<double> latencies_seconds() const;

  RetrainScheduler& scheduler() { return *scheduler_; }
  const RetrainScheduler& scheduler() const { return *scheduler_; }
  serve::BatchingEngine& shard_engine(std::size_t shard);
  const FleetOptions& options() const { return options_; }
  const std::vector<std::string>& feature_names() const { return features_; }

 private:
  struct QueuedTick {
    std::vector<double> row;
    std::chrono::steady_clock::time_point accepted_at;
  };

  /// All mutable per-entity state. `state_mutex` serializes the channel,
  /// drift monitor, session pointer and pending forecast between the
  /// owning ingest worker and a retrain fit snapshotting history; the
  /// mailbox fields are guarded by the fleet-wide mutex_ instead.
  struct Entity {
    EntitySpec spec;
    std::size_t shard = 0;

    std::mutex state_mutex;
    stream::IngestChannel channel;
    stream::DriftMonitor drift;
    std::shared_ptr<const serve::InferenceSession> session;
    std::uint64_t generation = 0;
    bool shares_cohort_session = false;
    bool retrain_inflight = false;
    std::uint64_t last_retrain_tick = 0;
    /// Drift latch: a fire that lands inside the retrain cooldown (or while
    /// a fit is in flight) is remembered here instead of dropped — the
    /// detectors reset after firing, so without the latch a regime shift
    /// caught mid-cooldown would never be acted on. > 0 means a request is
    /// owed; filed (at the latched severity) on the first eligible tick.
    double latched_severity = 0.0;
    std::string latched_reason;
    std::vector<double> norm_row;  ///< scratch for drift input rows

    struct PendingForecast {
      double predicted_norm = 0.0;
      /// Provider-tick (accepted + dropped) the forecast targets; a dropped
      /// target discards the forecast — same due-dating as OnlinePipeline.
      std::size_t due_provider_tick = 0;
      std::uint64_t generation = 0;
    };
    std::optional<PendingForecast> pending;

    /// Newest delivered forecast (guarded by state_mutex); kept after
    /// `pending` is harvested so readers always see the latest issue.
    std::optional<EntityForecast> last_forecast;

    // Stats (guarded by state_mutex except `rejected`, under mutex_).
    std::uint64_t rejected = 0;
    std::uint64_t forecasts = 0;
    std::uint64_t drift_events = 0;
    std::uint64_t retrains = 0;
    double last_residual = 0.0;
    double residual_sum = 0.0;
    std::uint64_t residuals_scored = 0;

    // Mailbox (guarded by mutex_).
    std::deque<QueuedTick> backlog;
    bool scheduled = false;  ///< queued in ready_ or owned by a worker

    Entity(EntitySpec s, std::size_t shard_index,
           const std::vector<std::string>& features,
           const FleetOptions& options);
  };

  void worker_loop();
  /// Process one tick for `e`. Caller holds e.state_mutex, NOT mutex_.
  void process_tick(Entity& e, QueuedTick tick);
  /// Score the due forecast (if any) against the just-accepted tick.
  /// Returns true when a drift detector fired.
  bool harvest_due(Entity& e);
  /// Drift severity from the detector statistics: how far past its
  /// threshold the loudest detector sits (>= 1 at a fire).
  static double drift_severity(const stream::DriftMonitor& drift,
                               const stream::DriftOptions& options);
  void maybe_request_retrain(Entity& e);
  /// File the latched retrain request if one is owed and the cooldown /
  /// in-flight guards allow it. Caller holds e.state_mutex.
  void request_latched_retrain(Entity& e);
  /// The scheduler's FitFn: snapshot history, gated fit, install.
  void retrain_entity(const RetrainRequest& r);
  Entity* find_entity(const std::string& id) const;
  /// The fleet retrain template specialised to one entity's model spec.
  stream::RetrainOptions retrain_options_for(const EntitySpec& spec) const;

  FleetOptions options_;
  std::vector<std::string> features_;

  obs::Counter& ticks_counter_;
  obs::Counter& dropped_counter_;
  obs::Counter& rejected_counter_;
  obs::Counter& forecasts_counter_;
  obs::Counter& forecast_failures_counter_;
  obs::Counter& drift_counter_;
  obs::Counter& retrains_counter_;
  obs::Counter& retrain_failures_counter_;
  obs::Histogram& tick_latency_hist_;
  obs::Histogram& retrain_seconds_;
  obs::Gauge& entities_gauge_;
  obs::Gauge& queue_depth_gauge_;
  obs::Gauge& unique_snapshots_gauge_;

  /// One engine per shard, multi-tenant mode (every request pins its
  /// session). Created up front; never resized.
  std::vector<std::unique_ptr<serve::BatchingEngine>> engines_;

  /// Guards the registry, mailboxes and ready queue. Never held while a
  /// state_mutex is held (workers release it before processing), so the
  /// lock order mutex_ -> state_mutex is acyclic.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: ready_ or stop_
  std::condition_variable drain_cv_;  ///< drain(): all mailboxes empty
  std::unordered_map<std::string, std::unique_ptr<Entity>> entities_;
  /// Cohort -> shared bootstrap session (installed into late joiners).
  std::unordered_map<std::string,
                     std::shared_ptr<const serve::InferenceSession>>
      cohort_sessions_;
  std::deque<Entity*> ready_;     ///< entities with non-empty backlog
  std::size_t queued_ticks_ = 0;  ///< sum of backlog sizes
  std::size_t processing_ = 0;    ///< entities owned by workers right now
  bool stop_ = false;

  // Fleet-wide tallies (atomic: bumped from workers without mutex_).
  std::atomic<std::uint64_t> ticks_accepted_{0};
  std::atomic<std::uint64_t> ticks_dropped_{0};
  std::atomic<std::uint64_t> ticks_rejected_{0};
  std::atomic<std::uint64_t> forecasts_{0};
  std::atomic<std::uint64_t> forecast_failures_{0};
  std::atomic<std::uint64_t> drift_events_{0};
  std::atomic<std::uint64_t> retrains_completed_{0};
  std::atomic<std::uint64_t> retrains_failed_{0};

  mutable std::mutex latency_mutex_;
  std::vector<double> latencies_;

  std::vector<std::thread> workers_;

  /// Declared last: destroyed first, so in-flight fits (which touch
  /// entities_ and engines_) finish while those members are still alive.
  std::unique_ptr<RetrainScheduler> scheduler_;
};

}  // namespace rptcn::fleet
