// The trainer's observation surface: a callback interface replacing the old
// TrainOptions::verbose flag, so "what happens each epoch" is pluggable
// instead of a hard-coded printf. Three implementations ship:
//
//   * LoggingObserver  — the old verbose output, via common/logging;
//   * MetricsObserver  — sink into the obs metrics registry (attached
//                        automatically by fit() while obs::enabled());
//   * test spies       — tests implement EpochObserver directly to assert
//                        on the exact per-epoch event stream.
//
// Observers are borrowed, not owned: callers keep them alive for the
// duration of fit(). fit() invokes them on the training thread, in the
// order they appear in TrainOptions::observers; when several training runs
// share one observer (e.g. the parallel experiment runner), on_epoch may be
// called concurrently from different runs, so implementations must be
// thread-safe (both shipped ones are).
#pragma once

#include <cstddef>

namespace rptcn::opt {

/// What the trainer saw in one epoch.
struct EpochEvent {
  std::size_t epoch = 0;       ///< 1-based
  std::size_t max_epochs = 0;
  double train_loss = 0.0;     ///< mean training loss this epoch
  double valid_loss = 0.0;     ///< validation loss this epoch
  bool improved = false;       ///< new best validation loss
  std::size_t batches = 0;     ///< optimizer steps taken this epoch
  double epoch_seconds = 0.0;  ///< wall time of the epoch (train + valid)
  double batches_per_second = 0.0;
};

/// Summary emitted once when fit() returns.
struct TrainEndEvent {
  std::size_t epochs_run = 0;
  std::size_t best_epoch = 0;  ///< 1-based epoch of best validation loss
  double best_valid_loss = 0.0;
  bool stopped_early = false;  ///< EarlyStopping fired before max_epochs
  double fit_seconds = 0.0;
};

class EpochObserver {
 public:
  virtual ~EpochObserver() = default;
  virtual void on_epoch(const EpochEvent& event) = 0;
  virtual void on_train_end(const TrainEndEvent& event) { (void)event; }
};

/// Logs one RPTCN_INFO line per epoch (the historical `verbose` output) and
/// an early-stop notice at the end.
class LoggingObserver final : public EpochObserver {
 public:
  void on_epoch(const EpochEvent& event) override;
  void on_train_end(const TrainEndEvent& event) override;
};

/// Forwards the event stream into the obs metrics registry:
///   counters    trainer/epochs_total, trainer/batches_total,
///               trainer/fits_total, trainer/early_stops_total
///   gauges      trainer/last_train_loss, trainer/last_valid_loss,
///               trainer/best_valid_loss
///   histograms  trainer/epoch_seconds, trainer/batches_per_second,
///               trainer/fit_seconds
class MetricsObserver final : public EpochObserver {
 public:
  MetricsObserver();
  void on_epoch(const EpochEvent& event) override;
  void on_train_end(const TrainEndEvent& event) override;

 private:
  struct Handles;
  Handles* handles_;  ///< registry handles, cached once (leaked with it)
};

/// Shared process-wide metrics sink; fit() attaches it while obs::enabled().
MetricsObserver& metrics_observer();

}  // namespace rptcn::opt
