// Mini-batch trainer: the paper's training loop (Adam + MSE + EarlyStopping
// with patience 10), generic over any Module with a [N,F,T] -> [N,horizon]
// forward function.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/module.h"
#include "opt/early_stopping.h"
#include "opt/observer.h"
#include "opt/optimizer.h"
#include "opt/schedule.h"

namespace rptcn::opt {

/// Supervised windows: inputs [S, F, T], targets [S, horizon].
struct TrainData {
  Tensor inputs;
  Tensor targets;

  std::size_t samples() const { return inputs.empty() ? 0 : inputs.dim(0); }
};

/// Training objective. kPinball turns the network into a tau-quantile
/// forecaster (capacity-planning extension).
enum class Loss { kMse, kMae, kPinball };

/// Forward function type: batched inputs -> predictions.
using ForwardFn = std::function<Variable(const Variable&)>;

struct TrainOptions;

/// One fully-fused optimisation step: forward, loss, backward, clip and
/// optimizer update in a single call. Implementations (graph::TrainStep)
/// capture the tape into a planned program and replay it; the contract is
/// bit-identical losses and weights vs the eager loop in fit().
class PlannedStep {
 public:
  virtual ~PlannedStep() = default;
  /// Run one step on batch (x [N,F,T], y [N,horizon]). Returns false if the
  /// step could not run at all (the caller then runs the eager path for this
  /// batch); on success writes the batch loss to *loss_out.
  virtual bool step(Tensor x, const Tensor& y, float* loss_out) = 0;
  /// End-of-epoch housekeeping (arena reuse stats, buffer-pool trims).
  virtual void on_epoch_end() {}
};

/// Builds the PlannedStep for one fit() call, or nullptr to train eagerly
/// (e.g. when the optimizer is not Adam or planning is disabled).
using PlannedStepFactory = std::function<std::shared_ptr<PlannedStep>(
    nn::Module& model, const ForwardFn& forward, Optimizer& optimizer,
    const TrainOptions& options)>;

struct TrainOptions {
  Loss loss = Loss::kMse;
  float pinball_tau = 0.9f;        ///< only used with Loss::kPinball
  std::size_t batch_size = 32;
  std::size_t max_epochs = 40;
  std::size_t patience = 10;       ///< EarlyStopping patience (paper value 10)
  bool restore_best = true;        ///< roll back to the best-validation epoch
  bool shuffle = true;
  float clip_norm = 0.0f;          ///< 0 disables gradient clipping
  std::uint64_t seed = 7;          ///< batch-shuffle stream
  const LrSchedule* schedule = nullptr;  ///< optional; nullptr = constant
  /// Per-epoch callbacks (borrowed; must outlive fit()). Add a
  /// LoggingObserver for the historical `verbose` output. While
  /// obs::enabled(), fit() additionally notifies the shared MetricsObserver
  /// whether or not it appears here.
  std::vector<EpochObserver*> observers;
  /// Optional planned-executor hook for the per-epoch validation pass.
  /// Invoked after each epoch's set_training(false), i.e. against the
  /// freshly-updated weights; the returned forward replaces `forward` for
  /// that evaluation only. Wired by models::fit_net when
  /// NnTrainConfig.planned_eval is set (captures a graph::snapshot of the
  /// epoch's weights and replays it through the planned executor — by the
  /// bit-identity contract the loss curve is unchanged).
  std::function<ForwardFn()> eval_forward_factory;
  /// Optional planned training step (ISSUE 8). Invoked once at the start of
  /// fit(); when it returns non-null, each batch goes through
  /// PlannedStep::step instead of the eager forward/backward/clip/step
  /// sequence (falling back per batch when step() declines). Wired by
  /// models::fit_net when NnTrainConfig.planned_step is set; bit-identical
  /// loss curves are part of the contract, enforced by the implementation's
  /// replay self-check.
  PlannedStepFactory planned_step_factory;
};

struct TrainHistory {
  std::vector<double> train_loss;  ///< mean training MSE per epoch
  std::vector<double> valid_loss;  ///< validation MSE per epoch
  std::size_t best_epoch = 0;      ///< 1-based epoch of best validation loss
  double best_valid_loss = 0.0;
  bool stopped_early = false;
};

/// Gather rows `index[...]` of a [S, ...] tensor into a new batch tensor.
Tensor gather_rows(const Tensor& t, const std::vector<std::size_t>& index);

/// The trainer's loss dispatch, shared with PlannedStep implementations so
/// the captured objective is the very op sequence fit() would run.
Variable apply_loss(const Variable& pred, const Tensor& target, Loss loss,
                    float pinball_tau);

/// Mean MSE of `forward` over a dataset (no gradients, eval mode is the
/// caller's responsibility).
double evaluate_mse(const ForwardFn& forward, const TrainData& data,
                    std::size_t batch_size);

/// Mean loss of `forward` over a dataset under an arbitrary objective.
double evaluate_loss(const ForwardFn& forward, const TrainData& data,
                     std::size_t batch_size, Loss loss,
                     float pinball_tau = 0.9f);

/// Train `model` on `train`, early-stopping on `valid`. Uses MSE loss.
TrainHistory fit(nn::Module& model, const ForwardFn& forward,
                 const TrainData& train, const TrainData& valid,
                 Optimizer& optimizer, const TrainOptions& options);

}  // namespace rptcn::opt
