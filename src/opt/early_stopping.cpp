#include "opt/early_stopping.h"

namespace rptcn::opt {

bool EarlyStopping::update(double valid_loss) {
  ++epoch_;
  if (valid_loss < best_loss_ - min_delta_) {
    best_loss_ = valid_loss;
    best_epoch_ = epoch_;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

}  // namespace rptcn::opt
