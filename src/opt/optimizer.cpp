#include "opt/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace rptcn::opt {

Optimizer::Optimizer(std::vector<Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  RPTCN_CHECK(!params_.empty(), "optimizer needs at least one parameter");
  for (const auto& p : params_)
    RPTCN_CHECK(p.defined() && p.requires_grad(),
                "optimizer parameters must be trainable leaves");
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

std::size_t Optimizer::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.size();
  return n;
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0f)
    for (const auto& p : params_)
      velocity_.push_back(Tensor::zeros(p.value().shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    if (momentum_ == 0.0f) {
      axpy(-lr_, g, value);
    } else {
      Tensor& v = velocity_[i];
      scale_inplace(v, momentum_);
      add_inplace(v, g);
      axpy(-lr_, v, value);
    }
  }
}

RmsProp::RmsProp(std::vector<Variable> params, float lr, float decay, float eps)
    : Optimizer(std::move(params), lr), decay_(decay), eps_(eps) {
  for (const auto& p : params_)
    sq_avg_.push_back(Tensor::zeros(p.value().shape()));
}

void RmsProp::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto value = params_[i].mutable_value().data();
    const auto g = params_[i].grad().data();
    auto s = sq_avg_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      s[j] = decay_ * s[j] + (1.0f - decay_) * g[j] * g[j];
      value[j] -= lr_ * g[j] / (std::sqrt(s[j]) + eps_);
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  offsets_.reserve(params_.size() + 1);
  std::size_t off = 0;
  for (const auto& p : params_) {
    offsets_.push_back(off);
    off += p.size();
  }
  offsets_.push_back(off);
  m_.assign(off, 0.0f);
  v_.assign(off, 0.0f);
}

void Adam::update_param(std::size_t i, const float* g, float bc1, float bc2) {
  auto value = params_[i].mutable_value().data();
  float* m = m_.data() + offsets_[i];
  float* v = v_.data() + offsets_[i];
  for (std::size_t j = 0; j < value.size(); ++j) {
    m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
    v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i)
    update_param(i, params_[i].grad().raw(), bc1, bc2);
}

void Adam::step_planned(const float* grad_slab) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i)
    update_param(i, grad_slab + offsets_[i], bc1, bc2);
}

float clip_grad_norm(std::vector<Variable>& params, float max_norm) {
  RPTCN_CHECK(max_norm > 0.0f, "clip_grad_norm needs positive max_norm");
  double total = 0.0;
  for (const auto& p : params) {
    const float n = norm2(p.grad());
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto& p : params) {
      // grad() returns const; scale through the node's tensor directly.
      Tensor g = p.grad();
      scale_inplace(g, scale);
      p.zero_grad();
      p.node()->accumulate(g);
    }
  }
  return norm;
}

float clip_grad_slab(float* slab, const std::vector<Variable>& params,
                     const std::vector<std::size_t>& offsets, float max_norm) {
  RPTCN_CHECK(max_norm > 0.0f, "clip_grad_slab needs positive max_norm");
  double total = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float n = norm2_raw(slab + offsets[i], params[i].size());
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    float* p = slab;
    float* end = slab + offsets[params.size()];
    for (; p != end; ++p) *p *= scale;
  }
  return norm;
}

}  // namespace rptcn::opt
