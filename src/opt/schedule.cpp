#include "opt/schedule.h"

#include <cmath>

namespace rptcn::opt {

float StepDecay::lr_at(std::size_t epoch, float base_lr) const {
  const auto steps = epoch / step_epochs_;
  return base_lr * std::pow(factor_, static_cast<float>(steps));
}

float CosineDecay::lr_at(std::size_t epoch, float base_lr) const {
  const float t = std::min(1.0f, static_cast<float>(epoch) /
                                     static_cast<float>(total_epochs_));
  const float cos_term = 0.5f * (1.0f + std::cos(static_cast<float>(M_PI) * t));
  return min_lr_ + (base_lr - min_lr_) * cos_term;
}

}  // namespace rptcn::opt
