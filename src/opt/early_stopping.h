// EarlyStopping with patience, mirroring the Keras callback the paper uses
// ("EarlyStopping ... patience is 10"). Optionally restores the weights of
// the best epoch when training stops.
#pragma once

#include <cstddef>
#include <limits>

namespace rptcn::opt {

class EarlyStopping {
 public:
  explicit EarlyStopping(std::size_t patience = 10, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {}

  /// Report a new validation loss. Returns true if this is the best so far.
  bool update(double valid_loss);

  /// True once `patience` consecutive epochs failed to improve.
  bool should_stop() const { return bad_epochs_ > patience_; }

  double best_loss() const { return best_loss_; }
  std::size_t best_epoch() const { return best_epoch_; }
  std::size_t epochs_seen() const { return epoch_; }

 private:
  std::size_t patience_;
  double min_delta_;
  double best_loss_ = std::numeric_limits<double>::infinity();
  std::size_t best_epoch_ = 0;
  std::size_t bad_epochs_ = 0;
  std::size_t epoch_ = 0;
};

}  // namespace rptcn::opt
