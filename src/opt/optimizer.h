// First-order optimizers over autograd parameters.
//
// Each optimizer holds the parameter Variables (shared graph leaves) plus
// its own per-parameter state buffers, and updates values in place from the
// accumulated gradients.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace rptcn::opt {

class Optimizer {
 public:
  Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the current gradients.
  virtual void step() = 0;

  /// Clear gradients of all managed parameters.
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  std::size_t parameter_count() const;
  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// RMSProp (Tieleman & Hinton).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Variable> params, float lr, float decay = 0.9f,
          float eps = 1e-8f);
  void step() override;

 private:
  float decay_;
  float eps_;
  std::vector<Tensor> sq_avg_;
};

/// Adam (Kingma & Ba) with bias correction — the paper's training optimizer.
///
/// Moment state lives in two contiguous slabs laid out in parameter order
/// (offsets()), so the planned training step can fuse the whole update into
/// strided sweeps over one gradient slab; step() walks the same slabs
/// per-parameter with identical element order, keeping the two paths
/// bit-identical.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

  /// One update reading gradients from a contiguous slab in parameter order
  /// (params()[i]'s gradient spans [offsets()[i], offsets()[i] + size)).
  /// Bit-identical to step() given bit-identical gradients.
  void step_planned(const float* grad_slab);

  /// Slab offset of each parameter, parameter order; back() is total floats.
  const std::vector<std::size_t>& offsets() const { return offsets_; }
  std::size_t slab_floats() const { return offsets_.back(); }

 private:
  void update_param(std::size_t i, const float* g, float bc1, float bc2);

  float beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<float> m_;              // first-moment slab
  std::vector<float> v_;              // second-moment slab
  std::vector<std::size_t> offsets_;  // params_.size() + 1 entries
};

/// Scale gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
float clip_grad_norm(std::vector<Variable>& params, float max_norm);

/// Slab-layout twin of clip_grad_norm: same per-parameter norm reduction
/// (in parameter order, double accumulation) and the same scale, applied to
/// a gradient slab with params[i] at offsets[i]. Bit-identical to running
/// clip_grad_norm on node gradients holding the same bits.
float clip_grad_slab(float* slab, const std::vector<Variable>& params,
                     const std::vector<std::size_t>& offsets, float max_norm);

}  // namespace rptcn::opt
