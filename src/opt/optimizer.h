// First-order optimizers over autograd parameters.
//
// Each optimizer holds the parameter Variables (shared graph leaves) plus
// its own per-parameter state buffers, and updates values in place from the
// accumulated gradients.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace rptcn::opt {

class Optimizer {
 public:
  Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the current gradients.
  virtual void step() = 0;

  /// Clear gradients of all managed parameters.
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  std::size_t parameter_count() const;

 protected:
  std::vector<Variable> params_;
  float lr_;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// RMSProp (Tieleman & Hinton).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Variable> params, float lr, float decay = 0.9f,
          float eps = 1e-8f);
  void step() override;

 private:
  float decay_;
  float eps_;
  std::vector<Tensor> sq_avg_;
};

/// Adam (Kingma & Ba) with bias correction — the paper's training optimizer.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Scale gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
float clip_grad_norm(std::vector<Variable>& params, float max_norm);

}  // namespace rptcn::opt
