#include "opt/observer.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace rptcn::opt {

void LoggingObserver::on_epoch(const EpochEvent& event) {
  RPTCN_INFO("epoch " << event.epoch << ": train " << event.train_loss
                      << ", valid " << event.valid_loss
                      << (event.improved ? " *" : ""));
}

void LoggingObserver::on_train_end(const TrainEndEvent& event) {
  if (event.stopped_early)
    RPTCN_INFO("early stop after " << event.epochs_run << " epochs (best "
                                   << event.best_valid_loss << " at epoch "
                                   << event.best_epoch << ")");
}

struct MetricsObserver::Handles {
  obs::Counter& epochs = obs::metrics().counter("trainer/epochs_total");
  obs::Counter& batches = obs::metrics().counter("trainer/batches_total");
  obs::Counter& fits = obs::metrics().counter("trainer/fits_total");
  obs::Counter& early_stops =
      obs::metrics().counter("trainer/early_stops_total");
  obs::Gauge& last_train = obs::metrics().gauge("trainer/last_train_loss");
  obs::Gauge& last_valid = obs::metrics().gauge("trainer/last_valid_loss");
  obs::Gauge& best_valid = obs::metrics().gauge("trainer/best_valid_loss");
  obs::Histogram& epoch_seconds =
      obs::metrics().histogram("trainer/epoch_seconds");
  obs::Histogram& batches_per_second =
      obs::metrics().histogram("trainer/batches_per_second");
  obs::Histogram& fit_seconds =
      obs::metrics().histogram("trainer/fit_seconds");
};

MetricsObserver::MetricsObserver() : handles_(new Handles()) {}

void MetricsObserver::on_epoch(const EpochEvent& event) {
  Handles& h = *handles_;
  h.epochs.add(1);
  h.batches.add(event.batches);
  h.last_train.set(event.train_loss);
  h.last_valid.set(event.valid_loss);
  h.epoch_seconds.record(event.epoch_seconds);
  h.batches_per_second.record(event.batches_per_second);
}

void MetricsObserver::on_train_end(const TrainEndEvent& event) {
  Handles& h = *handles_;
  h.fits.add(1);
  if (event.stopped_early) h.early_stops.add(1);
  h.best_valid.set(event.best_valid_loss);
  h.fit_seconds.record(event.fit_seconds);
}

MetricsObserver& metrics_observer() {
  static MetricsObserver* observer = new MetricsObserver();
  return *observer;
}

}  // namespace rptcn::opt
