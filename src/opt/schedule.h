// Learning-rate schedules.
#pragma once

#include <cstddef>

#include "common/check.h"

namespace rptcn::opt {

/// Interface: lr(epoch) given a base learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr_at(std::size_t epoch, float base_lr) const = 0;
};

/// Constant learning rate.
class ConstantLr final : public LrSchedule {
 public:
  float lr_at(std::size_t, float base_lr) const override { return base_lr; }
};

/// Multiply by `factor` every `step_epochs`.
class StepDecay final : public LrSchedule {
 public:
  StepDecay(std::size_t step_epochs, float factor)
      : step_epochs_(step_epochs), factor_(factor) {
    RPTCN_CHECK(step_epochs > 0, "step_epochs must be positive");
    RPTCN_CHECK(factor > 0.0f && factor <= 1.0f, "factor must be in (0,1]");
  }
  float lr_at(std::size_t epoch, float base_lr) const override;

 private:
  std::size_t step_epochs_;
  float factor_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineDecay final : public LrSchedule {
 public:
  CosineDecay(std::size_t total_epochs, float min_lr = 0.0f)
      : total_epochs_(total_epochs), min_lr_(min_lr) {
    RPTCN_CHECK(total_epochs > 0, "total_epochs must be positive");
  }
  float lr_at(std::size_t epoch, float base_lr) const override;

 private:
  std::size_t total_epochs_;
  float min_lr_;
};

}  // namespace rptcn::opt
