#include "opt/trainer.h"

#include <algorithm>
#include <cstring>

#include "autograd/ops.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rptcn::opt {

Tensor gather_rows(const Tensor& t, const std::vector<std::size_t>& index) {
  RPTCN_CHECK(t.rank() >= 2, "gather_rows expects rank >= 2");
  const std::size_t rows = t.dim(0);
  const std::size_t row_size = t.size() / rows;
  std::vector<std::size_t> shape = t.shape();
  shape[0] = index.size();
  Tensor out(shape);
  for (std::size_t i = 0; i < index.size(); ++i) {
    RPTCN_CHECK(index[i] < rows, "gather_rows index out of range");
    std::memcpy(out.raw() + i * row_size, t.raw() + index[i] * row_size,
                row_size * sizeof(float));
  }
  return out;
}

Variable apply_loss(const Variable& pred, const Tensor& target, Loss loss,
                    float pinball_tau) {
  switch (loss) {
    case Loss::kMse:
      return ag::mse_loss(pred, target);
    case Loss::kMae:
      return ag::mae_loss(pred, target);
    case Loss::kPinball:
      return ag::pinball_loss(pred, target, pinball_tau);
  }
  RPTCN_CHECK(false, "bad loss enum");
  return {};
}

double evaluate_loss(const ForwardFn& forward, const TrainData& data,
                     std::size_t batch_size, Loss loss, float pinball_tau) {
  RPTCN_CHECK(data.samples() > 0, "evaluate_loss on empty dataset");
  NoGradScope no_grad;
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < data.samples(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, data.samples());
    std::vector<std::size_t> idx(end - start);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = start + i;
    const Variable x(gather_rows(data.inputs, idx));
    const Tensor y = gather_rows(data.targets, idx);
    const Variable pred = forward(x);
    const Variable l = apply_loss(pred, y, loss, pinball_tau);
    total += static_cast<double>(l.value().item()) *
             static_cast<double>(idx.size());
    count += idx.size();
  }
  return total / static_cast<double>(count);
}

double evaluate_mse(const ForwardFn& forward, const TrainData& data,
                    std::size_t batch_size) {
  return evaluate_loss(forward, data, batch_size, Loss::kMse);
}

namespace {

std::vector<std::pair<std::string, Tensor>> snapshot(const nn::Module& model) {
  std::vector<std::pair<std::string, Tensor>> snap;
  for (const auto& [name, p] : model.named_parameters())
    snap.emplace_back(name, p.value());
  return snap;
}

void restore(nn::Module& model,
             const std::vector<std::pair<std::string, Tensor>>& snap) {
  auto params = model.named_parameters();
  RPTCN_CHECK(params.size() == snap.size(), "snapshot size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i].second.mutable_value() = snap[i].second;
  model.bump_weights_version();
}

}  // namespace

TrainHistory fit(nn::Module& model, const ForwardFn& forward,
                 const TrainData& train, const TrainData& valid,
                 Optimizer& optimizer, const TrainOptions& options) {
  RPTCN_CHECK(train.samples() > 0, "empty training set");
  RPTCN_CHECK(valid.samples() > 0, "empty validation set");
  RPTCN_CHECK(options.batch_size > 0, "batch_size must be positive");

  // The observation path: caller-provided observers plus, while the obs
  // layer is live, the shared metrics sink. The empty-vector case costs one
  // branch per epoch.
  std::vector<EpochObserver*> observers = options.observers;
  if (obs::enabled()) observers.push_back(&metrics_observer());
  obs::TraceSpan fit_span("trainer/fit");
  Stopwatch fit_watch;

  Rng shuffle_rng(options.seed);
  EarlyStopping stopper(options.patience);
  TrainHistory history;
  std::vector<std::pair<std::string, Tensor>> best_snapshot;
  const float base_lr = optimizer.lr();
  auto params = model.parameters();

  // Planned training step (ISSUE 8): when the factory produces an executor,
  // each batch goes through it; a declined batch falls back to the eager
  // sequence below, which is bit-identical by contract.
  std::shared_ptr<PlannedStep> planned;
  if (options.planned_step_factory)
    planned = options.planned_step_factory(model, forward, optimizer, options);

  for (std::size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    Stopwatch epoch_watch;
    if (options.schedule != nullptr)
      optimizer.set_lr(options.schedule->lr_at(epoch, base_lr));

    model.set_training(true);
    std::vector<std::size_t> order(train.samples());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (options.shuffle) order = shuffle_rng.permutation(train.samples());

    double epoch_loss = 0.0;
    std::size_t seen = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(start + options.batch_size, order.size());
      const std::vector<std::size_t> idx(order.begin() + start,
                                         order.begin() + end);
      const Tensor y = gather_rows(train.targets, idx);
      if (planned != nullptr) {
        float planned_loss = 0.0f;
        if (planned->step(gather_rows(train.inputs, idx), y, &planned_loss)) {
          epoch_loss += static_cast<double>(planned_loss) *
                        static_cast<double>(idx.size());
          seen += idx.size();
          ++batches;
          continue;
        }
      }
      const Variable x(gather_rows(train.inputs, idx));

      optimizer.zero_grad();
      const Variable pred = forward(x);
      Variable loss = apply_loss(pred, y, options.loss, options.pinball_tau);
      loss.backward();
      if (options.clip_norm > 0.0f)
        clip_grad_norm(params, options.clip_norm);
      optimizer.step();

      epoch_loss += static_cast<double>(loss.value().item()) *
                    static_cast<double>(idx.size());
      seen += idx.size();
      ++batches;
    }
    if (planned != nullptr) planned->on_epoch_end();
    history.train_loss.push_back(epoch_loss / static_cast<double>(seen));

    model.set_training(false);
    // The factory re-captures per epoch: weights changed, so any planned
    // executor it returns must be rebuilt from this epoch's parameters.
    const ForwardFn eval_forward = options.eval_forward_factory != nullptr
                                       ? options.eval_forward_factory()
                                       : forward;
    const double vloss = evaluate_loss(eval_forward, valid,
                                       options.batch_size, options.loss,
                                       options.pinball_tau);
    history.valid_loss.push_back(vloss);

    const bool improved = stopper.update(vloss);
    if (improved && options.restore_best) best_snapshot = snapshot(model);
    if (!observers.empty()) {
      EpochEvent event;
      event.epoch = epoch + 1;
      event.max_epochs = options.max_epochs;
      event.train_loss = history.train_loss.back();
      event.valid_loss = vloss;
      event.improved = improved;
      event.batches = batches;
      event.epoch_seconds = epoch_watch.elapsed_seconds();
      event.batches_per_second =
          event.epoch_seconds > 0.0
              ? static_cast<double>(batches) / event.epoch_seconds
              : 0.0;
      for (EpochObserver* observer : observers) observer->on_epoch(event);
    }
    if (stopper.should_stop()) {
      history.stopped_early = true;
      break;
    }
  }

  history.best_epoch = stopper.best_epoch();
  history.best_valid_loss = stopper.best_loss();
  if (!observers.empty()) {
    TrainEndEvent event;
    event.epochs_run = history.train_loss.size();
    event.best_epoch = history.best_epoch;
    event.best_valid_loss = history.best_valid_loss;
    event.stopped_early = history.stopped_early;
    event.fit_seconds = fit_watch.elapsed_seconds();
    for (EpochObserver* observer : observers) observer->on_train_end(event);
  }
  if (options.restore_best && !best_snapshot.empty())
    restore(model, best_snapshot);
  optimizer.set_lr(base_lr);
  model.set_training(false);
  return history;
}

}  // namespace rptcn::opt
