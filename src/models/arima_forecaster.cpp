#include "models/arima_forecaster.h"

#include "common/check.h"

namespace rptcn::models {

ArimaForecaster::ArimaForecaster(const baselines::ArimaOptions& options,
                                 bool auto_order)
    : options_(options), auto_order_(auto_order), model_(options) {}

void ArimaForecaster::fit(const ForecastDataset& dataset) {
  RPTCN_CHECK(!dataset.target_series.empty(),
              "ARIMA needs the raw target series in the dataset");
  target_channel_ = dataset.target_channel;
  horizon_ = dataset.horizon;
  const std::span<const double> train_series(dataset.target_series.data(),
                                             dataset.train_len);
  if (auto_order_) {
    options_ = baselines::select_arima_order(train_series);
    model_ = baselines::Arima(options_);
  }
  model_.fit(train_series);
  curves_ = {};  // closed-form estimation: no iterative loss curve
}

Tensor ArimaForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(model_.fitted(), "predict before fit");
  RPTCN_CHECK(inputs.rank() == 3, "ARIMA inputs must be [S,F,T]");
  const std::size_t s = inputs.dim(0), f = inputs.dim(1), t = inputs.dim(2);
  RPTCN_CHECK(target_channel_ < f, "target channel out of range");

  std::vector<double> history(t);
  Tensor out({s, horizon_});
  for (std::size_t i = 0; i < s; ++i) {
    const float* row = inputs.raw() + (i * f + target_channel_) * t;
    for (std::size_t j = 0; j < t; ++j) history[j] = row[j];
    const auto fc = model_.forecast(history, horizon_);
    for (std::size_t h = 0; h < horizon_; ++h)
      out.at(i, h) = static_cast<float>(fc[h]);
  }
  return out;
}

}  // namespace rptcn::models
