// ARIMA adapter. Coefficients are estimated once on the training portion of
// the raw target series; each prediction then runs the ARMA forecast
// recursion seeded with the target history contained in the input window —
// giving the same "given this window, forecast the next horizon steps"
// contract as every other model.
#pragma once

#include "baselines/arima.h"
#include "models/forecaster.h"

namespace rptcn::models {

class ArimaForecaster final : public Forecaster {
 public:
  /// auto_order: grid-search (p,d,q) on the training series at fit time.
  explicit ArimaForecaster(const baselines::ArimaOptions& options = {},
                           bool auto_order = false);

  std::string name() const override { return "ARIMA"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;

  const baselines::Arima& model() const { return model_; }

 private:
  baselines::ArimaOptions options_;
  bool auto_order_;
  baselines::Arima model_;
  std::size_t target_channel_ = 0;
  std::size_t horizon_ = 1;
};

}  // namespace rptcn::models
