// Neural forecaster adapters: RPTCN, plain TCN (ablation), LSTM, CNN-LSTM.
// Each defers network construction to fit() (feature count is data-driven)
// and trains with the paper's recipe: Adam + MSE + EarlyStopping(10).
#pragma once

#include <memory>

#include "models/forecaster.h"
#include "nn/cnn_lstm.h"
#include "nn/lstm.h"
#include "nn/rptcn_net.h"

namespace rptcn::models {

/// Training hyper-parameters shared by the neural adapters.
struct NnTrainConfig {
  std::size_t max_epochs = 40;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  std::size_t patience = 10;
  float clip_norm = 1.0f;
  std::uint64_t seed = 42;
  opt::Loss loss = opt::Loss::kMse;  ///< kPinball -> quantile forecaster
  float pinball_tau = 0.9f;
  /// Run each epoch's validation pass through the planned executor
  /// (graph capture + arena replay) instead of the tape forward. Loss
  /// curves are bit-identical either way (the planned executor's
  /// contract); this trades a per-epoch capture for faster evaluation on
  /// large validation sets. Ignored while RPTCN_DISABLE_PLAN=1.
  bool planned_eval = false;
  /// Run each training batch through the planned full-step executor
  /// (graph::make_planned_step): forward + backward + clip + Adam replayed
  /// as one flat program per batch shape. Loss curves and final weights are
  /// bit-identical to the eager tape (verified per shape at capture; a
  /// mismatching shape silently trains eagerly). Ignored while
  /// RPTCN_DISABLE_PLAN=1.
  bool planned_step = true;
  /// Per-epoch callbacks forwarded to opt::fit (borrowed; must outlive
  /// fit()). An opt::LoggingObserver restores the old `verbose` output.
  std::vector<opt::EpochObserver*> observers;
};

class RptcnForecaster final : public Forecaster {
 public:
  explicit RptcnForecaster(const NnTrainConfig& train = {},
                           nn::RptcnOptions options = {});

  std::string name() const override { return "RPTCN"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;
  CheckpointStatus save(const std::string& path) const override;
  CheckpointStatus restore(const ForecastDataset& dataset,
                           const std::string& path) override;

  nn::RptcnNet* net() { return net_.get(); }
  const nn::RptcnNet* net() const { return net_.get(); }

 private:
  void build(const ForecastDataset& dataset);
  NnTrainConfig train_;
  nn::RptcnOptions options_;
  std::unique_ptr<nn::RptcnNet> net_;
};

/// Plain TCN readout (no FC, no attention) — the ablation reference.
class TcnForecaster final : public Forecaster {
 public:
  explicit TcnForecaster(const NnTrainConfig& train = {},
                         nn::RptcnOptions options = {});

  std::string name() const override { return "TCN"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;
  CheckpointStatus save(const std::string& path) const override;
  CheckpointStatus restore(const ForecastDataset& dataset,
                           const std::string& path) override;

  nn::RptcnNet* net() { return net_.get(); }
  const nn::RptcnNet* net() const { return net_.get(); }

 private:
  void build(const ForecastDataset& dataset);
  NnTrainConfig train_;
  nn::RptcnOptions options_;
  std::unique_ptr<nn::RptcnNet> net_;
};

class LstmForecaster final : public Forecaster {
 public:
  explicit LstmForecaster(const NnTrainConfig& train = {},
                          nn::LstmNetOptions options = {});

  std::string name() const override { return "LSTM"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;
  CheckpointStatus save(const std::string& path) const override;
  CheckpointStatus restore(const ForecastDataset& dataset,
                           const std::string& path) override;

  nn::LstmNet* net() { return net_.get(); }
  const nn::LstmNet* net() const { return net_.get(); }

 private:
  void build(const ForecastDataset& dataset);
  NnTrainConfig train_;
  nn::LstmNetOptions options_;
  std::unique_ptr<nn::LstmNet> net_;
};

class BiLstmForecaster final : public Forecaster {
 public:
  explicit BiLstmForecaster(const NnTrainConfig& train = {},
                            nn::BiLstmNetOptions options = {});

  std::string name() const override { return "BiLSTM"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;
  CheckpointStatus save(const std::string& path) const override;
  CheckpointStatus restore(const ForecastDataset& dataset,
                           const std::string& path) override;

  nn::BiLstmNet* net() { return net_.get(); }
  const nn::BiLstmNet* net() const { return net_.get(); }

 private:
  void build(const ForecastDataset& dataset);
  NnTrainConfig train_;
  nn::BiLstmNetOptions options_;
  std::unique_ptr<nn::BiLstmNet> net_;
};

class CnnLstmForecaster final : public Forecaster {
 public:
  explicit CnnLstmForecaster(const NnTrainConfig& train = {},
                             nn::CnnLstmOptions options = {});

  std::string name() const override { return "CNN-LSTM"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;
  CheckpointStatus save(const std::string& path) const override;
  CheckpointStatus restore(const ForecastDataset& dataset,
                           const std::string& path) override;

  nn::CnnLstm* net() { return net_.get(); }
  const nn::CnnLstm* net() const { return net_.get(); }

 private:
  void build(const ForecastDataset& dataset);
  NnTrainConfig train_;
  nn::CnnLstmOptions options_;
  std::unique_ptr<nn::CnnLstm> net_;
};

}  // namespace rptcn::models
