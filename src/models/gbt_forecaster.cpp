#include "models/gbt_forecaster.h"

#include "common/check.h"

namespace rptcn::models {

GbtForecaster::GbtForecaster(const baselines::GbtOptions& options)
    : options_(options) {}

Tensor GbtForecaster::flatten(const Tensor& inputs) {
  RPTCN_CHECK(inputs.rank() == 3, "GBT inputs must be [S,F,T]");
  return inputs.reshape({inputs.dim(0), inputs.dim(1) * inputs.dim(2)});
}

void GbtForecaster::fit(const ForecastDataset& dataset) {
  horizon_ = dataset.horizon;
  const Tensor x_train = flatten(dataset.train.inputs);
  const Tensor x_valid = flatten(dataset.valid.inputs);
  const std::size_t n_train = x_train.dim(0);
  const std::size_t n_valid = x_valid.dim(0);

  boosters_.clear();
  curves_ = {};
  for (std::size_t h = 0; h < horizon_; ++h) {
    std::vector<float> y_train(n_train), y_valid(n_valid);
    for (std::size_t i = 0; i < n_train; ++i)
      y_train[i] = dataset.train.targets.at(i, h);
    for (std::size_t i = 0; i < n_valid; ++i)
      y_valid[i] = dataset.valid.targets.at(i, h);

    auto booster = std::make_unique<baselines::GradientBoostedTrees>(options_);
    booster->fit(x_train, y_train, &x_valid, y_valid);
    if (h == 0) {  // curves from the first-step booster (Fig. 9/10 rows)
      curves_.train_loss = booster->train_loss_history();
      curves_.valid_loss = booster->valid_loss_history();
    }
    boosters_.push_back(std::move(booster));
  }
}

Tensor GbtForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(!boosters_.empty(), "predict before fit");
  const Tensor x = flatten(inputs);
  const std::size_t s = x.dim(0);
  Tensor out({s, horizon_});
  for (std::size_t h = 0; h < horizon_; ++h) {
    const auto preds = boosters_[h]->predict(x);
    for (std::size_t i = 0; i < s; ++i) out.at(i, h) = preds[i];
  }
  return out;
}

}  // namespace rptcn::models
