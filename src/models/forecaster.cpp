#include "models/forecaster.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::models {

const char* checkpoint_status_name(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::kOk:
      return "ok";
    case CheckpointStatus::kUnsupported:
      return "unsupported";
    case CheckpointStatus::kIoError:
      return "io-error";
    case CheckpointStatus::kShapeMismatch:
      return "shape-mismatch";
  }
  return "unknown";
}

Accuracy evaluate_accuracy(const Tensor& predictions, const Tensor& targets) {
  RPTCN_CHECK(predictions.same_shape(targets),
              "accuracy shape mismatch: " << predictions.shape_string()
                                          << " vs " << targets.shape_string());
  RPTCN_CHECK(predictions.size() > 0, "empty prediction tensor");
  Accuracy acc;
  const auto p = predictions.data();
  const auto t = targets.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double e = static_cast<double>(p[i]) - t[i];
    acc.mse += e * e;
    acc.mae += std::fabs(e);
  }
  const auto n = static_cast<double>(p.size());
  acc.mse /= n;
  acc.mae /= n;
  return acc;
}

}  // namespace rptcn::models
