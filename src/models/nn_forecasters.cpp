#include "models/nn_forecasters.h"

#include <fstream>
#include <string_view>

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/capture.h"
#include "graph/plan.h"
#include "graph/snapshot.h"
#include "graph/train.h"

namespace rptcn::models {

namespace {

/// Shared checkpoint-status mapping for every Module-backed forecaster.
/// Module::save/load signal failure via CheckError; translate the two
/// distinguishable causes into the enum instead of leaking exceptions.
CheckpointStatus save_net(const nn::Module& net, const std::string& path) {
  try {
    net.save(path);
  } catch (const CheckError&) {
    return CheckpointStatus::kIoError;  // "cannot open for writing"
  }
  return CheckpointStatus::kOk;
}

CheckpointStatus load_net(nn::Module& net, const std::string& path) {
  if (!std::ifstream(path).good()) return CheckpointStatus::kIoError;
  try {
    net.load(path);
  } catch (const CheckError& e) {
    // Module::load reports "checkpoint order/shape mismatch ..."; anything
    // else (truncated file, bad magic) is an I/O-level failure.
    return std::string_view(e.what()).find("mismatch") !=
                   std::string_view::npos
               ? CheckpointStatus::kShapeMismatch
               : CheckpointStatus::kIoError;
  }
  return CheckpointStatus::kOk;
}

opt::TrainOptions make_train_options(const NnTrainConfig& cfg) {
  opt::TrainOptions o;
  o.batch_size = cfg.batch_size;
  o.max_epochs = cfg.max_epochs;
  o.patience = cfg.patience;
  o.clip_norm = cfg.clip_norm;
  o.seed = cfg.seed;
  o.loss = cfg.loss;
  o.pinball_tau = cfg.pinball_tau;
  o.observers = cfg.observers;
  return o;
}

/// Shared fit body: construct optimizer, run the trainer, record curves.
template <typename Net>
TrainCurves fit_net(Net& net, const NnTrainConfig& cfg,
                    const ForecastDataset& dataset) {
  opt::Adam adam(net.parameters(), cfg.learning_rate);
  const auto forward = [&net](const Variable& x) { return net.forward(x); };
  opt::TrainOptions options = make_train_options(cfg);
  if (cfg.planned_step && graph::planning_enabled())
    options.planned_step_factory = graph::make_planned_step;
  if (cfg.planned_eval && graph::planning_enabled()) {
    options.eval_forward_factory = [&net]() -> opt::ForwardFn {
      // Fresh capture per epoch: the weights just changed. dispatch_n=0
      // keeps conv dispatch on the true batch size, the same decisions
      // net.forward makes — so planned validation losses match the tape's
      // bit-for-bit.
      graph::CaptureOptions copts;
      copts.dispatch_n = 0;
      auto plans = std::make_shared<graph::PlanCache>(
          graph::make_capture_fn(graph::snapshot(net), copts));
      return [plans](const Variable& x) {
        const Tensor& in = x.value();
        return Variable(
            plans->get(in.dim(0), in.dim(1), in.dim(2))->run(in));
      };
    };
  }
  const auto history =
      opt::fit(net, forward, dataset.train, dataset.valid, adam, options);
  return {history.train_loss, history.valid_loss};
}

/// Batched inference.
template <typename Net>
Tensor predict_net(Net& net, const Tensor& inputs, std::size_t horizon,
                   std::size_t batch_size) {
  RPTCN_CHECK(inputs.rank() == 3, "predict expects [S,F,T]");
  NoGradScope no_grad;
  net.set_training(false);
  const std::size_t s = inputs.dim(0);
  Tensor out({s, horizon});
  for (std::size_t start = 0; start < s; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, s);
    std::vector<std::size_t> idx(end - start);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = start + i;
    const Variable x(opt::gather_rows(inputs, idx));
    const Tensor pred = net.forward(x).value();
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t h = 0; h < horizon; ++h)
        out.at(start + i, h) = pred.at(i, h);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// RPTCN
// ---------------------------------------------------------------------------

RptcnForecaster::RptcnForecaster(const NnTrainConfig& train,
                                 nn::RptcnOptions options)
    : train_(train), options_(std::move(options)) {}

void RptcnForecaster::build(const ForecastDataset& dataset) {
  options_.input_features = dataset.train.inputs.dim(1);
  options_.horizon = dataset.horizon;
  options_.seed = train_.seed;
  net_ = std::make_unique<nn::RptcnNet>(options_);
}

void RptcnForecaster::fit(const ForecastDataset& dataset) {
  build(dataset);
  curves_ = fit_net(*net_, train_, dataset);
}

CheckpointStatus RptcnForecaster::save(const std::string& path) const {
  RPTCN_CHECK(net_ != nullptr, "save before fit");
  return save_net(*net_, path);
}

CheckpointStatus RptcnForecaster::restore(const ForecastDataset& dataset,
                                           const std::string& path) {
  build(dataset);
  curves_ = {};
  return load_net(*net_, path);
}

Tensor RptcnForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(net_ != nullptr, "predict before fit");
  return predict_net(*net_, inputs, options_.horizon, train_.batch_size);
}

// ---------------------------------------------------------------------------
// Plain TCN (ablation)
// ---------------------------------------------------------------------------

TcnForecaster::TcnForecaster(const NnTrainConfig& train,
                             nn::RptcnOptions options)
    : train_(train), options_(std::move(options)) {
  options_.use_attention = false;
  options_.use_fc = false;
}

void TcnForecaster::build(const ForecastDataset& dataset) {
  options_.input_features = dataset.train.inputs.dim(1);
  options_.horizon = dataset.horizon;
  options_.seed = train_.seed;
  net_ = std::make_unique<nn::RptcnNet>(options_);
}

void TcnForecaster::fit(const ForecastDataset& dataset) {
  build(dataset);
  curves_ = fit_net(*net_, train_, dataset);
}

CheckpointStatus TcnForecaster::save(const std::string& path) const {
  RPTCN_CHECK(net_ != nullptr, "save before fit");
  return save_net(*net_, path);
}

CheckpointStatus TcnForecaster::restore(const ForecastDataset& dataset,
                                           const std::string& path) {
  build(dataset);
  curves_ = {};
  return load_net(*net_, path);
}

Tensor TcnForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(net_ != nullptr, "predict before fit");
  return predict_net(*net_, inputs, options_.horizon, train_.batch_size);
}

// ---------------------------------------------------------------------------
// LSTM
// ---------------------------------------------------------------------------

LstmForecaster::LstmForecaster(const NnTrainConfig& train,
                               nn::LstmNetOptions options)
    : train_(train), options_(options) {}

void LstmForecaster::build(const ForecastDataset& dataset) {
  options_.input_features = dataset.train.inputs.dim(1);
  options_.horizon = dataset.horizon;
  options_.seed = train_.seed;
  net_ = std::make_unique<nn::LstmNet>(options_);
}

void LstmForecaster::fit(const ForecastDataset& dataset) {
  build(dataset);
  curves_ = fit_net(*net_, train_, dataset);
}

CheckpointStatus LstmForecaster::save(const std::string& path) const {
  RPTCN_CHECK(net_ != nullptr, "save before fit");
  return save_net(*net_, path);
}

CheckpointStatus LstmForecaster::restore(const ForecastDataset& dataset,
                                           const std::string& path) {
  build(dataset);
  curves_ = {};
  return load_net(*net_, path);
}

Tensor LstmForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(net_ != nullptr, "predict before fit");
  return predict_net(*net_, inputs, options_.horizon, train_.batch_size);
}

// ---------------------------------------------------------------------------
// BiLSTM
// ---------------------------------------------------------------------------

BiLstmForecaster::BiLstmForecaster(const NnTrainConfig& train,
                                   nn::BiLstmNetOptions options)
    : train_(train), options_(options) {}

void BiLstmForecaster::build(const ForecastDataset& dataset) {
  options_.input_features = dataset.train.inputs.dim(1);
  options_.horizon = dataset.horizon;
  options_.seed = train_.seed;
  net_ = std::make_unique<nn::BiLstmNet>(options_);
}

void BiLstmForecaster::fit(const ForecastDataset& dataset) {
  build(dataset);
  curves_ = fit_net(*net_, train_, dataset);
}

CheckpointStatus BiLstmForecaster::save(const std::string& path) const {
  RPTCN_CHECK(net_ != nullptr, "save before fit");
  return save_net(*net_, path);
}

CheckpointStatus BiLstmForecaster::restore(const ForecastDataset& dataset,
                                           const std::string& path) {
  build(dataset);
  curves_ = {};
  return load_net(*net_, path);
}

Tensor BiLstmForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(net_ != nullptr, "predict before fit");
  return predict_net(*net_, inputs, options_.horizon, train_.batch_size);
}

// ---------------------------------------------------------------------------
// CNN-LSTM
// ---------------------------------------------------------------------------

CnnLstmForecaster::CnnLstmForecaster(const NnTrainConfig& train,
                                     nn::CnnLstmOptions options)
    : train_(train), options_(options) {}

void CnnLstmForecaster::build(const ForecastDataset& dataset) {
  options_.input_features = dataset.train.inputs.dim(1);
  options_.horizon = dataset.horizon;
  options_.seed = train_.seed;
  net_ = std::make_unique<nn::CnnLstm>(options_);
}

void CnnLstmForecaster::fit(const ForecastDataset& dataset) {
  build(dataset);
  curves_ = fit_net(*net_, train_, dataset);
}

CheckpointStatus CnnLstmForecaster::save(const std::string& path) const {
  RPTCN_CHECK(net_ != nullptr, "save before fit");
  return save_net(*net_, path);
}

CheckpointStatus CnnLstmForecaster::restore(const ForecastDataset& dataset,
                                           const std::string& path) {
  build(dataset);
  curves_ = {};
  return load_net(*net_, path);
}

Tensor CnnLstmForecaster::predict(const Tensor& inputs) {
  RPTCN_CHECK(net_ != nullptr, "predict before fit");
  return predict_net(*net_, inputs, options_.horizon, train_.batch_size);
}

}  // namespace rptcn::models
