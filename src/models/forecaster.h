// The common Forecaster interface every model in the paper's Table II
// implements, so the accuracy/convergence benches can treat RPTCN and the
// four baselines uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/windowing.h"
#include "opt/trainer.h"

namespace rptcn::models {

/// Per-epoch (or per-boosting-round) loss curves; what Figs. 9/10 plot.
struct TrainCurves {
  std::vector<double> train_loss;
  std::vector<double> valid_loss;
};

/// Everything a model may need to fit: supervised windows for the NN/GBT
/// models plus the raw (normalised) target series for sequential estimators
/// like ARIMA.
struct ForecastDataset {
  opt::TrainData train;
  opt::TrainData valid;
  opt::TrainData test;
  std::vector<double> target_series;  ///< full normalised target, all splits
  std::size_t train_len = 0;          ///< raw series length of the train part
  std::size_t valid_len = 0;          ///< raw series length of the valid part
  std::size_t window = 0;
  std::size_t horizon = 1;
  std::size_t target_channel = 0;     ///< index of the target inside features
};

/// Outcome of a checkpoint save/restore attempt. Non-kOk values are ordinary
/// results, not exceptions: callers decide whether "this model has no
/// checkpoints" is fatal (it usually is not — refitting ARIMA/GBT is cheap).
enum class CheckpointStatus {
  kOk,
  kUnsupported,    ///< model has no notion of a weight checkpoint
  kIoError,        ///< path missing/unwritable or the file is malformed
  kShapeMismatch,  ///< checkpoint disagrees with the configured architecture
};

/// Stable lower-case label ("ok", "unsupported", ...) for logs and tests.
const char* checkpoint_status_name(CheckpointStatus status);

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  virtual std::string name() const = 0;

  /// Train on the dataset (uses train + valid; never touches test).
  virtual void fit(const ForecastDataset& dataset) = 0;

  /// inputs [S, F, window] -> predictions [S, horizon].
  virtual Tensor predict(const Tensor& inputs) = 0;

  /// Loss curves recorded during fit (may be empty for closed-form models).
  virtual const TrainCurves& curves() const { return curves_; }

  /// Persist trained parameters. The base implementation reports
  /// kUnsupported (ARIMA, GBT — refit is cheap for those).
  virtual CheckpointStatus save(const std::string& path) const {
    (void)path;
    return CheckpointStatus::kUnsupported;
  }
  /// Rebuild the model for `dataset`'s shapes and load weights from `path`
  /// instead of training.
  virtual CheckpointStatus restore(const ForecastDataset& dataset,
                                   const std::string& path) {
    (void)dataset;
    (void)path;
    return CheckpointStatus::kUnsupported;
  }

 protected:
  TrainCurves curves_;
};

/// MSE / MAE (paper eqs. 9-10) between prediction and target tensors of
/// identical shape, accumulated in double.
struct Accuracy {
  double mse = 0.0;
  double mae = 0.0;
};
Accuracy evaluate_accuracy(const Tensor& predictions, const Tensor& targets);

}  // namespace rptcn::models
