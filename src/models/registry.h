// Forecaster factory, so benches and examples can instantiate models by
// name ("RPTCN", "TCN", "LSTM", "CNN-LSTM", "XGBoost", "ARIMA").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/arima.h"
#include "baselines/gbt.h"
#include "models/forecaster.h"
#include "models/nn_forecasters.h"

namespace rptcn::models {

struct ModelConfig {
  NnTrainConfig nn;                ///< shared NN training recipe
  nn::RptcnOptions rptcn;          ///< RPTCN / TCN architecture
  nn::LstmNetOptions lstm;         ///< LSTM architecture
  nn::BiLstmNetOptions bilstm;     ///< BiLSTM architecture
  nn::CnnLstmOptions cnn_lstm;     ///< CNN-LSTM architecture
  baselines::GbtOptions gbt;       ///< XGBoost baseline
  baselines::ArimaOptions arima;   ///< ARIMA baseline
  bool arima_auto_order = false;
};

/// Names accepted by make_forecaster, in Table II order.
const std::vector<std::string>& forecaster_names();

/// Instantiate a forecaster by name; throws CheckError on unknown names.
std::unique_ptr<Forecaster> make_forecaster(const std::string& name,
                                            const ModelConfig& config = {});

}  // namespace rptcn::models
