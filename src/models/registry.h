// Forecaster factory, so benches and examples can instantiate models by
// name ("RPTCN", "TCN", "LSTM", "CNN-LSTM", "XGBoost", "ARIMA").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/arima.h"
#include "baselines/gbt.h"
#include "models/forecaster.h"
#include "models/nn_forecasters.h"

namespace rptcn::models {

struct ModelConfig {
  NnTrainConfig nn;                ///< shared NN training recipe
  nn::RptcnOptions rptcn;          ///< RPTCN / TCN architecture
  nn::LstmNetOptions lstm;         ///< LSTM architecture
  nn::BiLstmNetOptions bilstm;     ///< BiLSTM architecture
  nn::CnnLstmOptions cnn_lstm;     ///< CNN-LSTM architecture
  baselines::GbtOptions gbt;       ///< XGBoost baseline
  baselines::ArimaOptions arima;   ///< ARIMA baseline
  bool arima_auto_order = false;
};

/// Names accepted by make_forecaster, in Table II order.
const std::vector<std::string>& forecaster_names();

/// A typed cold-start recipe: canonical model name plus the hyperparameter
/// overrides to build it with. The unit the fleet registry stores per
/// cohort, so heterogeneous entities (one cohort on RPTCN, another on a
/// small LSTM) are described by data instead of string-splicing.
struct ForecasterSpec {
  std::string name = "LSTM";  ///< any list_forecasters() entry
  ModelConfig config;         ///< architecture + training recipe overrides

  /// Throws common::CheckError naming the field when `name` is unknown;
  /// the error carries the full known-names list.
  void validate() const;
};

/// One row per instantiable model: the canonical spelling paired with a
/// default-config spec — the discovery companion to make_forecaster.
std::vector<ForecasterSpec> list_forecasters();

/// Instantiate a forecaster by name; throws CheckError on unknown names
/// (the message keeps the known-names list).
std::unique_ptr<Forecaster> make_forecaster(const std::string& name,
                                            const ModelConfig& config = {});

/// Typed-spec overload: exactly make_forecaster(spec.name, spec.config).
std::unique_ptr<Forecaster> make_forecaster(const ForecasterSpec& spec);

}  // namespace rptcn::models
