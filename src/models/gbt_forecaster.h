// XGBoost-baseline adapter: flattens each [F, window] input into a tabular
// feature vector and fits one boosted ensemble per horizon step (the
// "direct" multi-horizon strategy, which is how tabular boosters are
// normally applied to forecasting).
#pragma once

#include <memory>
#include <vector>

#include "baselines/gbt.h"
#include "models/forecaster.h"

namespace rptcn::models {

class GbtForecaster final : public Forecaster {
 public:
  explicit GbtForecaster(const baselines::GbtOptions& options = {});

  std::string name() const override { return "XGBoost"; }
  void fit(const ForecastDataset& dataset) override;
  Tensor predict(const Tensor& inputs) override;

 private:
  static Tensor flatten(const Tensor& inputs);  // [S,F,T] -> [S, F*T]

  baselines::GbtOptions options_;
  std::size_t horizon_ = 0;
  std::vector<std::unique_ptr<baselines::GradientBoostedTrees>> boosters_;
};

}  // namespace rptcn::models
