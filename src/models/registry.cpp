#include "models/registry.h"

#include <cctype>
#include <sstream>

#include "common/check.h"
#include "models/arima_forecaster.h"
#include "models/gbt_forecaster.h"

namespace rptcn::models {

const std::vector<std::string>& forecaster_names() {
  static const std::vector<std::string> kNames = {
      "ARIMA", "LSTM", "CNN-LSTM", "XGBoost", "RPTCN", "TCN", "BiLSTM"};
  return kNames;
}

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string joined_names() {
  std::ostringstream out;
  const auto& names = forecaster_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i];
  }
  return out.str();
}

}  // namespace

void ForecasterSpec::validate() const {
  const std::string key = lower(name);
  for (const std::string& known : forecaster_names())
    if (lower(known) == key) return;
  RPTCN_CHECK(false, "ForecasterSpec.name is unknown: " << name << " (known: "
                                                        << joined_names()
                                                        << ")");
}

std::vector<ForecasterSpec> list_forecasters() {
  std::vector<ForecasterSpec> specs;
  specs.reserve(forecaster_names().size());
  for (const std::string& name : forecaster_names()) {
    ForecasterSpec spec;
    spec.name = name;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::unique_ptr<Forecaster> make_forecaster(const ForecasterSpec& spec) {
  return make_forecaster(spec.name, spec.config);
}

std::unique_ptr<Forecaster> make_forecaster(const std::string& name,
                                            const ModelConfig& config) {
  // Case-insensitive lookup: "rptcn" and "RPTCN" are the same model. The
  // canonical spellings stay in forecaster_names() (Table II order).
  const std::string key = lower(name);
  if (key == "rptcn")
    return std::make_unique<RptcnForecaster>(config.nn, config.rptcn);
  if (key == "tcn")
    return std::make_unique<TcnForecaster>(config.nn, config.rptcn);
  if (key == "lstm")
    return std::make_unique<LstmForecaster>(config.nn, config.lstm);
  if (key == "bilstm")
    return std::make_unique<BiLstmForecaster>(config.nn, config.bilstm);
  if (key == "cnn-lstm")
    return std::make_unique<CnnLstmForecaster>(config.nn, config.cnn_lstm);
  if (key == "xgboost")
    return std::make_unique<GbtForecaster>(config.gbt);
  if (key == "arima")
    return std::make_unique<ArimaForecaster>(config.arima,
                                             config.arima_auto_order);
  RPTCN_CHECK(false, "unknown forecaster: " << name
                                            << " (known: " << joined_names()
                                            << ")");
  return nullptr;  // unreachable
}

}  // namespace rptcn::models
