#include "models/registry.h"

#include "common/check.h"
#include "models/arima_forecaster.h"
#include "models/gbt_forecaster.h"

namespace rptcn::models {

const std::vector<std::string>& forecaster_names() {
  static const std::vector<std::string> kNames = {
      "ARIMA", "LSTM", "CNN-LSTM", "XGBoost", "RPTCN", "TCN", "BiLSTM"};
  return kNames;
}

std::unique_ptr<Forecaster> make_forecaster(const std::string& name,
                                            const ModelConfig& config) {
  if (name == "RPTCN")
    return std::make_unique<RptcnForecaster>(config.nn, config.rptcn);
  if (name == "TCN")
    return std::make_unique<TcnForecaster>(config.nn, config.rptcn);
  if (name == "LSTM")
    return std::make_unique<LstmForecaster>(config.nn, config.lstm);
  if (name == "BiLSTM")
    return std::make_unique<BiLstmForecaster>(config.nn, config.bilstm);
  if (name == "CNN-LSTM")
    return std::make_unique<CnnLstmForecaster>(config.nn, config.cnn_lstm);
  if (name == "XGBoost")
    return std::make_unique<GbtForecaster>(config.gbt);
  if (name == "ARIMA")
    return std::make_unique<ArimaForecaster>(config.arima,
                                             config.arima_auto_order);
  RPTCN_CHECK(false, "unknown forecaster: " << name);
  return nullptr;  // unreachable
}

}  // namespace rptcn::models
