// Static graph capture + ahead-of-time memory planning (JIT-lite executor).
//
// The serving forward is shape-static: for a fixed (model, batch shape) every
// call runs the same ops on the same sizes. The tape-free runners in
// snapshot.cpp still pay shape checks, dispatch branches, and a buffer-pool
// round trip per intermediate on every call. This layer pays those costs
// once:
//
//  * capture — trace one forward into an immutable flat list of TensorOps
//    (capture.h), keyed by the input shape [N, F, T].
//  * plan    — liveness analysis assigns every intermediate an offset in one
//    contiguous arena. A value is live on [def, last_use]; non-overlapping
//    lifetimes share arena bytes (first-fit free list, 16-float aligned),
//    and an op whose input dies at the op itself may alias its output onto
//    that input's block (in-place add+relu).
//  * replay  — Executable::run binds {input, output, arena} and walks the
//    op list. No shape checks, no dispatch, no per-op allocation.
//
// Bit-identity contract: a captured plan must produce bit-identical outputs
// to the eager snapshot runner. Capture therefore re-uses the exact eager
// kernels (or shares their loop bodies via the strided entry points in
// ag::fwd / tensor_ops), makes the same GEMM small-vs-blocked dispatch
// decisions ahead of time, and keeps every float summation order unchanged.
// Fusions are restricted to ones that provably preserve rounding (no new
// fma contraction across a stored intermediate). tests/test_graph.cpp gates
// this op-by-op and end-to-end.
//
// Escape hatch: RPTCN_DISABLE_PLAN=1 (or set_planning_enabled(false)) makes
// every plan-aware caller fall back to the eager runners.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace rptcn::graph {

/// Global planning switch. Defaults to on unless RPTCN_DISABLE_PLAN=1.
bool planning_enabled();
void set_planning_enabled(bool on);

/// Bound buffers for one replay. `arena` holds every planned intermediate;
/// `input`/`output` stay external so replays can write straight into
/// caller-owned tensors. Training programs additionally bind `target` (the
/// batch labels, read-only) and `grads` (one contiguous slab holding every
/// parameter gradient at the optimizer's slab offsets); forward-only
/// programs leave both null.
struct ExecContext {
  const float* input = nullptr;
  float* output = nullptr;
  float* arena = nullptr;
  const float* target = nullptr;
  float* grads = nullptr;
};

/// One replay step: a closure over pre-resolved offsets and baked weights.
using Operation = std::function<void(const ExecContext&)>;

/// Flat dispatch record, one per captured op.
struct TensorOp {
  Operation op;
  std::string name;            ///< kernel name for debugging / tests
  std::size_t num_inputs = 0;  ///< fan-in, for plan introspection
};

/// Handle to a planned value inside a GraphBuilder trace.
using ValueId = std::size_t;

/// Where a planned value lives at replay time. kTarget/kGrads only appear in
/// training programs; the arena planner ignores both (fixed external
/// storage), like kInput/kOutput.
enum class Loc { kInput, kOutput, kArena, kTarget, kGrads };

/// Debug/test view of one planned value.
struct ValueInfo {
  Loc loc = Loc::kArena;
  std::size_t off = 0;     ///< float offset within its region
  std::size_t floats = 0;  ///< size
  std::size_t def = 0;     ///< defining step
  std::size_t last = 0;    ///< last step that reads or writes it
  bool aliased = false;    ///< shares its block with the input it replaced
};

/// An immutable captured-and-planned forward. Thread-safe to replay
/// concurrently: run() binds a per-call arena from the buffer pool, and the
/// baked closures only read shared state (weights, offsets).
class Executable {
 public:
  Executable(std::vector<TensorOp> steps, std::vector<ValueInfo> values,
             std::vector<std::size_t> input_shape,
             std::vector<std::size_t> output_shape, std::size_t arena_floats);

  /// Replay: x must match input_shape() exactly (checked). Returns a fresh
  /// output tensor of output_shape().
  Tensor run(const Tensor& x) const;

  const std::vector<std::size_t>& input_shape() const { return input_shape_; }
  const std::vector<std::size_t>& output_shape() const {
    return output_shape_;
  }
  std::size_t arena_floats() const { return arena_floats_; }
  std::size_t step_count() const { return steps_.size(); }
  const std::vector<TensorOp>& steps() const { return steps_; }
  const std::vector<ValueInfo>& values() const { return values_; }

 private:
  std::vector<TensorOp> steps_;
  std::vector<ValueInfo> values_;
  std::vector<std::size_t> input_shape_;
  std::vector<std::size_t> output_shape_;
  std::size_t arena_floats_ = 0;
};

// -- capture-time graph construction ------------------------------------------
// Emitters (capture.cpp) declare values and ops against a GraphBuilder; the
// builder runs liveness + arena assignment in finish(), then bakes each op's
// closure with the final offsets. Ops never see ValueIds at replay time.

/// Resolves ValueIds to concrete pointers inside a bound ExecContext.
/// Handed to MakeFn AFTER planning, so closures capture raw offsets.
class Resolver {
 public:
  /// Pointer to a planned value's storage given the bound context.
  /// The returned accessor is a plain offset dereference — safe to call
  /// inside the op closure on every replay.
  std::function<float*(const ExecContext&)> ptr(ValueId v) const;
  std::function<const float*(const ExecContext&)> cptr(ValueId v) const;

 private:
  friend class GraphBuilder;
  explicit Resolver(const std::vector<ValueInfo>* values) : values_(values) {}
  const std::vector<ValueInfo>* values_;
};

/// Builds one op's replay closure once offsets are final.
using MakeFn = std::function<Operation(const Resolver&)>;

/// Declarative record of one op's data flow, consumed by the planner.
struct EmitSpec {
  std::string name;
  std::vector<ValueId> inputs;   ///< values read (extends their liveness)
  std::vector<ValueId> outputs;  ///< values defined (or mutated in place)
  std::vector<ValueId> scratch;  ///< live only during this step
  /// When set, try to place outputs[0] on this input's arena block (legal if
  /// the alias target dies at this step and is at least as large). The op
  /// must tolerate in == out.
  ValueId alias_target = kNoAlias;
  static constexpr ValueId kNoAlias = static_cast<ValueId>(-1);
};

class GraphBuilder {
 public:
  GraphBuilder(std::vector<std::size_t> input_shape,
               std::vector<std::size_t> output_shape);

  /// Declare the whole-input / whole-output values (loc kInput / kOutput).
  ValueId input_value();
  ValueId output_value();

  /// Declare an arena value of `floats` elements.
  ValueId value(std::size_t floats);

  /// Declare the training-target value (loc kTarget, read-only at replay).
  /// One per program; repeated calls return the same id.
  ValueId target_value(std::size_t floats);

  /// Declare one parameter's gradient segment inside the bound grad slab at
  /// a fixed float offset (the optimizer's slab layout). Not arena-planned.
  ValueId grads_value(std::size_t off, std::size_t floats);

  /// Append an op. `make` is invoked in finish() with the planned offsets.
  void emit(EmitSpec spec, MakeFn make);

  /// Run liveness + arena assignment, bake closures, and freeze.
  std::shared_ptr<const Executable> finish();

 private:
  std::vector<std::size_t> input_shape_;
  std::vector<std::size_t> output_shape_;
  std::vector<ValueInfo> values_;
  std::vector<EmitSpec> specs_;
  std::vector<MakeFn> makes_;
  ValueId input_id_ = 0;
  ValueId output_id_ = 0;
  static constexpr ValueId kNoValue = static_cast<ValueId>(-1);
  ValueId target_id_ = kNoValue;
};

// -- plan cache ---------------------------------------------------------------

/// Captures a plan for one input shape [N, F, T].
using CaptureFn = std::function<std::shared_ptr<const Executable>(
    std::size_t n, std::size_t f, std::size_t t)>;

/// Shape-keyed cache of Executables for one model snapshot. A hot-swap
/// installs a new session (and with it a new PlanCache), so generation
/// invalidation is structural: stale plans die with the session that owns
/// them and can never serve a new generation's weights.
class PlanCache {
 public:
  explicit PlanCache(CaptureFn capture);

  /// Plan for shape [n, f, t]: cached, or captured under the lock (so a
  /// shape is captured exactly once even under concurrent first calls).
  std::shared_ptr<const Executable> get(std::size_t n, std::size_t f,
                                        std::size_t t);

  /// Shapes currently cached (for error messages and tests).
  std::vector<std::array<std::size_t, 3>> shapes() const;

  std::size_t size() const;

  /// Bound on distinct shapes kept; oldest-inserted evicted beyond this.
  static constexpr std::size_t kMaxPlans = 32;

 private:
  struct KeyHash {
    std::size_t operator()(const std::array<std::size_t, 3>& k) const {
      std::size_t h = 1469598103934665603ull;
      for (std::size_t v : k) h = (h ^ v) * 1099511628211ull;
      return h;
    }
  };

  CaptureFn capture_;
  mutable std::mutex mu_;
  std::unordered_map<std::array<std::size_t, 3>,
                     std::shared_ptr<const Executable>, KeyHash>
      plans_;
  std::vector<std::array<std::size_t, 3>> order_;  ///< insertion order
};

}  // namespace rptcn::graph
