#include "graph/capture.h"

#include <algorithm>
#include <utility>

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace rptcn::graph {

namespace {

using ag::fwd::Conv1dLowering;

// NOTE on bit-identity: this translation unit is compiled WITHOUT the FMA
// flags tensor_ops.cpp gets, so a*b followed by +c here can never contract
// into a fused multiply-add — elementwise arithmetic emitted below matches
// the eager per-kernel rounding exactly. Anything transcendental
// (exp/tanh/softmax) and every GEMM is routed into tensor_ops.cpp /
// autograd kernels so both executors run literally the same code.

/// A planned 3-D activation [N, C, T] with explicit strides: element
/// (s, ci, tt) lives at s*ss + ci*cs + tt. The external input is
/// sample-major (ss = C*T, cs = T); planned intermediates are channel-major
/// (ss = T, cs = N*T), which makes the conv GEMM's [Cout, N*T] output panel
/// the activation itself — no per-(sample,channel) scatter.
struct Act3 {
  ValueId id = 0;
  std::size_t n = 0, c = 0, t = 0;
  std::size_t ss = 0;  ///< sample stride
  std::size_t cs = 0;  ///< channel stride
};

/// A planned contiguous row-major 2-D activation [N, F].
struct Act2 {
  ValueId id = 0;
  std::size_t n = 0, f = 0;
};

Act3 cm_act(GraphBuilder& g, std::size_t n, std::size_t c, std::size_t t) {
  return {g.value(c * n * t), n, c, t, t, n * t};
}

/// Dilated causal conv (+ optional fused relu): any-stride src -> cm dst.
/// Reproduces fwd::conv1d's lowering exactly: same GEMM-vs-direct decision
/// (under opts.dispatch_n), same chunking on the true batch, same bias
/// prefill, same gemm_accumulate shapes — so every float lands the same.
Act3 emit_conv(GraphBuilder& g, const ConvSnap& conv, const Act3& src,
               bool fuse_relu, std::size_t dispatch_n, const char* name) {
  const std::size_t n = src.n, cin = src.c, t_in = src.t;
  const std::size_t cout = conv.w.dim(0), k = conv.w.dim(2);
  RPTCN_CHECK(conv.w.dim(1) == cin, "capture conv: channel mismatch");
  const Conv1dLowering lo = ag::fwd::conv1d_lowering(
      n, cin, cout, k, t_in, conv.dilation, conv.left_pad, dispatch_n);
  Act3 dst = cm_act(g, n, cout, lo.t_out);
  const std::size_t t_out = lo.t_out, pad = lo.pad, d = conv.dilation;
  const std::size_t nt_all = n * t_out;
  const bool has_bias = !conv.b.empty();

  if (lo.use_gemm) {
    const std::size_t ck = cin * k;
    const std::size_t chunk = lo.chunk;
    const bool whole = chunk >= n;  // GEMM writes the cm dst directly
    const ValueId patches = g.value(ck * chunk * t_out);
    EmitSpec spec;
    spec.name = name;
    spec.inputs = {src.id};
    spec.outputs = {dst.id};
    spec.scratch = {patches};
    ValueId ybuf = EmitSpec::kNoAlias;
    if (!whole) {
      ybuf = g.value(cout * chunk * t_out);
      spec.scratch.push_back(ybuf);
    }
    g.emit(std::move(spec),
           [=, w = conv.w, b = conv.b](const Resolver& r) -> Operation {
             auto src_p = r.cptr(src.id);
             auto dst_p = r.ptr(dst.id);
             auto patches_p = r.ptr(patches);
             auto ybuf_p = whole ? std::function<float*(const ExecContext&)>()
                                 : r.ptr(ybuf);
             const std::size_t sss = src.ss, scs = src.cs;
             return [=](const ExecContext& ctx) {
               const float* x = src_p(ctx);
               float* y = dst_p(ctx);
               float* pt = patches_p(ctx);
               const float* bp = has_bias ? b.raw() : nullptr;
               for (std::size_t n0 = 0; n0 < n; n0 += chunk) {
                 const std::size_t nc = std::min(chunk, n - n0);
                 const std::size_t nt = nc * t_out;
                 ag::fwd::im2col_strided(x + n0 * sss, sss, scs, nc, cin,
                                         t_in, k, d, pad, t_out, pt);
                 float* yb = whole ? y : ybuf_p(ctx);
                 if (bp != nullptr) {
                   for (std::size_t co = 0; co < cout; ++co)
                     std::fill_n(yb + co * nt, nt, bp[co]);
                 } else {
                   std::fill_n(yb, cout * nt, 0.0f);
                 }
                 rptcn::gemm_accumulate(cout, nt, ck, w.raw(), ck, false, pt,
                                        nt, false, yb);
                 if (!whole)
                   for (std::size_t co = 0; co < cout; ++co)
                     for (std::size_t s = 0; s < nc; ++s)
                       std::copy_n(yb + co * nt + s * t_out, t_out,
                                   y + co * nt_all + (n0 + s) * t_out);
               }
               if (fuse_relu)
                 for (std::size_t i = 0; i < cout * nt_all; ++i)
                   y[i] = y[i] > 0.0f ? y[i] : 0.0f;
             };
           });
  } else {
    EmitSpec spec;
    spec.name = name;
    spec.inputs = {src.id};
    spec.outputs = {dst.id};
    // A conv the eager dispatch pins to the direct kernel is by definition
    // below the GEMM flop cutoff — far too small to amortise an OpenMP
    // fork per replay. Pointwise convs (the common pinned case: residual
    // shortcuts, the FC-as-1x1-conv stage, attention scorers) go through
    // the serial fused-row kernel; anything else runs the eager loop body
    // with the relu epilogue folded in.
    const bool pointwise = k == 1 && pad == 0;
    g.emit(std::move(spec),
           [=, w = conv.w, b = conv.b](const Resolver& r) -> Operation {
             auto src_p = r.cptr(src.id);
             auto dst_p = r.ptr(dst.id);
             const std::size_t sss = src.ss, scs = src.cs;
             return [=](const ExecContext& ctx) {
               float* y = dst_p(ctx);
               if (pointwise)
                 ag::fwd::conv1d_1x1_strided_serial(
                     src_p(ctx), sss, scs, w.raw(),
                     has_bias ? b.raw() : nullptr, n, cin, cout, t_out, y,
                     t_out, nt_all, fuse_relu);
               else
                 ag::fwd::conv1d_direct_strided(
                     src_p(ctx), sss, scs, w.raw(),
                     has_bias ? b.raw() : nullptr, n, cin, t_in, cout, k, d,
                     pad, t_out, y, t_out, nt_all, fuse_relu);
             };
           });
  }
  return dst;
}

/// out = relu(res + f), channel-major, in place on f's block when the
/// planner grants the alias (f dies here; element is read before written).
Act3 emit_add_relu(GraphBuilder& g, const Act3& res, const Act3& f) {
  RPTCN_CHECK(res.n == f.n && res.c == f.c && res.t == f.t,
              "capture add_relu: shape mismatch");
  Act3 out = cm_act(g, f.n, f.c, f.t);
  EmitSpec spec;
  spec.name = "add_relu";
  spec.inputs = {res.id, f.id};
  spec.outputs = {out.id};
  spec.alias_target = f.id;
  g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
    auto res_p = r.cptr(res.id);
    auto f_p = r.cptr(f.id);
    auto out_p = r.ptr(out.id);
    const std::size_t n = f.n, c = f.c, t = f.t;
    const std::size_t rss = res.ss, rcs = res.cs;
    return [=](const ExecContext& ctx) {
      const float* rp = res_p(ctx);
      const float* fp = f_p(ctx);
      float* op = out_p(ctx);
      for (std::size_t ci = 0; ci < c; ++ci)
        for (std::size_t s = 0; s < n; ++s) {
          const float* rrow = rp + s * rss + ci * rcs;
          const float* frow = fp + ci * n * t + s * t;
          float* orow = op + ci * n * t + s * t;
          for (std::size_t tt = 0; tt < t; ++tt) {
            const float v = rrow[tt] + frow[tt];
            orow[tt] = v > 0.0f ? v : 0.0f;
          }
        }
    };
  });
  return out;
}

/// summary[s, ci] = time_slice(h, T-1) — the no-attention tail.
Act2 emit_time_slice_last(GraphBuilder& g, const Act3& h) {
  Act2 out{g.value(h.n * h.c), h.n, h.c};
  EmitSpec spec;
  spec.name = "time_slice";
  spec.inputs = {h.id};
  spec.outputs = {out.id};
  g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
    auto h_p = r.cptr(h.id);
    auto out_p = r.ptr(out.id);
    const std::size_t n = h.n, c = h.c, t_last = h.t - 1;
    const std::size_t hss = h.ss, hcs = h.cs;
    return [=](const ExecContext& ctx) {
      const float* hp = h_p(ctx);
      float* op = out_p(ctx);
      for (std::size_t s = 0; s < n; ++s)
        for (std::size_t ci = 0; ci < c; ++ci)
          op[s * c + ci] = hp[s * hss + ci * hcs + t_last];
    };
  });
  return out;
}

/// Attention tail (paper eqs. 7/8): scorer conv -> softmax (in place) ->
/// weighted temporal summary fused with the last-step residual:
///   summary[s,ci] = (float)(sum_t (double)(a[s,t] * h[s,ci,t]))
///                   + h[s,ci,T-1]
/// The a*h product is stored to a named float before the double
/// accumulation — exactly the rounding the eager mul_bcast_channel +
/// sum_lastdim pair produces through its materialised intermediate.
Act2 emit_attention_summary(GraphBuilder& g, const ConvSnap& scorer,
                            const Act3& h, std::size_t dispatch_n) {
  Act3 logits =
      emit_conv(g, scorer, h, /*fuse_relu=*/false, dispatch_n, "attn_scorer");
  RPTCN_CHECK(logits.c == 1 && logits.t == h.t,
              "capture attention: scorer must be 1x1 over time");
  // cm with C=1 is exactly n contiguous rows of t: softmax_rows in place.
  const ValueId a = g.value(h.n * h.t);
  EmitSpec sspec;
  sspec.name = "softmax";
  sspec.inputs = {logits.id};
  sspec.outputs = {a};
  sspec.alias_target = logits.id;
  const std::size_t rows = h.n, t = h.t;
  g.emit(std::move(sspec), [=](const Resolver& r) -> Operation {
    auto in_p = r.cptr(logits.id);
    auto out_p = r.ptr(a);
    return [=](const ExecContext& ctx) {
      rptcn::softmax_rows(in_p(ctx), out_p(ctx), rows, t);
    };
  });

  Act2 out{g.value(h.n * h.c), h.n, h.c};
  EmitSpec spec;
  spec.name = "attn_summary";
  spec.inputs = {a, h.id};
  spec.outputs = {out.id};
  g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
    auto a_p = r.cptr(a);
    auto h_p = r.cptr(h.id);
    auto out_p = r.ptr(out.id);
    const std::size_t n = h.n, c = h.c, t_len = h.t;
    const std::size_t hss = h.ss, hcs = h.cs;
    return [=](const ExecContext& ctx) {
      const float* ap = a_p(ctx);
      const float* hp = h_p(ctx);
      float* op = out_p(ctx);
      for (std::size_t s = 0; s < n; ++s) {
        const float* arow = ap + s * t_len;
        for (std::size_t ci = 0; ci < c; ++ci) {
          const float* hrow = hp + s * hss + ci * hcs;
          double acc = 0.0;
          for (std::size_t tt = 0; tt < t_len; ++tt) {
            const float p = arow[tt] * hrow[tt];  // float-rounded, as eager
            acc += static_cast<double>(p);
          }
          op[s * c + ci] = static_cast<float>(acc) + hrow[t_len - 1];
        }
      }
    };
  });
  return out;
}

/// y[dst] = x[N,in] * w[out,in]^T (+ bias post-add): matmul_nt semantics —
/// zero-filled C, GEMM, then the bias loop, exactly as fwd::linear. On
/// blocked-path shapes the weight is prepacked once at capture.
void emit_linear(GraphBuilder& g, const LinearSnap& lin, const Act2& x,
                 ValueId dst, const char* name) {
  const std::size_t out_f = lin.w.dim(0), in_f = lin.w.dim(1);
  RPTCN_CHECK(x.f == in_f, "capture linear: feature mismatch");
  const std::size_t n = x.n;
  const bool use_packed = rptcn::gemm_uses_blocked(n, out_f, in_f);
  std::shared_ptr<const rptcn::PackedB> pb;
  if (use_packed)
    pb = std::make_shared<const rptcn::PackedB>(
        rptcn::gemm_pack_b(lin.w.raw(), in_f, true, in_f, out_f));
  const bool has_bias = !lin.b.empty();
  EmitSpec spec;
  spec.name = name;
  spec.inputs = {x.id};
  spec.outputs = {dst};
  g.emit(std::move(spec),
         [=, w = lin.w, b = lin.b](const Resolver& r) -> Operation {
           auto x_p = r.cptr(x.id);
           auto y_p = r.ptr(dst);
           return [=](const ExecContext& ctx) {
             const float* xp = x_p(ctx);
             float* yp = y_p(ctx);
             std::fill_n(yp, n * out_f, 0.0f);
             if (pb != nullptr)
               rptcn::gemm_accumulate_packed_b(n, out_f, in_f, xp, in_f,
                                               false, *pb, yp);
             else
               rptcn::gemm_accumulate(n, out_f, in_f, xp, in_f, false,
                                      w.raw(), in_f, true, yp);
             if (has_bias) {
               const float* bp = b.raw();
               for (std::size_t i = 0; i < n; ++i)
                 for (std::size_t j = 0; j < out_f; ++j)
                   yp[i * out_f + j] += bp[j];
             }
           };
         });
}

/// Unrolled LSTM over the time axis: per step, gather [x_t | h] -> fused
/// gate GEMM (prepacked weights on blocked shapes) -> gate activations ->
/// staged cell update mutating h/c in place. `reverse_time` reads step s at
/// time T-1-s, replacing the eager path's time_reverse copy. Returns h.
Act2 emit_lstm(GraphBuilder& g, const LstmSnap& lstm, const Act3& x,
               bool reverse_time, const char* name) {
  const std::size_t n = x.n, f_in = x.c, t_len = x.t, hid = lstm.hidden;
  RPTCN_CHECK(hid > 0 && lstm.w.dim(0) == 4 * hid &&
                  lstm.w.dim(1) == f_in + hid,
              "capture lstm: weight shape mismatch");
  const std::size_t in_f = f_in + hid, out4 = 4 * hid;

  const ValueId h = g.value(n * hid);
  const ValueId c = g.value(n * hid);
  {
    EmitSpec spec;
    spec.name = std::string(name) + "_init";
    spec.outputs = {h, c};
    g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
      auto h_p = r.ptr(h);
      auto c_p = r.ptr(c);
      const std::size_t m = n * hid;
      return [=](const ExecContext& ctx) {
        std::fill_n(h_p(ctx), m, 0.0f);
        std::fill_n(c_p(ctx), m, 0.0f);
      };
    });
  }

  const bool use_packed = rptcn::gemm_uses_blocked(n, out4, in_f);
  std::shared_ptr<const rptcn::PackedB> pb;
  if (use_packed)
    pb = std::make_shared<const rptcn::PackedB>(
        rptcn::gemm_pack_b(lstm.w.raw(), in_f, true, in_f, out4));

  for (std::size_t step = 0; step < t_len; ++step) {
    const std::size_t tt = reverse_time ? t_len - 1 - step : step;

    // xh = [x(:, :, tt) | h] — the time_slice + concat_cols gather.
    const ValueId xh = g.value(n * in_f);
    {
      EmitSpec spec;
      spec.name = std::string(name) + "_xh";
      spec.inputs = {x.id, h};
      spec.outputs = {xh};
      g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
        auto x_p = r.cptr(x.id);
        auto h_p = r.cptr(h);
        auto xh_p = r.ptr(xh);
        const std::size_t xss = x.ss, xcs = x.cs;
        return [=](const ExecContext& ctx) {
          const float* xp = x_p(ctx);
          const float* hp = h_p(ctx);
          float* o = xh_p(ctx);
          for (std::size_t s = 0; s < n; ++s) {
            float* orow = o + s * in_f;
            for (std::size_t ci = 0; ci < f_in; ++ci)
              orow[ci] = xp[s * xss + ci * xcs + tt];
            std::copy_n(hp + s * hid, hid, orow + f_in);
          }
        };
      });
    }

    // pre = linear(xh, w, b): zero-fill, GEMM, bias post-add (fwd::linear).
    const ValueId pre = g.value(n * out4);
    {
      EmitSpec spec;
      spec.name = std::string(name) + "_gates";
      spec.inputs = {xh};
      spec.outputs = {pre};
      g.emit(std::move(spec),
             [=, w = lstm.w, b = lstm.b](const Resolver& r) -> Operation {
               auto xh_p = r.cptr(xh);
               auto pre_p = r.ptr(pre);
               return [=](const ExecContext& ctx) {
                 const float* xp = xh_p(ctx);
                 float* yp = pre_p(ctx);
                 std::fill_n(yp, n * out4, 0.0f);
                 if (pb != nullptr)
                   rptcn::gemm_accumulate_packed_b(n, out4, in_f, xp, in_f,
                                                   false, *pb, yp);
                 else
                   rptcn::gemm_accumulate(n, out4, in_f, xp, in_f, false,
                                          w.raw(), in_f, true, yp);
                 const float* bp = b.raw();
                 for (std::size_t i = 0; i < n; ++i)
                   for (std::size_t j = 0; j < out4; ++j)
                     yp[i * out4 + j] += bp[j];
               };
             });
    }

    // Gate activations: slice_cols gathers, then the shared transcendental
    // kernels (sigmoid_inplace / tanh_inplace live in tensor_ops.cpp).
    const ValueId vi = g.value(n * hid), vf = g.value(n * hid);
    const ValueId vg = g.value(n * hid), vo = g.value(n * hid);
    {
      EmitSpec spec;
      spec.name = std::string(name) + "_act";
      spec.inputs = {pre};
      spec.outputs = {vi, vf, vg, vo};
      g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
        auto pre_p = r.cptr(pre);
        auto i_p = r.ptr(vi), f_p = r.ptr(vf), g_p = r.ptr(vg),
             o_p = r.ptr(vo);
        const std::size_t m = n * hid;
        return [=](const ExecContext& ctx) {
          const float* pp = pre_p(ctx);
          float* gates[4] = {i_p(ctx), f_p(ctx), g_p(ctx), o_p(ctx)};
          for (std::size_t gi = 0; gi < 4; ++gi)
            for (std::size_t s = 0; s < n; ++s)
              std::copy_n(pp + s * out4 + gi * hid, hid,
                          gates[gi] + s * hid);
          rptcn::sigmoid_inplace(gates[0], m);
          rptcn::sigmoid_inplace(gates[1], m);
          rptcn::tanh_inplace(gates[2], m);
          rptcn::sigmoid_inplace(gates[3], m);
        };
      });
    }

    // Cell update, staged through scratch rows so no multiply-add chain can
    // contract across what the eager path stores as separate tensors:
    //   c = f*c + i*g ; h = o * tanh(c)
    const ValueId fc = g.value(n * hid), ig = g.value(n * hid),
                  tc = g.value(n * hid);
    {
      EmitSpec spec;
      spec.name = std::string(name) + "_cell";
      spec.inputs = {vi, vf, vg, vo, c};
      spec.outputs = {c, h};
      spec.scratch = {fc, ig, tc};
      g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
        auto i_p = r.cptr(vi), f_p = r.cptr(vf), g_p = r.cptr(vg),
             o_p = r.cptr(vo);
        auto c_p = r.ptr(c), h_p = r.ptr(h);
        auto fc_p = r.ptr(fc), ig_p = r.ptr(ig), tc_p = r.ptr(tc);
        const std::size_t m = n * hid;
        return [=](const ExecContext& ctx) {
          const float* ip = i_p(ctx);
          const float* fp = f_p(ctx);
          const float* gp = g_p(ctx);
          const float* op = o_p(ctx);
          float* cp = c_p(ctx);
          float* hp = h_p(ctx);
          float* fcp = fc_p(ctx);
          float* igp = ig_p(ctx);
          float* tcp = tc_p(ctx);
          for (std::size_t j = 0; j < m; ++j) fcp[j] = fp[j] * cp[j];
          for (std::size_t j = 0; j < m; ++j) igp[j] = ip[j] * gp[j];
          for (std::size_t j = 0; j < m; ++j) cp[j] = fcp[j] + igp[j];
          std::copy_n(cp, m, tcp);
          rptcn::tanh_inplace(tcp, m);
          for (std::size_t j = 0; j < m; ++j) hp[j] = op[j] * tcp[j];
        };
      });
    }
  }
  return {h, n, hid};
}

/// cat = [a | b] rows — the concat_cols copy.
Act2 emit_concat(GraphBuilder& g, const Act2& a, const Act2& b) {
  RPTCN_CHECK(a.n == b.n, "capture concat: batch mismatch");
  Act2 out{g.value(a.n * (a.f + b.f)), a.n, a.f + b.f};
  EmitSpec spec;
  spec.name = "concat";
  spec.inputs = {a.id, b.id};
  spec.outputs = {out.id};
  g.emit(std::move(spec), [=](const Resolver& r) -> Operation {
    auto a_p = r.cptr(a.id);
    auto b_p = r.cptr(b.id);
    auto out_p = r.ptr(out.id);
    const std::size_t n = a.n, fa = a.f, fb = b.f;
    return [=](const ExecContext& ctx) {
      const float* ap = a_p(ctx);
      const float* bp = b_p(ctx);
      float* op = out_p(ctx);
      for (std::size_t i = 0; i < n; ++i) {
        std::copy_n(ap + i * fa, fa, op + i * (fa + fb));
        std::copy_n(bp + i * fb, fb, op + i * (fa + fb) + fa);
      }
    };
  });
  return out;
}

Act3 input_act(GraphBuilder& g, std::size_t n, std::size_t f, std::size_t t) {
  return {g.input_value(), n, f, t, f * t, t};
}

}  // namespace

std::shared_ptr<const Executable> capture(const RptcnSnap& snap, std::size_t n,
                                          std::size_t f, std::size_t t,
                                          const CaptureOptions& opts) {
  const std::size_t horizon = snap.head.w.dim(0);
  GraphBuilder g({n, f, t}, {n, horizon});
  Act3 h = input_act(g, n, f, t);
  for (const BlockSnap& block : snap.blocks) {
    Act3 fwd = emit_conv(g, block.conv1, h, true, opts.dispatch_n, "conv1");
    fwd = emit_conv(g, block.conv2, fwd, true, opts.dispatch_n, "conv2");
    const Act3 res = block.shortcut ? emit_conv(g, *block.shortcut, h, false,
                                                opts.dispatch_n, "shortcut")
                                    : h;
    h = emit_add_relu(g, res, fwd);  // eq. (5)
  }
  if (snap.fc) h = emit_conv(g, *snap.fc, h, true, opts.dispatch_n, "fc");
  const Act2 summary =
      snap.attention_scorer
          ? emit_attention_summary(g, *snap.attention_scorer, h,
                                   opts.dispatch_n)
          : emit_time_slice_last(g, h);
  emit_linear(g, snap.head, summary, g.output_value(), "head");
  return g.finish();
}

std::shared_ptr<const Executable> capture(const LstmNetSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts) {
  (void)opts;
  const std::size_t horizon = snap.head.w.dim(0);
  GraphBuilder g({n, f, t}, {n, horizon});
  const Act2 h = emit_lstm(g, snap.lstm, input_act(g, n, f, t), false, "lstm");
  emit_linear(g, snap.head, h, g.output_value(), "head");
  return g.finish();
}

std::shared_ptr<const Executable> capture(const BiLstmNetSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts) {
  (void)opts;
  const std::size_t horizon = snap.head.w.dim(0);
  GraphBuilder g({n, f, t}, {n, horizon});
  const Act3 x = input_act(g, n, f, t);
  const Act2 hf = emit_lstm(g, snap.fwd, x, false, "lstm_fwd");
  const Act2 hb = emit_lstm(g, snap.bwd, x, true, "lstm_bwd");
  emit_linear(g, snap.head, emit_concat(g, hf, hb), g.output_value(), "head");
  return g.finish();
}

std::shared_ptr<const Executable> capture(const CnnLstmSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts) {
  const std::size_t horizon = snap.head.w.dim(0);
  GraphBuilder g({n, f, t}, {n, horizon});
  const Act3 h =
      emit_conv(g, snap.conv, input_act(g, n, f, t), true, opts.dispatch_n,
                "conv");
  const Act2 hl = emit_lstm(g, snap.lstm, h, false, "lstm");
  emit_linear(g, snap.head, hl, g.output_value(), "head");
  return g.finish();
}

CaptureFn make_capture_fn(RptcnSnap snap, const CaptureOptions& opts) {
  return [snap = std::move(snap), opts](std::size_t n, std::size_t f,
                                        std::size_t t) {
    return capture(snap, n, f, t, opts);
  };
}

CaptureFn make_capture_fn(LstmNetSnap snap, const CaptureOptions& opts) {
  return [snap = std::move(snap), opts](std::size_t n, std::size_t f,
                                        std::size_t t) {
    return capture(snap, n, f, t, opts);
  };
}

CaptureFn make_capture_fn(BiLstmNetSnap snap, const CaptureOptions& opts) {
  return [snap = std::move(snap), opts](std::size_t n, std::size_t f,
                                        std::size_t t) {
    return capture(snap, n, f, t, opts);
  };
}

CaptureFn make_capture_fn(CnnLstmSnap snap, const CaptureOptions& opts) {
  return [snap = std::move(snap), opts](std::size_t n, std::size_t f,
                                        std::size_t t) {
    return capture(snap, n, f, t, opts);
  };
}

}  // namespace rptcn::graph
