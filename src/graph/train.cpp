// Planned training step (see train.h for the capture/verify/replay design).
//
// Bit-identity rules this file lives by:
//
//  * This translation unit compiles WITHOUT -mfma (only tensor_ops.cpp gets
//    AVX2+FMA flags). Loops that live in autograd/ops.cpp — also a baseline
//    TU — may be replicated here verbatim and round identically. Anything
//    implemented in tensor_ops.cpp that chains a multiply into an add (GEMM)
//    or evaluates transcendentals (sigmoid/tanh/softmax) must be CALLED, not
//    re-written, so the arithmetic runs under that TU's flags and code paths.
//  * Gradient slots follow the tape's first-write/accumulate discipline: the
//    first contribution writes its formula directly (Node::accumulate copies
//    on first use); later elementwise contributions fuse `slot += expr`
//    (separate mul + add in a no-FMA TU, identical to eager's
//    compute-then-add_inplace); later contributions from kernels that
//    accumulate internally (conv dX/dW/db, linear, broadcast-mul dA) go
//    through a zeroed scratch value and a plain full add, exactly like the
//    eager Tensor::zeros temporary.
//  * GEMM small-vs-blocked dispatch and the conv1d direct-vs-im2col lowering
//    are decided at capture from the same shape-only predicates the eager
//    kernels evaluate per call, so a replay can never pick a different
//    summation order than the tape it replaced.
#include "graph/train.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/trace.h"
#include "common/check.h"
#include "common/rng.h"
#include "graph/plan.h"
#include "obs/metrics.h"
#include "opt/optimizer.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor_ops.h"

namespace rptcn::graph {
namespace {

using ag::trace::OpKind;
using ag::trace::OpRecord;
using ag::trace::TapeTrace;
using autograd::Node;
using NodePtr = std::shared_ptr<autograd::Node>;

struct TrainMetrics {
  obs::Counter& captures = obs::metrics().counter("graph/train_captures");
  obs::Counter& replays = obs::metrics().counter("graph/train_replays");
  obs::Counter& fallbacks = obs::metrics().counter("graph/train_fallbacks");
  obs::Gauge& arena_bytes = obs::metrics().gauge("graph/train_arena_bytes");
};

TrainMetrics& train_metrics() {
  static TrainMetrics* m = new TrainMetrics();
  return *m;
}

/// Weight operands prepacked for the blocked GEMM. Refreshed from the live
/// parameter tensors by pack steps at the top of every replay: in-plan Adam
/// updates mutate the weights each step without bumping weights_version, so
/// a pack can never be reused ACROSS steps — the win is reuse WITHIN one
/// step (the LSTM gate weights are consumed once per timestep forward and
/// once per timestep in backward-dX; 2T GEMMs share one pack pass).
struct PackRegistry {
  std::vector<rptcn::PackedB> packs;
};

/// One compiled full-step program for a fixed [N, F, T]. Replay is
/// single-threaded (the trainer's batch loop): the pack registry and any
/// captured dropout RNG streams are mutated in place.
struct TrainProgram {
  std::shared_ptr<const Executable> exec;
};

/// Capture-time reference to one op operand: either a planned value or a
/// baked leaf node (parameter / constant). Baked reads go through the node
/// every replay, so Adam's in-place parameter updates (and checkpoint
/// restores that keep the same nodes) are picked up automatically.
struct SrcRef {
  bool is_val = false;
  ValueId id = 0;
  NodePtr baked;
};

using CSrc = std::function<const float*(const ExecContext&)>;

CSrc bind_src(const Resolver& rv, const SrcRef& s) {
  if (s.is_val) return rv.cptr(s.id);
  return [n = s.baked](const ExecContext&) { return n->value.raw(); };
}

/// Compiles one TapeTrace into an Executable. Returns nullptr whenever the
/// trace contains anything it cannot re-emit bit-identically; the caller
/// then pins this shape to the eager path.
class Compiler {
 public:
  Compiler(const TapeTrace& trace, NodePtr input, NodePtr loss,
           const std::vector<Variable>& params,
           const std::vector<std::size_t>& offsets, std::size_t target_floats)
      : trace_(trace),
        input_(std::move(input)),
        loss_(std::move(loss)),
        params_(params),
        builder_(input_->value.shape(), {1}),
        preg_(std::make_shared<PackRegistry>()) {
    val_[input_.get()] = builder_.input_value();
    target_ = builder_.target_value(target_floats);
    for (std::size_t i = 0; i < params_.size(); ++i) {
      const Node* pn = params_[i].node().get();
      const ValueId id = builder_.grads_value(offsets[i], params_[i].size());
      floats_[id] = params_[i].size();
      gslot_.emplace(pn, GSlot{id, false});
    }
  }

  std::shared_ptr<const Executable> run() {
    if (trace_.ops.empty() || trace_.backward_order.empty()) return nullptr;
    for (const OpRecord& r : trace_.ops)
      if (!emit_forward(r)) return nullptr;
    if (!loss_emitted_) return nullptr;
    for (Node* n : trace_.backward_order)
      if (!emit_backward(n)) return nullptr;
    // Parameters the probe never touched keep an all-zero gradient (the
    // tape's lazily-materialised zeros); the slab must say the same.
    for (const auto& [pn, slot] : gslot_) {
      (void)pn;
      if (slot.written) continue;
      EmitSpec spec;
      spec.name = "zero_grad";
      spec.outputs.push_back(slot.id);
      const std::size_t sz = value_floats(slot.id);
      builder_.emit(std::move(spec),
                    [id = slot.id, sz](const Resolver& rv) -> Operation {
                      auto dp = rv.ptr(id);
                      return [=](const ExecContext& c) {
                        std::fill_n(dp(c), sz, 0.0f);
                      };
                    });
    }
    return builder_.finish();
  }

 private:
  struct GSlot {
    ValueId id = 0;
    bool written = false;
  };

  std::size_t value_floats(ValueId id) const { return floats_.at(id); }

  ValueId new_value(std::size_t floats) {
    const ValueId id = builder_.value(floats);
    floats_[id] = floats;
    return id;
  }

  bool resolve(const NodePtr& n, SrcRef* out) {
    auto it = val_.find(n.get());
    if (it != val_.end()) {
      out->is_val = true;
      out->id = it->second;
      return true;
    }
    if (n->parents.empty()) {  // leaf: parameter or frozen constant
      out->baked = n;
      return true;
    }
    return false;  // produced by an op the trace did not record
  }

  void add_in(EmitSpec& spec, const SrcRef& s) {
    if (s.is_val) spec.inputs.push_back(s.id);
  }

  /// Register a gradient contribution to n's slot on `spec` and return
  /// whether it is the first (direct write) or a later one (accumulate).
  bool begin_contrib(const NodePtr& n, EmitSpec& spec, ValueId* slot) {
    auto it = gslot_.find(n.get());
    if (it == gslot_.end())
      it = gslot_.emplace(n.get(), GSlot{new_value(n->value.size()), false})
               .first;
    const bool first = !it->second.written;
    it->second.written = true;
    if (!first) spec.inputs.push_back(it->second.id);
    spec.outputs.push_back(it->second.id);
    *slot = it->second.id;
    return first;
  }

  /// Prepack op(B) of a baked weight once per replay; returns the registry
  /// index. Keyed by (node, trans_b) so forward (W^T) and backward-dX (W)
  /// each get one pack shared across every GEMM site that uses it.
  std::size_t ensure_pack(const NodePtr& w, bool trans_b, std::size_t ldb,
                          std::size_t k, std::size_t n) {
    const auto key = std::make_pair(static_cast<const Node*>(w.get()), trans_b);
    auto it = pack_idx_.find(key);
    if (it != pack_idx_.end()) return it->second;
    const std::size_t idx = preg_->packs.size();
    preg_->packs.emplace_back();
    pack_idx_.emplace(key, idx);
    EmitSpec spec;
    spec.name = "pack_w";
    builder_.emit(spec, [preg = preg_, idx, w, ldb, trans_b, k,
                         n](const Resolver&) -> Operation {
      return [=](const ExecContext&) {
        preg->packs[idx] = rptcn::gemm_pack_b(w->value.raw(), ldb, trans_b, k, n);
      };
    });
    return idx;
  }

  /// Materialise the im2col patch matrix of x (for one conv geometry) as an
  /// arena value, once per program. The forward GEMM and the backward-dW
  /// GEMM both consume it; the chunked eager kernels rebuild it on each of
  /// those calls. Only valid in the single-chunk regime, where the patch
  /// layout is consumer-independent.
  ValueId ensure_patches(const SrcRef& x, std::size_t n, std::size_t cin,
                         std::size_t t_in, std::size_t k, std::size_t d,
                         std::size_t pad, std::size_t t_out) {
    const std::array<std::size_t, 6> key{
        static_cast<std::size_t>(x.is_val),
        x.is_val ? static_cast<std::size_t>(x.id)
                 : reinterpret_cast<std::size_t>(x.baked.get()),
        k, d, pad, t_out};
    auto it = patches_of_.find(key);
    if (it != patches_of_.end()) return it->second;
    const ValueId pid = new_value(cin * k * n * t_out);
    EmitSpec spec;
    spec.name = "im2col";
    add_in(spec, x);
    spec.outputs.push_back(pid);
    builder_.emit(std::move(spec),
                  [x, pid, n, cin, t_in, k, d, pad,
                   t_out](const Resolver& rv) -> Operation {
                    auto xp = bind_src(rv, x);
                    auto pp = rv.ptr(pid);
                    return [=](const ExecContext& c) {
                      ag::fwd::conv1d_im2col_full(xp(c), n, cin, t_in, k, d,
                                                  pad, t_out, pp(c));
                    };
                  });
    patches_of_.emplace(key, pid);
    return pid;
  }

  /// Materialise dy gathered into the GEMM chunk layout [cout, n*t_out],
  /// once per program; shared by the backward dX and dW GEMMs.
  ValueId ensure_gathered_dy(ValueId gy, std::size_t n, std::size_t cout,
                             std::size_t t_out) {
    auto it = dyg_of_.find(gy);
    if (it != dyg_of_.end()) return it->second;
    const ValueId did = new_value(cout * n * t_out);
    EmitSpec spec;
    spec.name = "gather_dy";
    spec.inputs.push_back(gy);
    spec.outputs.push_back(did);
    builder_.emit(std::move(spec),
                  [gy, did, n, cout, t_out](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto dp = rv.ptr(did);
                    return [=](const ExecContext& c) {
                      ag::fwd::conv1d_gather_dy_full(gp(c), n, cout, t_out,
                                                     dp(c));
                    };
                  });
    dyg_of_.emplace(gy, did);
    return did;
  }

  // -- forward emitters -------------------------------------------------------

  bool emit_forward(const OpRecord& r) {
    Node* res = r.result.get();
    const bool is_loss = res == loss_.get();
    const ValueId out =
        is_loss ? builder_.output_value() : new_value(res->value.size());
    switch (r.kind) {
      case OpKind::kAdd:
      case OpKind::kMul:
        if (!fwd_elementwise_pair(r, out)) return false;
        break;
      case OpKind::kLinear:
        if (!fwd_linear(r, out)) return false;
        break;
      case OpKind::kRelu:
      case OpKind::kSigmoid:
      case OpKind::kTanh:
        if (!fwd_unary(r, out)) return false;
        break;
      case OpKind::kConv1d:
        if (!fwd_conv1d(r, out)) return false;
        break;
      case OpKind::kWeightNorm:
        if (!fwd_weight_norm(r, out)) return false;
        break;
      case OpKind::kDropout:
      case OpKind::kSpatialDropout:
        if (!fwd_dropout(r, out)) return false;
        break;
      case OpKind::kSoftmaxLastdim:
        if (!fwd_softmax(r, out)) return false;
        break;
      case OpKind::kMulBcastChannel:
        if (!fwd_mul_bcast(r, out)) return false;
        break;
      case OpKind::kSumLastdim:
        if (!fwd_sum_lastdim(r, out)) return false;
        break;
      case OpKind::kTimeSlice:
        if (!fwd_time_slice(r, out)) return false;
        break;
      case OpKind::kTimeReverse:
        if (!fwd_time_reverse(r, out)) return false;
        break;
      case OpKind::kConcatCols:
        if (!fwd_concat_cols(r, out)) return false;
        break;
      case OpKind::kSliceCols:
        if (!fwd_slice_cols(r, out)) return false;
        break;
      case OpKind::kMseLoss:
      case OpKind::kMaeLoss:
      case OpKind::kPinballLoss:
        if (!is_loss) return false;  // a loss that is not THE loss
        if (!fwd_loss(r, out)) return false;
        loss_emitted_ = true;
        break;
    }
    val_[res] = out;
    rec_of_[res] = &r;
    return true;
  }

  bool fwd_elementwise_pair(const OpRecord& r, ValueId out) {
    SrcRef a, b;
    if (!resolve(r.in[0], &a) || !resolve(r.in[1], &b)) return false;
    const std::size_t n = r.result->value.size();
    const bool is_mul = r.kind == OpKind::kMul;
    EmitSpec spec;
    spec.name = is_mul ? "mul" : "add";
    add_in(spec, a);
    add_in(spec, b);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, b, n, is_mul, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto bp = bind_src(rv, b);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* x = ap(c);
                      const float* y = bp(c);
                      float* o = op(c);
                      if (is_mul)
                        for (std::size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
                      else
                        for (std::size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
                    };
                  });
    return true;
  }

  bool fwd_linear(const OpRecord& r, ValueId out) {
    SrcRef x, w, b;
    if (!resolve(r.in[0], &x) || !resolve(r.in[1], &w)) return false;
    const bool has_bias = r.in[2] != nullptr;
    if (has_bias && !resolve(r.in[2], &b)) return false;
    const std::size_t m = r.in[0]->value.dim(0);
    const std::size_t in_f = r.in[1]->value.dim(1);
    const std::size_t out_f = r.in[1]->value.dim(0);
    // y = x·Wᵀ: prepack W when it is a baked leaf and the shape takes the
    // blocked path (the packed replay is bit-identical only there).
    const bool blocked = rptcn::gemm_uses_blocked(m, out_f, in_f);
    const bool packed = blocked && !w.is_val;
    const std::size_t pidx =
        packed ? ensure_pack(w.baked, /*trans_b=*/true, in_f, in_f, out_f) : 0;
    EmitSpec spec;
    spec.name = "linear";
    add_in(spec, x);
    add_in(spec, w);
    if (has_bias) add_in(spec, b);
    spec.outputs.push_back(out);
    builder_.emit(
        std::move(spec),
        [x, w, b, has_bias, m, in_f, out_f, packed, pidx, preg = preg_,
         out](const Resolver& rv) -> Operation {
          auto xp = bind_src(rv, x);
          auto wp = bind_src(rv, w);
          CSrc bp = has_bias ? bind_src(rv, b) : CSrc();
          auto op = rv.ptr(out);
          return [=](const ExecContext& c) {
            float* y = op(c);
            std::fill_n(y, m * out_f, 0.0f);
            if (packed)
              rptcn::gemm_accumulate_packed_b(m, out_f, in_f, xp(c), in_f,
                                              false, preg->packs[pidx], y);
            else
              rptcn::gemm_accumulate(m, out_f, in_f, xp(c), in_f, false, wp(c),
                                     in_f, true, y);
            if (has_bias) {
              const float* bv = bp(c);
              for (std::size_t i = 0; i < m; ++i)
                for (std::size_t j = 0; j < out_f; ++j)
                  y[i * out_f + j] += bv[j];
            }
          };
        });
    return true;
  }

  bool fwd_unary(const OpRecord& r, ValueId out) {
    SrcRef a;
    if (!resolve(r.in[0], &a)) return false;
    const std::size_t n = r.result->value.size();
    const OpKind kind = r.kind;
    EmitSpec spec;
    spec.name = kind == OpKind::kRelu      ? "relu"
                : kind == OpKind::kSigmoid ? "sigmoid"
                                           : "tanh";
    add_in(spec, a);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, n, kind, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* x = ap(c);
                      float* o = op(c);
                      if (kind == OpKind::kRelu) {
                        for (std::size_t i = 0; i < n; ++i)
                          o[i] = x[i] > 0.0f ? x[i] : 0.0f;
                      } else {
                        // transcendental pipelines live in tensor_ops.cpp
                        std::copy_n(x, n, o);
                        if (kind == OpKind::kSigmoid)
                          rptcn::sigmoid_inplace(o, n);
                        else
                          rptcn::tanh_inplace(o, n);
                      }
                    };
                  });
    return true;
  }

  bool fwd_conv1d(const OpRecord& r, ValueId out) {
    SrcRef x, w, b;
    if (!resolve(r.in[0], &x) || !resolve(r.in[1], &w)) return false;
    const bool has_bias = r.in[2] != nullptr;
    if (has_bias && !resolve(r.in[2], &b)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t cin = r.in[0]->value.dim(1);
    const std::size_t t_in = r.in[0]->value.dim(2);
    const std::size_t cout = r.in[1]->value.dim(0);
    const std::size_t k = r.in[1]->value.dim(2);
    const std::size_t t_out = r.result->value.dim(2);
    const std::size_t d = r.a, pad = r.b;
    // Same shape-only dispatch the eager forward makes with the true batch.
    const bool use_gemm = ag::fwd::conv1d_uses_gemm(n, cin, cout, k, t_out);
    const bool prepatch =
        use_gemm && ag::fwd::conv1d_gemm_single_chunk(n, cin, k, t_out);
    if (prepatch) {
      // Build the patch matrix as its own step; the backward-dW GEMM of this
      // conv reuses it instead of re-running im2col over the same x.
      const ValueId patches =
          ensure_patches(x, n, cin, t_in, k, d, pad, t_out);
      EmitSpec spec;
      spec.name = "conv1d_gemm";
      spec.inputs.push_back(patches);
      add_in(spec, w);
      if (has_bias) add_in(spec, b);
      spec.outputs.push_back(out);
      builder_.emit(
          std::move(spec),
          [patches, w, b, has_bias, n, cin, cout, k, t_out,
           out](const Resolver& rv) -> Operation {
            auto pp = rv.cptr(patches);
            auto wp = bind_src(rv, w);
            CSrc bp = has_bias ? bind_src(rv, b) : CSrc();
            auto op = rv.ptr(out);
            return [=](const ExecContext& c) {
              ag::fwd::conv1d_forward_gemm_prepatched(
                  pp(c), wp(c), has_bias ? bp(c) : nullptr, n, cin, cout, k,
                  t_out, op(c));
            };
          });
      return true;
    }
    EmitSpec spec;
    spec.name = use_gemm ? "conv1d_gemm" : "conv1d_direct";
    add_in(spec, x);
    add_in(spec, w);
    if (has_bias) add_in(spec, b);
    spec.outputs.push_back(out);
    builder_.emit(
        std::move(spec),
        [x, w, b, has_bias, n, cin, t_in, cout, k, t_out, d, pad, use_gemm,
         out](const Resolver& rv) -> Operation {
          auto xp = bind_src(rv, x);
          auto wp = bind_src(rv, w);
          CSrc bp = has_bias ? bind_src(rv, b) : CSrc();
          auto op = rv.ptr(out);
          return [=](const ExecContext& c) {
            const float* bv = has_bias ? bp(c) : nullptr;
            if (use_gemm)
              ag::fwd::conv1d_forward_gemm_raw(xp(c), wp(c), bv, n, cin, t_in,
                                               cout, k, d, pad, t_out, op(c));
            else
              ag::fwd::conv1d_direct_strided(xp(c), cin * t_in, t_in, wp(c),
                                             bv, n, cin, t_in, cout, k, d, pad,
                                             t_out, op(c), cout * t_out, t_out);
          };
        });
    return true;
  }

  bool fwd_weight_norm(const OpRecord& r, ValueId out) {
    SrcRef v, g;
    if (!resolve(r.in[0], &v) || !resolve(r.in[1], &g)) return false;
    const std::size_t cout = r.in[0]->value.dim(0);
    const std::size_t row = r.in[0]->value.size() / cout;
    // Per-channel norms feed the backward closure; keep them in the arena.
    const ValueId norms = new_value(cout);
    norms_of_[r.result.get()] = norms;
    EmitSpec spec;
    spec.name = "weight_norm";
    add_in(spec, v);
    add_in(spec, g);
    spec.outputs.push_back(out);
    spec.outputs.push_back(norms);
    builder_.emit(
        std::move(spec),
        [v, g, cout, row, out, norms](const Resolver& rv) -> Operation {
          auto vp = bind_src(rv, v);
          auto gp = bind_src(rv, g);
          auto op = rv.ptr(out);
          auto np = rv.ptr(norms);
          return [=](const ExecContext& c) {
            const float* pv = vp(c);
            const float* pg = gp(c);
            float* po = op(c);
            float* pn = np(c);
            for (std::size_t ch = 0; ch < cout; ++ch) {
              double s = 0.0;
              for (std::size_t i = 0; i < row; ++i) {
                const float vv = pv[ch * row + i];
                s += static_cast<double>(vv) * vv;
              }
              const float nrm =
                  static_cast<float>(std::sqrt(std::max(s, 1e-24)));
              pn[ch] = nrm;
              const float scale = pg[ch] / nrm;
              for (std::size_t i = 0; i < row; ++i)
                po[ch * row + i] = pv[ch * row + i] * scale;
            }
          };
        });
    return true;
  }

  bool fwd_dropout(const OpRecord& r, ValueId out) {
    SrcRef x;
    if (!resolve(r.in[0], &x)) return false;
    if (r.rng == nullptr) return false;
    const std::size_t n = r.result->value.size();
    const float p = r.scalar;
    const float scale = 1.0f / (1.0f - p);
    const ValueId mask = new_value(n);
    mask_of_[r.result.get()] = mask;
    const bool spatial = r.kind == OpKind::kSpatialDropout;
    const std::size_t nb = spatial ? r.result->value.dim(0) : 0;
    const std::size_t cb = spatial ? r.result->value.dim(1) : 0;
    const std::size_t tb = spatial ? r.result->value.dim(2) : 0;
    EmitSpec spec;
    spec.name = spatial ? "spatial_dropout" : "dropout";
    add_in(spec, x);
    spec.outputs.push_back(out);
    spec.outputs.push_back(mask);
    builder_.emit(
        std::move(spec),
        [x, rng = r.rng, n, p, scale, spatial, nb, cb, tb, out,
         mask](const Resolver& rv) -> Operation {
          auto xp = bind_src(rv, x);
          auto op = rv.ptr(out);
          auto mp = rv.ptr(mask);
          return [=](const ExecContext& c) {
            float* mk = mp(c);
            // Draws advance the net's live stream in the exact eager order.
            if (spatial) {
              for (std::size_t ni = 0; ni < nb; ++ni)
                for (std::size_t ci = 0; ci < cb; ++ci) {
                  const float m = rng->bernoulli(p) ? 0.0f : scale;
                  float* row = mk + (ni * cb + ci) * tb;
                  for (std::size_t ti = 0; ti < tb; ++ti) row[ti] = m;
                }
            } else {
              for (std::size_t i = 0; i < n; ++i)
                mk[i] = rng->bernoulli(p) ? 0.0f : scale;
            }
            const float* xv = xp(c);
            float* o = op(c);
            for (std::size_t i = 0; i < n; ++i) o[i] = xv[i] * mk[i];
          };
        });
    return true;
  }

  bool fwd_softmax(const OpRecord& r, ValueId out) {
    SrcRef a;
    if (!resolve(r.in[0], &a)) return false;
    const std::size_t last = r.result->value.shape().back();
    const std::size_t rows = r.result->value.size() / last;
    EmitSpec spec;
    spec.name = "softmax";
    add_in(spec, a);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, rows, last, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      rptcn::softmax_rows(ap(c), op(c), rows, last);
                    };
                  });
    return true;
  }

  bool fwd_mul_bcast(const OpRecord& r, ValueId out) {
    SrcRef a, z;
    if (!resolve(r.in[0], &a) || !resolve(r.in[1], &z)) return false;
    const std::size_t n = r.in[1]->value.dim(0);
    const std::size_t cb = r.in[1]->value.dim(1);
    const std::size_t t = r.in[1]->value.dim(2);
    EmitSpec spec;
    spec.name = "mul_bcast";
    add_in(spec, a);
    add_in(spec, z);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, z, n, cb, t, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto zp = bind_src(rv, z);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* av = ap(c);
                      const float* zv = zp(c);
                      float* o = op(c);
                      for (std::size_t ni = 0; ni < n; ++ni) {
                        const float* arow = av + ni * t;
                        for (std::size_t ci = 0; ci < cb; ++ci) {
                          const float* zrow = zv + (ni * cb + ci) * t;
                          float* orow = o + (ni * cb + ci) * t;
                          for (std::size_t ti = 0; ti < t; ++ti)
                            orow[ti] = arow[ti] * zrow[ti];
                        }
                      }
                    };
                  });
    return true;
  }

  bool fwd_sum_lastdim(const OpRecord& r, ValueId out) {
    SrcRef a;
    if (!resolve(r.in[0], &a)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t cb = r.in[0]->value.dim(1);
    const std::size_t t = r.in[0]->value.dim(2);
    EmitSpec spec;
    spec.name = "sum_lastdim";
    add_in(spec, a);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, n, cb, t, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* av = ap(c);
                      float* o = op(c);
                      for (std::size_t ni = 0; ni < n; ++ni)
                        for (std::size_t ci = 0; ci < cb; ++ci) {
                          const float* row = av + (ni * cb + ci) * t;
                          double s = 0.0;
                          for (std::size_t ti = 0; ti < t; ++ti) s += row[ti];
                          o[ni * cb + ci] = static_cast<float>(s);
                        }
                    };
                  });
    return true;
  }

  bool fwd_time_slice(const OpRecord& r, ValueId out) {
    SrcRef x;
    if (!resolve(r.in[0], &x)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t cb = r.in[0]->value.dim(1);
    const std::size_t tt = r.in[0]->value.dim(2);
    const std::size_t t = r.a;
    EmitSpec spec;
    spec.name = "time_slice";
    add_in(spec, x);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [x, n, cb, tt, t, out](const Resolver& rv) -> Operation {
                    auto xp = bind_src(rv, x);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* xv = xp(c);
                      float* o = op(c);
                      for (std::size_t ni = 0; ni < n; ++ni)
                        for (std::size_t ci = 0; ci < cb; ++ci)
                          o[ni * cb + ci] = xv[(ni * cb + ci) * tt + t];
                    };
                  });
    return true;
  }

  bool fwd_time_reverse(const OpRecord& r, ValueId out) {
    SrcRef x;
    if (!resolve(r.in[0], &x)) return false;
    const std::size_t rows =
        r.in[0]->value.dim(0) * r.in[0]->value.dim(1);
    const std::size_t t = r.in[0]->value.dim(2);
    EmitSpec spec;
    spec.name = "time_reverse";
    add_in(spec, x);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [x, rows, t, out](const Resolver& rv) -> Operation {
                    auto xp = bind_src(rv, x);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* xv = xp(c);
                      float* o = op(c);
                      for (std::size_t rr = 0; rr < rows; ++rr) {
                        const float* src = xv + rr * t;
                        float* dst = o + rr * t;
                        for (std::size_t ti = 0; ti < t; ++ti)
                          dst[ti] = src[t - 1 - ti];
                      }
                    };
                  });
    return true;
  }

  bool fwd_concat_cols(const OpRecord& r, ValueId out) {
    SrcRef a, b;
    if (!resolve(r.in[0], &a) || !resolve(r.in[1], &b)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t fa = r.in[0]->value.dim(1);
    const std::size_t fb = r.in[1]->value.dim(1);
    EmitSpec spec;
    spec.name = "concat_cols";
    add_in(spec, a);
    add_in(spec, b);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [a, b, n, fa, fb, out](const Resolver& rv) -> Operation {
                    auto ap = bind_src(rv, a);
                    auto bp = bind_src(rv, b);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* av = ap(c);
                      const float* bv = bp(c);
                      float* o = op(c);
                      for (std::size_t i = 0; i < n; ++i) {
                        std::copy_n(av + i * fa, fa, o + i * (fa + fb));
                        std::copy_n(bv + i * fb, fb, o + i * (fa + fb) + fa);
                      }
                    };
                  });
    return true;
  }

  bool fwd_slice_cols(const OpRecord& r, ValueId out) {
    SrcRef x;
    if (!resolve(r.in[0], &x)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t f = r.in[0]->value.dim(1);
    const std::size_t start = r.a, count = r.b;
    EmitSpec spec;
    spec.name = "slice_cols";
    add_in(spec, x);
    spec.outputs.push_back(out);
    builder_.emit(std::move(spec),
                  [x, n, f, start, count, out](const Resolver& rv) -> Operation {
                    auto xp = bind_src(rv, x);
                    auto op = rv.ptr(out);
                    return [=](const ExecContext& c) {
                      const float* xv = xp(c);
                      float* o = op(c);
                      for (std::size_t i = 0; i < n; ++i)
                        std::copy_n(xv + i * f + start, count, o + i * count);
                    };
                  });
    return true;
  }

  bool fwd_loss(const OpRecord& r, ValueId out) {
    SrcRef p;
    if (!resolve(r.in[0], &p)) return false;
    const std::size_t n = r.in[0]->value.size();
    if (value_floats_of_target_ != n) return false;  // pred/target mismatch
    const OpKind kind = r.kind;
    const float tau = r.scalar;
    EmitSpec spec;
    spec.name = kind == OpKind::kMseLoss   ? "mse_loss"
                : kind == OpKind::kMaeLoss ? "mae_loss"
                                           : "pinball_loss";
    add_in(spec, p);
    spec.inputs.push_back(target_);
    spec.outputs.push_back(out);
    builder_.emit(
        std::move(spec),
        [p, n, kind, tau, tgt = target_, out](const Resolver& rv) -> Operation {
          auto pp = bind_src(rv, p);
          auto tp = rv.cptr(tgt);
          auto op = rv.ptr(out);
          return [=](const ExecContext& c) {
            const float* pv = pp(c);
            const float* tv = tp(c);
            double acc = 0.0;
            if (kind == OpKind::kMseLoss) {
              for (std::size_t i = 0; i < n; ++i) {
                const double dd = static_cast<double>(pv[i]) - tv[i];
                acc += dd * dd;
              }
            } else if (kind == OpKind::kMaeLoss) {
              for (std::size_t i = 0; i < n; ++i)
                acc += std::fabs(static_cast<double>(pv[i]) - tv[i]);
            } else {
              for (std::size_t i = 0; i < n; ++i) {
                const double diff = static_cast<double>(tv[i]) - pv[i];
                acc += diff >= 0.0 ? tau * diff : (tau - 1.0) * diff;
              }
            }
            op(c)[0] = static_cast<float>(acc / static_cast<double>(n));
          };
        });
    return true;
  }

  // -- backward emitters ------------------------------------------------------

  bool emit_backward(Node* n) {
    auto rit = rec_of_.find(n);
    if (rit == rec_of_.end()) return false;  // unrecorded closure fired
    const OpRecord& r = *rit->second;
    const bool is_loss = n == loss_.get();
    ValueId gy = 0;
    if (!is_loss) {
      auto git = gslot_.find(n);
      if (git == gslot_.end() || !git->second.written) return false;
      gy = git->second.id;
    }
    switch (r.kind) {
      case OpKind::kAdd:
        if (r.in[0]->requires_grad) bwd_copy(r.in[0], gy);
        if (r.in[1]->requires_grad) bwd_copy(r.in[1], gy);
        return true;
      case OpKind::kMul:
        if (r.in[0]->requires_grad) bwd_mul(r.in[0], gy, r.in[1]);
        if (r.in[1]->requires_grad) bwd_mul(r.in[1], gy, r.in[0]);
        return true;
      case OpKind::kLinear:
        return bwd_linear(r, gy);
      case OpKind::kRelu:
      case OpKind::kSigmoid:
      case OpKind::kTanh:
        return bwd_unary(r, gy);
      case OpKind::kConv1d:
        return bwd_conv1d(r, gy);
      case OpKind::kWeightNorm:
        return bwd_weight_norm(r, gy);
      case OpKind::kDropout:
      case OpKind::kSpatialDropout:
        return bwd_dropout(r, gy);
      case OpKind::kSoftmaxLastdim:
        return bwd_softmax(r, gy);
      case OpKind::kMulBcastChannel:
        return bwd_mul_bcast(r, gy);
      case OpKind::kSumLastdim:
        return bwd_sum_lastdim(r, gy);
      case OpKind::kTimeSlice:
        return bwd_time_slice(r, gy);
      case OpKind::kTimeReverse:
        return bwd_time_reverse(r, gy);
      case OpKind::kConcatCols:
        return bwd_concat_cols(r, gy);
      case OpKind::kSliceCols:
        return bwd_slice_cols(r, gy);
      case OpKind::kMseLoss:
      case OpKind::kMaeLoss:
      case OpKind::kPinballLoss:
        return bwd_loss(r);
    }
    return false;
  }

  /// parent += gy (add's pass-through).
  void bwd_copy(const NodePtr& parent, ValueId gy) {
    const std::size_t n = parent->value.size();
    EmitSpec spec;
    spec.name = "bwd_copy";
    spec.inputs.push_back(gy);
    ValueId slot = 0;
    const bool first = begin_contrib(parent, spec, &slot);
    builder_.emit(std::move(spec),
                  [gy, slot, first, n](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto dp = rv.ptr(slot);
                    return [=](const ExecContext& c) {
                      const float* g = gp(c);
                      float* o = dp(c);
                      if (first)
                        for (std::size_t i = 0; i < n; ++i) o[i] = g[i];
                      else
                        for (std::size_t i = 0; i < n; ++i) o[i] += g[i];
                    };
                  });
  }

  /// parent += gy * other.value (mul's per-side rule).
  void bwd_mul(const NodePtr& parent, ValueId gy, const NodePtr& other) {
    SrcRef ov;
    // `other` is a forward operand of a recorded op, so resolve cannot fail.
    RPTCN_CHECK(resolve(other, &ov), "planned train: mul operand vanished");
    const std::size_t n = parent->value.size();
    EmitSpec spec;
    spec.name = "bwd_mul";
    spec.inputs.push_back(gy);
    add_in(spec, ov);
    ValueId slot = 0;
    const bool first = begin_contrib(parent, spec, &slot);
    builder_.emit(std::move(spec),
                  [gy, ov, slot, first, n](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto op2 = bind_src(rv, ov);
                    auto dp = rv.ptr(slot);
                    return [=](const ExecContext& c) {
                      const float* g = gp(c);
                      const float* y = op2(c);
                      float* o = dp(c);
                      if (first)
                        for (std::size_t i = 0; i < n; ++i) o[i] = g[i] * y[i];
                      else
                        for (std::size_t i = 0; i < n; ++i) o[i] += g[i] * y[i];
                    };
                  });
  }

  /// Internal-accumulation contribution: zero the destination, run `kernel`
  /// (which accumulates into it), and, when the slot already holds earlier
  /// contributions, route through a scratch value and add — the planned twin
  /// of `accumulate(Tensor::zeros + kernel)`.
  template <typename KernelBind>
  void emit_accum_contrib(const char* name, const NodePtr& parent,
                          EmitSpec spec, std::size_t floats,
                          KernelBind bind_kernel) {
    ValueId slot = 0;
    const bool first = begin_contrib(parent, spec, &slot);
    ValueId dst = slot;
    if (!first) {
      dst = new_value(floats);
      spec.scratch.push_back(dst);
    }
    spec.name = name;
    builder_.emit(
        std::move(spec),
        [slot, dst, first, floats, bind_kernel](const Resolver& rv) -> Operation {
          auto kernel = bind_kernel(rv);
          auto dp = rv.ptr(dst);
          auto sp = rv.ptr(slot);
          return [=](const ExecContext& c) {
            float* d = dp(c);
            std::fill_n(d, floats, 0.0f);
            kernel(c, d);
            if (!first) {
              float* s = sp(c);
              for (std::size_t i = 0; i < floats; ++i) s[i] += d[i];
            }
          };
        });
  }

  bool bwd_linear(const OpRecord& r, ValueId gy) {
    SrcRef x, w;
    if (!resolve(r.in[0], &x) || !resolve(r.in[1], &w)) return false;
    const std::size_t m = r.in[0]->value.dim(0);
    const std::size_t in_f = r.in[1]->value.dim(1);
    const std::size_t out_f = r.in[1]->value.dim(0);
    if (r.in[0]->requires_grad) {
      // dx = dy·W — the second weight-side GEMM worth a shared pack.
      const bool blocked = rptcn::gemm_uses_blocked(m, in_f, out_f);
      const bool packed = blocked && !w.is_val;
      const std::size_t pidx =
          packed ? ensure_pack(w.baked, /*trans_b=*/false, in_f, out_f, in_f)
                 : 0;
      EmitSpec spec;
      spec.inputs.push_back(gy);
      add_in(spec, w);
      emit_accum_contrib(
          "bwd_linear_dx", r.in[0], std::move(spec), m * in_f,
          [gy, w, m, in_f, out_f, packed, pidx, preg = preg_](const Resolver& rv) {
            auto gp = rv.cptr(gy);
            auto wp = bind_src(rv, w);
            return [=](const ExecContext& c, float* d) {
              if (packed)
                rptcn::gemm_accumulate_packed_b(m, in_f, out_f, gp(c), out_f,
                                                false, preg->packs[pidx], d);
              else
                rptcn::gemm_accumulate(m, in_f, out_f, gp(c), out_f, false,
                                       wp(c), in_f, false, d);
            };
          });
    }
    if (r.in[1]->requires_grad) {
      // dw = dyᵀ·x — activations on the B side, nothing to prepack.
      EmitSpec spec;
      spec.inputs.push_back(gy);
      add_in(spec, x);
      emit_accum_contrib("bwd_linear_dw", r.in[1], std::move(spec),
                         out_f * in_f,
                         [gy, x, m, in_f, out_f](const Resolver& rv) {
                           auto gp = rv.cptr(gy);
                           auto xp = bind_src(rv, x);
                           return [=](const ExecContext& c, float* d) {
                             rptcn::gemm_accumulate(out_f, in_f, m, gp(c),
                                                    out_f, true, xp(c), in_f,
                                                    false, d);
                           };
                         });
    }
    if (r.in[2] != nullptr && r.in[2]->requires_grad) {
      EmitSpec spec;
      spec.inputs.push_back(gy);
      emit_accum_contrib("bwd_linear_db", r.in[2], std::move(spec), out_f,
                         [gy, m, out_f](const Resolver& rv) {
                           auto gp = rv.cptr(gy);
                           return [=](const ExecContext& c, float* d) {
                             const float* g = gp(c);
                             // sum_cols' exact (i, j) order
                             for (std::size_t i = 0; i < m; ++i)
                               for (std::size_t j = 0; j < out_f; ++j)
                                 d[j] += g[i * out_f + j];
                           };
                         });
    }
    return true;
  }

  bool bwd_unary(const OpRecord& r, ValueId gy) {
    // relu reads the parent's value; sigmoid/tanh read the forward OUTPUT.
    const bool from_out = r.kind != OpKind::kRelu;
    SrcRef s;
    if (!resolve(from_out ? r.result : r.in[0], &s)) return false;
    const std::size_t n = r.result->value.size();
    const OpKind kind = r.kind;
    EmitSpec spec;
    spec.name = "bwd_unary";
    spec.inputs.push_back(gy);
    add_in(spec, s);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(
        std::move(spec),
        [gy, s, slot, first, n, kind](const Resolver& rv) -> Operation {
          auto gp = rv.cptr(gy);
          auto sp = bind_src(rv, s);
          auto dp = rv.ptr(slot);
          // Six specialised loops (kind × first/accumulate): per-element
          // arithmetic is unchanged, but hoisting the selection out of the
          // loop lets these bodies auto-vectorise like the tape's dedicated
          // backward loops in autograd/ops.cpp do.
          switch (kind) {
            case OpKind::kRelu:
              // Hoisting the g[i] load out of the select makes both arms
              // register operands, so the compiler if-converts and
              // vectorises instead of emitting a data-dependent branch
              // (~50% mispredict rate on a live relu mask). Selection has
              // no rounding: the stored bits are g[i]'s or 0.0f's either
              // way, identical to the tape's conditional store.
              return [=](const ExecContext& c) {
                const float* g = gp(c);
                const float* ps = sp(c);
                float* o = dp(c);
                if (first)
                  for (std::size_t i = 0; i < n; ++i) {
                    const float v = g[i];
                    o[i] = ps[i] <= 0.0f ? 0.0f : v;
                  }
                else
                  for (std::size_t i = 0; i < n; ++i) {
                    const float v = g[i];
                    o[i] += ps[i] <= 0.0f ? 0.0f : v;
                  }
              };
            case OpKind::kSigmoid:
              return [=](const ExecContext& c) {
                const float* g = gp(c);
                const float* ps = sp(c);
                float* o = dp(c);
                if (first)
                  for (std::size_t i = 0; i < n; ++i)
                    o[i] = g[i] * (ps[i] * (1.0f - ps[i]));
                else
                  for (std::size_t i = 0; i < n; ++i)
                    o[i] += g[i] * (ps[i] * (1.0f - ps[i]));
              };
            default:
              return [=](const ExecContext& c) {
                const float* g = gp(c);
                const float* ps = sp(c);
                float* o = dp(c);
                if (first)
                  for (std::size_t i = 0; i < n; ++i)
                    o[i] = g[i] * (1.0f - ps[i] * ps[i]);
                else
                  for (std::size_t i = 0; i < n; ++i)
                    o[i] += g[i] * (1.0f - ps[i] * ps[i]);
              };
          }
        });
    return true;
  }

  bool bwd_conv1d(const OpRecord& r, ValueId gy) {
    SrcRef x, w;
    if (!resolve(r.in[0], &x) || !resolve(r.in[1], &w)) return false;
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t cin = r.in[0]->value.dim(1);
    const std::size_t t_in = r.in[0]->value.dim(2);
    const std::size_t cout = r.in[1]->value.dim(0);
    const std::size_t k = r.in[1]->value.dim(2);
    const std::size_t t_out = r.result->value.dim(2);
    const std::size_t d = r.a, pad = r.b;
    const bool lower = ag::fwd::conv1d_uses_gemm(n, cin, cout, k, t_out);
    // Same regime the forward emitter checked: when one chunk covers the
    // batch, dX and dW share a single dy gather, and dW reuses the patch
    // matrix the forward conv already built from this x.
    const bool prepatch =
        lower && ag::fwd::conv1d_gemm_single_chunk(n, cin, k, t_out);
    const ValueId dyg = prepatch && (r.in[0]->requires_grad ||
                                     r.in[1]->requires_grad)
                            ? ensure_gathered_dy(gy, n, cout, t_out)
                            : 0;
    if (r.in[0]->requires_grad) {
      EmitSpec spec;
      if (prepatch) {
        spec.inputs.push_back(dyg);
        add_in(spec, w);
        emit_accum_contrib(
            "bwd_conv_dx", r.in[0], std::move(spec), n * cin * t_in,
            [dyg, w, n, cin, t_in, cout, k, d, pad, t_out](const Resolver& rv) {
              auto gp = rv.cptr(dyg);
              auto wp = bind_src(rv, w);
              return [=](const ExecContext& c, float* dst) {
                ag::fwd::conv1d_dx_gemm_pregathered(gp(c), wp(c), n, cin, t_in,
                                                    cout, k, d, pad, t_out,
                                                    dst);
              };
            });
      } else {
        spec.inputs.push_back(gy);
        add_in(spec, w);
        emit_accum_contrib(
            "bwd_conv_dx", r.in[0], std::move(spec), n * cin * t_in,
            [gy, w, n, cin, t_in, cout, k, t_out, d, pad,
             lower](const Resolver& rv) {
              auto gp = rv.cptr(gy);
              auto wp = bind_src(rv, w);
              return [=](const ExecContext& c, float* dst) {
                if (lower)
                  ag::fwd::conv1d_dx_gemm_raw(gp(c), wp(c), n, cin, t_in, cout,
                                              k, d, pad, t_out, dst);
                else
                  ag::fwd::conv1d_dx_direct_raw(gp(c), wp(c), n, cin, t_in,
                                                cout, k, d, pad, t_out, dst);
              };
            });
      }
    }
    if (r.in[1]->requires_grad) {
      EmitSpec spec;
      if (prepatch) {
        const ValueId patches =
            ensure_patches(x, n, cin, t_in, k, d, pad, t_out);
        spec.inputs.push_back(dyg);
        spec.inputs.push_back(patches);
        emit_accum_contrib(
            "bwd_conv_dw", r.in[1], std::move(spec), cout * cin * k,
            [dyg, patches, n, cin, cout, k, t_out](const Resolver& rv) {
              auto gp = rv.cptr(dyg);
              auto pp = rv.cptr(patches);
              return [=](const ExecContext& c, float* dst) {
                ag::fwd::conv1d_dw_gemm_prepatched(gp(c), pp(c), n, cin, cout,
                                                   k, t_out, dst);
              };
            });
      } else {
        spec.inputs.push_back(gy);
        add_in(spec, x);
        emit_accum_contrib(
            "bwd_conv_dw", r.in[1], std::move(spec), cout * cin * k,
            [gy, x, n, cin, t_in, cout, k, t_out, d, pad,
             lower](const Resolver& rv) {
              auto gp = rv.cptr(gy);
              auto xp = bind_src(rv, x);
              return [=](const ExecContext& c, float* dst) {
                if (lower)
                  ag::fwd::conv1d_dw_gemm_raw(gp(c), xp(c), n, cin, t_in, cout,
                                              k, d, pad, t_out, dst);
                else
                  ag::fwd::conv1d_dw_direct_raw(gp(c), xp(c), n, cin, t_in,
                                                cout, k, d, pad, t_out, dst);
              };
            });
      }
    }
    if (r.in[2] != nullptr && r.in[2]->requires_grad) {
      EmitSpec spec;
      spec.inputs.push_back(gy);
      emit_accum_contrib("bwd_conv_db", r.in[2], std::move(spec), cout,
                         [gy, n, cout, t_out](const Resolver& rv) {
                           auto gp = rv.cptr(gy);
                           return [=](const ExecContext& c, float* dst) {
                             ag::fwd::conv1d_db_raw(gp(c), n, cout, t_out,
                                                    dst);
                           };
                         });
    }
    return true;
  }

  bool bwd_weight_norm(const OpRecord& r, ValueId gy) {
    SrcRef v, g;
    if (!resolve(r.in[0], &v) || !resolve(r.in[1], &g)) return false;
    auto nit = norms_of_.find(r.result.get());
    if (nit == norms_of_.end()) return false;
    const ValueId norms = nit->second;
    const std::size_t cout = r.in[0]->value.dim(0);
    const std::size_t row = r.in[0]->value.size() / cout;
    const bool want_dv = r.in[0]->requires_grad;
    const bool want_dg = r.in[1]->requires_grad;
    EmitSpec spec;
    spec.name = "bwd_weight_norm";
    spec.inputs.push_back(gy);
    spec.inputs.push_back(norms);
    add_in(spec, v);
    add_in(spec, g);
    ValueId dv_slot = 0, dg_slot = 0;
    bool dv_first = true, dg_first = true;
    if (want_dv) dv_first = begin_contrib(r.in[0], spec, &dv_slot);
    if (want_dg) dg_first = begin_contrib(r.in[1], spec, &dg_slot);
    builder_.emit(
        std::move(spec),
        [gy, norms, v, g, cout, row, want_dv, want_dg, dv_slot, dg_slot,
         dv_first, dg_first](const Resolver& rv) -> Operation {
          auto gp = rv.cptr(gy);
          auto np = rv.cptr(norms);
          auto vp = bind_src(rv, v);
          auto gainp = bind_src(rv, g);
          auto dvp = want_dv ? rv.ptr(dv_slot)
                             : std::function<float*(const ExecContext&)>();
          auto dgp = want_dg ? rv.ptr(dg_slot)
                             : std::function<float*(const ExecContext&)>();
          return [=](const ExecContext& c) {
            const float* pg = gp(c);
            const float* pv = vp(c);
            const float* pn = np(c);
            const float* pgain = gainp(c);
            float* dv = want_dv ? dvp(c) : nullptr;
            float* dg = want_dg ? dgp(c) : nullptr;
            for (std::size_t ch = 0; ch < cout; ++ch) {
              double dot = 0.0;
              for (std::size_t i = 0; i < row; ++i)
                dot +=
                    static_cast<double>(pg[ch * row + i]) * pv[ch * row + i];
              const float nn = pn[ch];
              const float gc = pgain[ch];
              if (want_dg) {
                const float e = static_cast<float>(dot / nn);
                if (dg_first)
                  dg[ch] = e;
                else
                  dg[ch] += e;
              }
              if (want_dv) {
                const float a = gc / nn;
                const float bcoef = static_cast<float>(
                    gc * dot / (static_cast<double>(nn) * nn * nn));
                for (std::size_t i = 0; i < row; ++i) {
                  const float e =
                      a * pg[ch * row + i] - bcoef * pv[ch * row + i];
                  if (dv_first)
                    dv[ch * row + i] = e;
                  else
                    dv[ch * row + i] += e;
                }
              }
            }
          };
        });
    return true;
  }

  bool bwd_dropout(const OpRecord& r, ValueId gy) {
    auto mit = mask_of_.find(r.result.get());
    if (mit == mask_of_.end()) return false;
    const ValueId mask = mit->second;
    const std::size_t n = r.result->value.size();
    EmitSpec spec;
    spec.name = "bwd_dropout";
    spec.inputs.push_back(gy);
    spec.inputs.push_back(mask);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(std::move(spec),
                  [gy, mask, slot, first, n](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto mp = rv.cptr(mask);
                    auto dp = rv.ptr(slot);
                    return [=](const ExecContext& c) {
                      const float* g = gp(c);
                      const float* mk = mp(c);
                      float* o = dp(c);
                      if (first)
                        for (std::size_t i = 0; i < n; ++i)
                          o[i] = g[i] * mk[i];
                      else
                        for (std::size_t i = 0; i < n; ++i)
                          o[i] += g[i] * mk[i];
                    };
                  });
    return true;
  }

  bool bwd_softmax(const OpRecord& r, ValueId gy) {
    SrcRef s;
    if (!resolve(r.result, &s)) return false;  // forward output
    const std::size_t last = r.result->value.shape().back();
    const std::size_t rows = r.result->value.size() / last;
    EmitSpec spec;
    spec.name = "bwd_softmax";
    spec.inputs.push_back(gy);
    add_in(spec, s);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(
        std::move(spec),
        [gy, s, slot, first, rows, last](const Resolver& rv) -> Operation {
          auto gp = rv.cptr(gy);
          auto sp = bind_src(rv, s);
          auto dp = rv.ptr(slot);
          return [=](const ExecContext& c) {
            const float* gv = gp(c);
            const float* sv = sp(c);
            float* o = dp(c);
            for (std::size_t rr = 0; rr < rows; ++rr) {
              const float* ps = sv + rr * last;
              const float* pg = gv + rr * last;
              float* pd = o + rr * last;
              double dot = 0.0;
              for (std::size_t j = 0; j < last; ++j)
                dot += static_cast<double>(pg[j]) * ps[j];
              for (std::size_t j = 0; j < last; ++j) {
                const float e = ps[j] * (pg[j] - static_cast<float>(dot));
                if (first)
                  pd[j] = e;
                else
                  pd[j] += e;
              }
            }
          };
        });
    return true;
  }

  bool bwd_mul_bcast(const OpRecord& r, ValueId gy) {
    SrcRef a, z;
    if (!resolve(r.in[0], &a) || !resolve(r.in[1], &z)) return false;
    const std::size_t nb = r.in[1]->value.dim(0);
    const std::size_t cb = r.in[1]->value.dim(1);
    const std::size_t tb = r.in[1]->value.dim(2);
    if (r.in[0]->requires_grad) {
      // da sums over channels — internal accumulation.
      EmitSpec spec;
      spec.inputs.push_back(gy);
      add_in(spec, z);
      emit_accum_contrib("bwd_bcast_da", r.in[0], std::move(spec), nb * tb,
                         [gy, z, nb, cb, tb](const Resolver& rv) {
                           auto gp = rv.cptr(gy);
                           auto zp = bind_src(rv, z);
                           return [=](const ExecContext& c, float* d) {
                             const float* gv = gp(c);
                             const float* zv = zp(c);
                             for (std::size_t ni = 0; ni < nb; ++ni) {
                               float* darow = d + ni * tb;
                               for (std::size_t ci = 0; ci < cb; ++ci) {
                                 const float* zrow =
                                     zv + (ni * cb + ci) * tb;
                                 const float* grow =
                                     gv + (ni * cb + ci) * tb;
                                 for (std::size_t ti = 0; ti < tb; ++ti)
                                   darow[ti] += grow[ti] * zrow[ti];
                               }
                             }
                           };
                         });
    }
    if (r.in[1]->requires_grad) {
      EmitSpec spec;
      spec.name = "bwd_bcast_dz";
      spec.inputs.push_back(gy);
      add_in(spec, a);
      ValueId slot = 0;
      const bool first = begin_contrib(r.in[1], spec, &slot);
      builder_.emit(
          std::move(spec),
          [gy, a, slot, first, nb, cb, tb](const Resolver& rv) -> Operation {
            auto gp = rv.cptr(gy);
            auto ap = bind_src(rv, a);
            auto dp = rv.ptr(slot);
            return [=](const ExecContext& c) {
              const float* gv = gp(c);
              const float* av = ap(c);
              float* o = dp(c);
              for (std::size_t ni = 0; ni < nb; ++ni) {
                const float* arow = av + ni * tb;
                for (std::size_t ci = 0; ci < cb; ++ci) {
                  const float* grow = gv + (ni * cb + ci) * tb;
                  float* orow = o + (ni * cb + ci) * tb;
                  for (std::size_t ti = 0; ti < tb; ++ti) {
                    const float e = grow[ti] * arow[ti];
                    if (first)
                      orow[ti] = e;
                    else
                      orow[ti] += e;
                  }
                }
              }
            };
          });
    }
    return true;
  }

  bool bwd_sum_lastdim(const OpRecord& r, ValueId gy) {
    const std::size_t nb = r.result->value.dim(0);
    const std::size_t cb = r.result->value.dim(1);
    const std::size_t t = r.in[0]->value.dim(2);
    EmitSpec spec;
    spec.name = "bwd_sum_lastdim";
    spec.inputs.push_back(gy);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(std::move(spec),
                  [gy, slot, first, nb, cb, t](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto dp = rv.ptr(slot);
                    return [=](const ExecContext& c) {
                      const float* gv = gp(c);
                      float* o = dp(c);
                      for (std::size_t ni = 0; ni < nb; ++ni)
                        for (std::size_t ci = 0; ci < cb; ++ci) {
                          const float g = gv[ni * cb + ci];
                          float* row = o + (ni * cb + ci) * t;
                          if (first)
                            for (std::size_t ti = 0; ti < t; ++ti) row[ti] = g;
                          else
                            for (std::size_t ti = 0; ti < t; ++ti)
                              row[ti] += g;
                        }
                    };
                  });
    return true;
  }

  bool bwd_time_slice(const OpRecord& r, ValueId gy) {
    const std::size_t nb = r.result->value.dim(0);
    const std::size_t cb = r.result->value.dim(1);
    const std::size_t tt = r.in[0]->value.dim(2);
    const std::size_t t = r.a;
    EmitSpec spec;
    spec.inputs.push_back(gy);
    // Sparse scatter: untouched positions must read as eager's zeros.
    emit_accum_contrib("bwd_time_slice", r.in[0], std::move(spec),
                       nb * cb * tt, [gy, nb, cb, tt, t](const Resolver& rv) {
                         auto gp = rv.cptr(gy);
                         return [=](const ExecContext& c, float* d) {
                           const float* gv = gp(c);
                           for (std::size_t ni = 0; ni < nb; ++ni)
                             for (std::size_t ci = 0; ci < cb; ++ci)
                               d[(ni * cb + ci) * tt + t] = gv[ni * cb + ci];
                         };
                       });
    return true;
  }

  bool bwd_time_reverse(const OpRecord& r, ValueId gy) {
    const std::size_t rows = r.in[0]->value.dim(0) * r.in[0]->value.dim(1);
    const std::size_t t = r.in[0]->value.dim(2);
    EmitSpec spec;
    spec.name = "bwd_time_reverse";
    spec.inputs.push_back(gy);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(std::move(spec),
                  [gy, slot, first, rows, t](const Resolver& rv) -> Operation {
                    auto gp = rv.cptr(gy);
                    auto dp = rv.ptr(slot);
                    return [=](const ExecContext& c) {
                      const float* gv = gp(c);
                      float* o = dp(c);
                      for (std::size_t rr = 0; rr < rows; ++rr) {
                        const float* src = gv + rr * t;
                        float* dst = o + rr * t;
                        if (first)
                          for (std::size_t ti = 0; ti < t; ++ti)
                            dst[ti] = src[t - 1 - ti];
                        else
                          for (std::size_t ti = 0; ti < t; ++ti)
                            dst[ti] += src[t - 1 - ti];
                      }
                    };
                  });
    return true;
  }

  bool bwd_concat_cols(const OpRecord& r, ValueId gy) {
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t fa = r.in[0]->value.dim(1);
    const std::size_t fb = r.in[1]->value.dim(1);
    for (int side = 0; side < 2; ++side) {
      const NodePtr& parent = side == 0 ? r.in[0] : r.in[1];
      if (!parent->requires_grad) continue;
      const std::size_t fp = side == 0 ? fa : fb;
      const std::size_t col0 = side == 0 ? 0 : fa;
      EmitSpec spec;
      spec.name = "bwd_concat_cols";
      spec.inputs.push_back(gy);
      ValueId slot = 0;
      const bool first = begin_contrib(parent, spec, &slot);
      builder_.emit(
          std::move(spec),
          [gy, slot, first, n, fa, fb, fp, col0](const Resolver& rv) -> Operation {
            auto gp = rv.cptr(gy);
            auto dp = rv.ptr(slot);
            return [=](const ExecContext& c) {
              const float* gv = gp(c);
              float* o = dp(c);
              for (std::size_t i = 0; i < n; ++i) {
                const float* src = gv + i * (fa + fb) + col0;
                float* dst = o + i * fp;
                if (first)
                  for (std::size_t j = 0; j < fp; ++j) dst[j] = src[j];
                else
                  for (std::size_t j = 0; j < fp; ++j) dst[j] += src[j];
              }
            };
          });
    }
    return true;
  }

  bool bwd_slice_cols(const OpRecord& r, ValueId gy) {
    const std::size_t n = r.in[0]->value.dim(0);
    const std::size_t f = r.in[0]->value.dim(1);
    const std::size_t start = r.a, count = r.b;
    EmitSpec spec;
    spec.inputs.push_back(gy);
    // Scatter into [start, start+count): the rest must be eager's zeros.
    emit_accum_contrib("bwd_slice_cols", r.in[0], std::move(spec), n * f,
                       [gy, n, f, start, count](const Resolver& rv) {
                         auto gp = rv.cptr(gy);
                         return [=](const ExecContext& c, float* d) {
                           const float* gv = gp(c);
                           for (std::size_t i = 0; i < n; ++i)
                             std::copy_n(gv + i * count, count,
                                         d + i * f + start);
                         };
                       });
    return true;
  }

  bool bwd_loss(const OpRecord& r) {
    SrcRef p;
    if (!resolve(r.in[0], &p)) return false;
    const std::size_t n = r.in[0]->value.size();
    const OpKind kind = r.kind;
    const float tau = r.scalar;
    // backward() seeds the loss gradient with exactly 1.0f, so the per-
    // element factor is a capture-time constant (1.0f * 2.0f == 2.0f).
    const float g = kind == OpKind::kMseLoss
                        ? 2.0f / static_cast<float>(n)
                        : 1.0f / static_cast<float>(n);
    EmitSpec spec;
    spec.name = "bwd_loss";
    add_in(spec, p);
    spec.inputs.push_back(target_);
    ValueId slot = 0;
    const bool first = begin_contrib(r.in[0], spec, &slot);
    builder_.emit(
        std::move(spec),
        [p, tgt = target_, slot, first, n, kind, tau,
         g](const Resolver& rv) -> Operation {
          auto pp = bind_src(rv, p);
          auto tp = rv.cptr(tgt);
          auto dp = rv.ptr(slot);
          return [=](const ExecContext& c) {
            const float* pv = pp(c);
            const float* tv = tp(c);
            float* o = dp(c);
            for (std::size_t i = 0; i < n; ++i) {
              float e;
              if (kind == OpKind::kMseLoss) {
                e = g * (pv[i] - tv[i]);
              } else if (kind == OpKind::kMaeLoss) {
                const float dd = pv[i] - tv[i];
                e = dd > 0.0f ? g : (dd < 0.0f ? -g : 0.0f);
              } else {
                const float diff = tv[i] - pv[i];
                e = diff > 0.0f ? -tau * g
                                : (diff < 0.0f ? (1.0f - tau) * g : 0.0f);
              }
              if (first)
                o[i] = e;
              else
                o[i] += e;
            }
          };
        });
    return true;
  }

 public:
  std::size_t value_floats_of_target_ = 0;  // set by compile_trace

 private:
  const TapeTrace& trace_;
  NodePtr input_;
  NodePtr loss_;
  const std::vector<Variable>& params_;
  GraphBuilder builder_;
  std::shared_ptr<PackRegistry> preg_;
  ValueId target_ = 0;
  bool loss_emitted_ = false;
  std::unordered_map<const Node*, ValueId> val_;
  std::unordered_map<const Node*, const OpRecord*> rec_of_;
  std::unordered_map<const Node*, ValueId> norms_of_;
  std::unordered_map<const Node*, ValueId> mask_of_;
  std::unordered_map<const Node*, GSlot> gslot_;
  std::unordered_map<ValueId, std::size_t> floats_;
  std::map<std::pair<const Node*, bool>, std::size_t> pack_idx_;
  std::map<std::array<std::size_t, 6>, ValueId> patches_of_;
  std::unordered_map<ValueId, ValueId> dyg_of_;
};

std::shared_ptr<const TrainProgram> compile_trace(
    const TapeTrace& trace, const NodePtr& input, const NodePtr& loss,
    const std::vector<Variable>& params,
    const std::vector<std::size_t>& offsets, std::size_t target_floats) {
  Compiler compiler(trace, input, loss, params, offsets, target_floats);
  compiler.value_floats_of_target_ = target_floats;
  std::shared_ptr<const Executable> exec = compiler.run();
  if (exec == nullptr) return nullptr;
  auto prog = std::make_shared<TrainProgram>();
  prog->exec = std::move(exec);
  return prog;
}

/// The PlannedStep implementation behind make_planned_step. One instance per
/// fit() call; shape-keyed program cache with weights_version invalidation.
class TrainStep final : public opt::PlannedStep {
 public:
  TrainStep(nn::Module& model, opt::ForwardFn forward, opt::Adam& adam,
            const opt::TrainOptions& options)
      : model_(model),
        forward_(std::move(forward)),
        adam_(adam),
        params_(adam.params()),
        loss_(options.loss),
        tau_(options.pinball_tau),
        clip_norm_(options.clip_norm),
        version_(model.weights_version()),
        slab_(adam.slab_floats(), 0.0f) {}

  bool step(Tensor x, const Tensor& y, float* loss_out) override {
    if (!planning_enabled()) return false;
    if (x.rank() != 3) return false;
    // One invalidation mechanism for every out-of-plan weight mutation:
    // best-epoch restore, checkpoint load and hot-swap all bump the model's
    // weights version, which drops every cached program (and with it the
    // prepacked operands and the captured RNG stream structure).
    const std::uint64_t v = model_.weights_version();
    if (v != version_) {
      programs_.clear();
      version_ = v;
    }
    const std::array<std::size_t, 3> key{x.dim(0), x.dim(1), x.dim(2)};
    auto it = programs_.find(key);
    if (it != programs_.end()) {
      if (it->second == nullptr) {  // shape pinned to the eager path
        if (obs::enabled()) train_metrics().fallbacks.add(1);
        return false;
      }
      run_program(*it->second, x, y, loss_out);
      finish_from_slab();
      if (obs::enabled()) train_metrics().replays.add(1);
      return true;
    }
    return capture_step(key, x, y, loss_out);
  }

  void on_epoch_end() override {
    // The eager tape churned activation/gradient buffers through the pool;
    // planned replays only draw the arena. Return the excess to the OS.
    pool::trim(pool::kMaxCachedBytes / 2);
  }

 private:
  void run_program(const TrainProgram& prog, const Tensor& x, const Tensor& y,
                   float* loss_out) {
    pool::Scratch arena(prog.exec->arena_floats());
    float loss = 0.0f;
    ExecContext ctx;
    ctx.input = x.raw();
    ctx.output = &loss;
    ctx.arena = arena.data();
    ctx.target = y.raw();
    ctx.grads = slab_.data();
    // RPTCN_PLAN_PROFILE=1 buckets replay time by step name on stderr every
    // 40 replays — this is how the relu-backward branch storm and the
    // duplicated im2col passes were found; kept for the next hunt.
    static const bool prof = std::getenv("RPTCN_PLAN_PROFILE") != nullptr;
    if (prof) {
      static auto* acc =
          new std::map<std::string, std::pair<double, std::size_t>>();
      for (const TensorOp& s : prog.exec->steps()) {
        const auto t0 = std::chrono::steady_clock::now();
        s.op(ctx);
        const auto t1 = std::chrono::steady_clock::now();
        auto& e = (*acc)[s.name];
        e.first += std::chrono::duration<double, std::micro>(t1 - t0).count();
        e.second += 1;
      }
      static std::size_t runs = 0;
      if (++runs % 40 == 0) {
        double total = 0.0;
        for (const auto& kv : *acc) total += kv.second.first;
        std::fprintf(stderr, "[plan-profile] %zu replays, total %.1f us\n",
                     runs, total);
        for (const auto& kv : *acc)
          std::fprintf(stderr, "  %-18s %10.1f us  %6zu calls  %5.1f%%\n",
                       kv.first.c_str(), kv.second.first, kv.second.second,
                       100.0 * kv.second.first / total);
      }
    } else {
      for (const TensorOp& s : prog.exec->steps()) s.op(ctx);
    }
    *loss_out = loss;
    if (obs::enabled())
      train_metrics().arena_bytes.set_max(
          static_cast<double>(prog.exec->arena_floats() * sizeof(float)));
  }

  void finish_from_slab() {
    if (clip_norm_ > 0.0f)
      opt::clip_grad_slab(slab_.data(), params_, adam_.offsets(), clip_norm_);
    adam_.step_planned(slab_.data());
  }

  /// Cache miss: run the eager step under a trace (the probe IS this batch's
  /// training step), compile, and accept the program only if replaying it on
  /// the very same batch reproduces the loss and every parameter gradient
  /// bit-for-bit.
  bool capture_step(const std::array<std::size_t, 3>& key, const Tensor& x,
                    const Tensor& y, float* loss_out) {
    ag::trace::TapeTrace trace;
    adam_.zero_grad();
    Variable xv(x);
    Variable loss;
    {
      ag::trace::Recording rec(&trace);
      const Variable pred = forward_(xv);
      loss = opt::apply_loss(pred, y, loss_, tau_);
      loss.backward();
    }
    const float eager_loss = loss.value().item();

    std::shared_ptr<const TrainProgram> prog =
        compile_trace(trace, xv.node(), loss.node(), params_, adam_.offsets(),
                      y.size());
    bool ok = prog != nullptr;
    if (ok) {
      // Rewind each distinct dropout stream to its pre-probe state; the
      // replay then re-draws the identical mask sequence and leaves the
      // streams exactly where the probe left them.
      std::vector<std::pair<Rng*, Rng>> streams;
      for (const ag::trace::OpRecord& r : trace.ops) {
        if (r.rng == nullptr) continue;
        bool seen = false;
        for (const auto& s : streams)
          if (s.first == r.rng) {
            seen = true;
            break;
          }
        if (!seen) streams.emplace_back(r.rng, r.rng_before);
      }
      for (const auto& s : streams) *s.first = s.second;
      float replay_loss = 0.0f;
      run_program(*prog, x, y, &replay_loss);
      ok = std::memcmp(&replay_loss, &eager_loss, sizeof(float)) == 0;
      for (std::size_t i = 0; ok && i < params_.size(); ++i) {
        const Tensor& grad = params_[i].grad();
        ok = grad.size() == params_[i].size() &&
             std::memcmp(grad.raw(), slab_.data() + adam_.offsets()[i],
                         grad.size() * sizeof(float)) == 0;
      }
    }
    if (ok) {
      programs_[key] = prog;
      // The slab just proved bit-identical to the node gradients; finish
      // through it so capture batches take the same code path as replays.
      finish_from_slab();
      adam_.zero_grad();  // release the probe's node gradient tensors
      if (obs::enabled()) train_metrics().captures.add(1);
    } else {
      programs_[key] = nullptr;  // never try this shape again
      if (clip_norm_ > 0.0f) opt::clip_grad_norm(params_, clip_norm_);
      adam_.step();
      if (obs::enabled()) train_metrics().fallbacks.add(1);
    }
    *loss_out = eager_loss;
    return true;
  }

  nn::Module& model_;
  opt::ForwardFn forward_;
  opt::Adam& adam_;
  std::vector<Variable> params_;
  opt::Loss loss_;
  float tau_;
  float clip_norm_;
  std::uint64_t version_;
  std::map<std::array<std::size_t, 3>, std::shared_ptr<const TrainProgram>>
      programs_;
  std::vector<float> slab_;
};

}  // namespace

std::shared_ptr<opt::PlannedStep> make_planned_step(
    nn::Module& model, const opt::ForwardFn& forward, opt::Optimizer& optimizer,
    const opt::TrainOptions& options) {
  if (!planning_enabled()) return nullptr;
  auto* adam = dynamic_cast<opt::Adam*>(&optimizer);
  if (adam == nullptr) return nullptr;
  // The slab layout and the clip-norm reduction both follow the optimizer's
  // parameter order; require it to be exactly the model's so an eager clip
  // over model.parameters() and a slab clip agree bit-for-bit.
  const std::vector<Variable> model_params = model.parameters();
  const std::vector<Variable>& opt_params = adam->params();
  if (model_params.size() != opt_params.size()) return nullptr;
  for (std::size_t i = 0; i < model_params.size(); ++i)
    if (model_params[i].node() != opt_params[i].node()) return nullptr;
  return std::make_shared<TrainStep>(model, forward, *adam, options);
}

}  // namespace rptcn::graph
