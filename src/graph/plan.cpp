#include "graph/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"

namespace rptcn::graph {

namespace {

bool env_disabled() {
  const char* v = std::getenv("RPTCN_DISABLE_PLAN");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& planning_flag() {
  static std::atomic<bool> flag{!env_disabled()};
  return flag;
}

struct GraphMetrics {
  obs::Counter& captures = obs::metrics().counter("graph/captures");
  obs::Counter& cache_hits = obs::metrics().counter("graph/plan_cache_hits");
  obs::Counter& cache_misses =
      obs::metrics().counter("graph/plan_cache_misses");
  obs::Counter& replays = obs::metrics().counter("graph/replays");
  obs::Gauge& arena_bytes = obs::metrics().gauge("graph/arena_bytes");
  obs::Histogram& capture_seconds =
      obs::metrics().histogram("graph/capture_seconds");
};

GraphMetrics& graph_metrics() {
  static GraphMetrics* m = new GraphMetrics();
  return *m;
}

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Arena blocks are 16-float (64-byte) aligned so every planned value
/// starts on a cache line and SIMD loops see aligned rows.
constexpr std::size_t kArenaAlignFloats = 16;

std::size_t align_up(std::size_t n) {
  return (n + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

std::size_t shape_floats(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<std::size_t>());
}

std::string shape_string(const std::vector<std::size_t>& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

}  // namespace

bool planning_enabled() {
  return planning_flag().load(std::memory_order_relaxed);
}

void set_planning_enabled(bool on) {
  planning_flag().store(on, std::memory_order_relaxed);
}

// -- Executable ---------------------------------------------------------------

Executable::Executable(std::vector<TensorOp> steps,
                       std::vector<ValueInfo> values,
                       std::vector<std::size_t> input_shape,
                       std::vector<std::size_t> output_shape,
                       std::size_t arena_floats)
    : steps_(std::move(steps)),
      values_(std::move(values)),
      input_shape_(std::move(input_shape)),
      output_shape_(std::move(output_shape)),
      arena_floats_(arena_floats) {}

Tensor Executable::run(const Tensor& x) const {
  RPTCN_CHECK(x.shape() == input_shape_,
              "planned executable expects input "
                  << shape_string(input_shape_) << ", got "
                  << x.shape_string());
  Tensor out(output_shape_);
  // Per-call arena from the thread-local pool: concurrent replays of the
  // same Executable never share intermediate storage.
  pool::Scratch arena(arena_floats_);
  ExecContext ctx{x.raw(), out.raw(), arena.data()};
  for (const TensorOp& step : steps_) step.op(ctx);
  if (obs::enabled()) {
    graph_metrics().replays.add(1);
    graph_metrics().arena_bytes.set_max(
        static_cast<double>(arena_floats_ * sizeof(float)));
  }
  return out;
}

// -- Resolver -----------------------------------------------------------------

std::function<float*(const ExecContext&)> Resolver::ptr(ValueId v) const {
  const ValueInfo& info = (*values_)[v];
  const std::size_t off = info.off;
  RPTCN_CHECK(info.loc != Loc::kInput, "planned graph: input is read-only");
  RPTCN_CHECK(info.loc != Loc::kTarget, "planned graph: target is read-only");
  if (info.loc == Loc::kOutput)
    return [off](const ExecContext& c) { return c.output + off; };
  if (info.loc == Loc::kGrads)
    return [off](const ExecContext& c) { return c.grads + off; };
  return [off](const ExecContext& c) { return c.arena + off; };
}

std::function<const float*(const ExecContext&)> Resolver::cptr(
    ValueId v) const {
  const ValueInfo& info = (*values_)[v];
  const std::size_t off = info.off;
  switch (info.loc) {
    case Loc::kInput:
      return [off](const ExecContext& c) {
        return static_cast<const float*>(c.input + off);
      };
    case Loc::kOutput:
      return [off](const ExecContext& c) {
        return static_cast<const float*>(c.output + off);
      };
    case Loc::kTarget:
      return [off](const ExecContext& c) {
        return static_cast<const float*>(c.target + off);
      };
    case Loc::kGrads:
      return [off](const ExecContext& c) {
        return static_cast<const float*>(c.grads + off);
      };
    case Loc::kArena:
    default:
      return [off](const ExecContext& c) {
        return static_cast<const float*>(c.arena + off);
      };
  }
}

// -- GraphBuilder -------------------------------------------------------------

GraphBuilder::GraphBuilder(std::vector<std::size_t> input_shape,
                           std::vector<std::size_t> output_shape)
    : input_shape_(std::move(input_shape)),
      output_shape_(std::move(output_shape)) {
  values_.push_back(
      {Loc::kInput, 0, shape_floats(input_shape_), 0, 0, false});
  input_id_ = 0;
  values_.push_back(
      {Loc::kOutput, 0, shape_floats(output_shape_), 0, 0, false});
  output_id_ = 1;
}

ValueId GraphBuilder::input_value() { return input_id_; }
ValueId GraphBuilder::output_value() { return output_id_; }

ValueId GraphBuilder::value(std::size_t floats) {
  RPTCN_CHECK(floats > 0, "planned value must be non-empty");
  values_.push_back({Loc::kArena, 0, floats, kNpos, 0, false});
  return values_.size() - 1;
}

ValueId GraphBuilder::target_value(std::size_t floats) {
  if (target_id_ != kNoValue) {
    RPTCN_CHECK(values_[target_id_].floats == floats,
                "target_value size changed within one program");
    return target_id_;
  }
  RPTCN_CHECK(floats > 0, "target value must be non-empty");
  values_.push_back({Loc::kTarget, 0, floats, 0, 0, false});
  target_id_ = values_.size() - 1;
  return target_id_;
}

ValueId GraphBuilder::grads_value(std::size_t off, std::size_t floats) {
  RPTCN_CHECK(floats > 0, "grads value must be non-empty");
  values_.push_back({Loc::kGrads, off, floats, 0, 0, false});
  return values_.size() - 1;
}

void GraphBuilder::emit(EmitSpec spec, MakeFn make) {
  for (ValueId v : spec.inputs)
    RPTCN_CHECK(v < values_.size(), "emit: bad input id");
  for (ValueId v : spec.outputs)
    RPTCN_CHECK(v < values_.size(), "emit: bad output id");
  for (ValueId v : spec.scratch)
    RPTCN_CHECK(v < values_.size(), "emit: bad scratch id");
  specs_.push_back(std::move(spec));
  makes_.push_back(std::move(make));
}

std::shared_ptr<const Executable> GraphBuilder::finish() {
  const std::size_t n_steps = specs_.size();
  const std::size_t n_vals = values_.size();

  // 1. Liveness: def = first defining step (output or scratch), last = last
  // step touching the value at all. In-place mutation (LSTM h/c listed as
  // outputs of several steps) keeps the first def and extends last.
  for (std::size_t v = 2; v < n_vals; ++v) values_[v].def = kNpos;
  for (std::size_t s = 0; s < n_steps; ++s) {
    const EmitSpec& spec = specs_[s];
    for (ValueId v : spec.outputs) {
      if (values_[v].def == kNpos) values_[v].def = s;
      values_[v].last = s;
    }
    for (ValueId v : spec.scratch) {
      if (values_[v].def == kNpos) values_[v].def = s;
      values_[v].last = s;
    }
    for (ValueId v : spec.inputs) {
      RPTCN_CHECK(values_[v].loc != Loc::kArena || values_[v].def != kNpos,
                  "step " << s << " (" << spec.name
                          << ") reads value before any definition");
      RPTCN_CHECK(values_[v].loc != Loc::kArena || values_[v].def <= s,
                  "step " << s << " reads a not-yet-defined value");
      values_[v].last = std::max(values_[v].last, s);
    }
  }

  // 2. Alias resolution. outputs[0] may take over alias_target's block when
  // the target (and everything already sharing its block) dies at this very
  // step — the op body tolerates in == out. alias_root holds the block
  // owner; group_last tracks the latest use across the whole share group.
  std::vector<ValueId> alias_root(n_vals, EmitSpec::kNoAlias);
  std::vector<std::size_t> group_last(n_vals, 0);
  for (std::size_t v = 0; v < n_vals; ++v) group_last[v] = values_[v].last;
  for (std::size_t s = 0; s < n_steps; ++s) {
    const EmitSpec& spec = specs_[s];
    if (spec.alias_target == EmitSpec::kNoAlias) continue;
    RPTCN_CHECK(!spec.outputs.empty(), "alias emit without outputs");
    const ValueId out = spec.outputs[0];
    const ValueId tgt = spec.alias_target;
    const ValueId root =
        alias_root[tgt] == EmitSpec::kNoAlias ? tgt : alias_root[tgt];
    const bool legal = values_[out].loc == Loc::kArena &&
                       values_[tgt].loc == Loc::kArena &&
                       values_[out].def == s && group_last[root] <= s &&
                       values_[root].floats >= values_[out].floats &&
                       alias_root[out] == EmitSpec::kNoAlias && out != root;
    if (!legal) continue;  // falls back to its own block
    alias_root[out] = root;
    values_[out].aliased = true;
    group_last[root] = std::max(group_last[root], values_[out].last);
    values_[root].last = std::max(values_[root].last, values_[out].last);
  }

  // 3. Arena assignment for block owners: linear scan over steps with a
  // first-fit free list (offset-sorted, coalescing). Values dying at step
  // s-1 are freed before values defined at step s are placed.
  std::vector<std::vector<ValueId>> alloc_at(n_steps);
  std::vector<std::vector<ValueId>> free_after(n_steps);
  for (std::size_t v = 0; v < n_vals; ++v) {
    if (values_[v].loc != Loc::kArena || values_[v].aliased) continue;
    RPTCN_CHECK(values_[v].def != kNpos, "arena value never defined");
    alloc_at[values_[v].def].push_back(v);
    free_after[values_[v].last].push_back(v);
  }
  struct Block {
    std::size_t off, size;
  };
  std::vector<Block> free_list;  // sorted by off, coalesced
  const auto insert_free = [&free_list](std::size_t off, std::size_t size) {
    auto it = std::lower_bound(
        free_list.begin(), free_list.end(), off,
        [](const Block& b, std::size_t o) { return b.off < o; });
    it = free_list.insert(it, {off, size});
    if (it + 1 != free_list.end() && it->off + it->size == (it + 1)->off) {
      it->size += (it + 1)->size;
      free_list.erase(it + 1);
    }
    if (it != free_list.begin() && (it - 1)->off + (it - 1)->size == it->off) {
      (it - 1)->size += it->size;
      free_list.erase(it);
    }
  };
  std::size_t arena_floats = 0;
  for (std::size_t s = 0; s < n_steps; ++s) {
    if (s > 0)
      for (ValueId v : free_after[s - 1])
        insert_free(values_[v].off, align_up(values_[v].floats));
    for (ValueId v : alloc_at[s]) {
      const std::size_t sz = align_up(values_[v].floats);
      bool placed = false;
      for (auto it = free_list.begin(); it != free_list.end(); ++it) {
        if (it->size < sz) continue;
        values_[v].off = it->off;
        if (it->size == sz) {
          free_list.erase(it);
        } else {
          it->off += sz;
          it->size -= sz;
        }
        placed = true;
        break;
      }
      if (placed) continue;
      // Grow the arena; absorb a trailing free block so growth is tight.
      std::size_t off = arena_floats;
      if (!free_list.empty() &&
          free_list.back().off + free_list.back().size == arena_floats) {
        off = free_list.back().off;
        free_list.pop_back();
      }
      values_[v].off = off;
      arena_floats = off + sz;
    }
  }
  for (std::size_t v = 0; v < n_vals; ++v)
    if (values_[v].aliased) values_[v].off = values_[alias_root[v]].off;

  // 4. Safety net: no two concurrently-live arena values may overlap unless
  // they deliberately share one block. O(V^2) but capture-time only.
  for (std::size_t a = 0; a < n_vals; ++a) {
    if (values_[a].loc != Loc::kArena) continue;
    const ValueId ra = values_[a].aliased ? alias_root[a] : a;
    for (std::size_t b = a + 1; b < n_vals; ++b) {
      if (values_[b].loc != Loc::kArena) continue;
      const ValueId rb = values_[b].aliased ? alias_root[b] : b;
      if (ra == rb) continue;
      const bool live_overlap =
          values_[a].def <= values_[b].last && values_[b].def <= values_[a].last;
      if (!live_overlap) continue;
      const bool disjoint =
          values_[a].off + values_[a].floats <= values_[b].off ||
          values_[b].off + values_[b].floats <= values_[a].off;
      RPTCN_CHECK(disjoint, "arena planner bug: values " << a << " and " << b
                                                         << " overlap");
    }
  }

  // 5. Bake the closures against the final offsets and freeze.
  Resolver resolver(&values_);
  std::vector<TensorOp> steps;
  steps.reserve(n_steps);
  for (std::size_t s = 0; s < n_steps; ++s)
    steps.push_back(
        {makes_[s](resolver), specs_[s].name, specs_[s].inputs.size()});
  return std::make_shared<const Executable>(
      std::move(steps), std::move(values_), std::move(input_shape_),
      std::move(output_shape_), arena_floats);
}

// -- PlanCache ----------------------------------------------------------------

PlanCache::PlanCache(CaptureFn capture) : capture_(std::move(capture)) {
  RPTCN_CHECK(capture_ != nullptr, "PlanCache needs a capture function");
}

std::shared_ptr<const Executable> PlanCache::get(std::size_t n, std::size_t f,
                                                 std::size_t t) {
  const std::array<std::size_t, 3> key{n, f, t};
  // Capture runs under the lock: rare (once per shape), and serialising it
  // means concurrent first requests for one shape plan exactly once.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    graph_metrics().cache_hits.add(1);
    return it->second;
  }
  graph_metrics().cache_misses.add(1);
  Stopwatch sw;
  std::shared_ptr<const Executable> exec = capture_(n, f, t);
  RPTCN_CHECK(exec != nullptr, "capture returned no executable");
  graph_metrics().captures.add(1);
  if (obs::enabled())
    graph_metrics().capture_seconds.record(sw.elapsed_seconds());
  if (order_.size() >= kMaxPlans) {
    plans_.erase(order_.front());
    order_.erase(order_.begin());
  }
  plans_.emplace(key, exec);
  order_.push_back(key);
  return exec;
}

std::vector<std::array<std::size_t, 3>> PlanCache::shapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.size();
}

}  // namespace rptcn::graph
