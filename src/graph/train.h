// Planned training step: capture forward + backward + Adam into one
// JIT-lite program (ISSUE 8).
//
// The eager training loop rebuilds the autograd tape every batch: node and
// closure allocations, shape checks, dispatch branches, and a buffer-pool
// round trip per intermediate and per gradient. For a fixed batch shape the
// step is completely static, so all of that is capture-time work:
//
//  * probe   — run ONE eager step under an ag::trace::Recording. The probe
//    IS that batch's training step (no duplicated work on fallback); the
//    trace records every forward op and the backward closures' firing order.
//  * compile — re-emit the trace as flat TensorOps against a GraphBuilder:
//    forward values and intermediate gradients share one liveness-planned
//    arena; parameter gradients land in the Adam optimizer's contiguous
//    slab at its own offsets; weight-side GEMM operands are prepacked once
//    per replay and reused across the step (LSTM gate weights are consumed
//    once per timestep in forward and again in backward).
//  * verify  — rewind the dropout RNG streams to their pre-probe state,
//    replay the program on the probe batch, and demand bitwise equality of
//    the loss and of every parameter gradient against the tape's. Only a
//    program that passes is cached; a mismatch pins the shape to the eager
//    path.
//  * replay  — each following batch runs the flat program, then
//    clip_grad_slab + Adam::step_planned over the slab. Bit-identical loss
//    curves vs the eager loop are the contract (tests/test_graph_train.cpp).
//
// Invalidation: nn::Module::weights_version() is recorded at capture and
// checked every step. Out-of-plan parameter mutations (checkpoint restore,
// best-epoch rollback, hot-swap loads) bump it and drop every cached
// program — prepacked operands and captured RNG stream structure die with
// them. In-plan Adam updates do not bump it; packs are refreshed from the
// live parameter tensors at the top of every replay instead.
//
// Escape hatches: RPTCN_DISABLE_PLAN=1 (or set_planning_enabled(false))
// makes step() decline every batch; NnTrainConfig.planned_step=false keeps
// the factory from being wired at all.
#pragma once

#include <memory>

#include "nn/module.h"
#include "opt/trainer.h"

namespace rptcn::graph {

/// Build the planned training step for one fit() call, or nullptr to train
/// eagerly. Requirements: `optimizer` is an opt::Adam whose parameter list
/// matches model.parameters() element-for-element (the slab layout and the
/// clip reduction order both follow it), and planning is enabled. Wired into
/// opt::TrainOptions::planned_step_factory by models::fit_net.
std::shared_ptr<opt::PlannedStep> make_planned_step(
    nn::Module& model, const opt::ForwardFn& forward, opt::Optimizer& optimizer,
    const opt::TrainOptions& options);

}  // namespace rptcn::graph
