// Capture: trace one snapshot forward into a planned Executable.
//
// Each capture overload walks the same computation the eager runner in
// snapshot.cpp performs for input shape [N, F, T], but instead of executing
// it emits TensorOps against a GraphBuilder. The emitted ops re-use the
// eager kernels (or the strided entry points that share their loop bodies),
// make every shape-dependent dispatch decision at capture time with the
// same rules the eager path applies per call, and keep float summation
// orders unchanged — so a replay is bit-identical to the eager forward.
//
// What replays save over the eager runner:
//  * one arena instead of a pool round-trip per intermediate (~2-5x fewer
//    allocator interactions, planned liveness shares blocks);
//  * 3-D activations kept channel-major, so the conv GEMM writes its
//    output panel directly instead of scattering per (sample, channel);
//  * fused epilogues: conv+relu, add+relu (in place, aliased), softmax in
//    place, attention-weighted summary in one pass;
//  * LSTM gate weights prepacked into the blocked GEMM's panel layout
//    (gemm_pack_b) when the shape runs the blocked kernel;
//  * zero per-call shape checks or dispatch branches.
//
// Dispatch pinning: CaptureOptions.dispatch_n plays the role of
// ag::fwd::conv1d's dispatch_n. Serving captures use 1 (batch-invariant
// coalescing, matching serve::Session); trainer eval captures use 0 so the
// plan matches net.forward()'s true-batch dispatch.
#pragma once

#include "graph/plan.h"
#include "graph/snapshot.h"

namespace rptcn::graph {

struct CaptureOptions {
  /// Batch-size override for kernel dispatch decisions (conv GEMM-vs-direct
  /// cutoffs): 1 pins the N=1 choice (serving), 0 uses the true N
  /// (training-style eval). Chunking always uses the true N.
  std::size_t dispatch_n = 1;
};

// -- capture one forward for input [n, f, t] ---------------------------------
std::shared_ptr<const Executable> capture(const RptcnSnap& snap, std::size_t n,
                                          std::size_t f, std::size_t t,
                                          const CaptureOptions& opts = {});
std::shared_ptr<const Executable> capture(const LstmNetSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts = {});
std::shared_ptr<const Executable> capture(const BiLstmNetSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts = {});
std::shared_ptr<const Executable> capture(const CnnLstmSnap& snap,
                                          std::size_t n, std::size_t f,
                                          std::size_t t,
                                          const CaptureOptions& opts = {});

// -- plan-cache factories -----------------------------------------------------
// The returned CaptureFn owns a deep copy of the snapshot (weights baked
// into the closures it emits), so the cache outlives the snapshot object.
CaptureFn make_capture_fn(RptcnSnap snap, const CaptureOptions& opts = {});
CaptureFn make_capture_fn(LstmNetSnap snap, const CaptureOptions& opts = {});
CaptureFn make_capture_fn(BiLstmNetSnap snap, const CaptureOptions& opts = {});
CaptureFn make_capture_fn(CnnLstmSnap snap, const CaptureOptions& opts = {});

}  // namespace rptcn::graph
