#include "graph/snapshot.h"

#include "autograd/ops.h"
#include "nn/cnn_lstm.h"
#include "nn/lstm.h"
#include "nn/rptcn_net.h"
#include "tensor/tensor_ops.h"

namespace rptcn::graph {

namespace {

ConvSnap snap_conv(const nn::Conv1d& conv) {
  ConvSnap s;
  // Fold w = g * v/||v|| now, with the exact arithmetic of ag::weight_norm,
  // so serving never re-normalises.
  s.w = conv.options().weight_norm
            ? ag::fwd::weight_norm(conv.weight_v().value(), conv.gain().value())
            : conv.weight_v().value();
  if (conv.bias().defined()) s.b = conv.bias().value();
  s.dilation = conv.options().dilation;
  s.left_pad = conv.options().causal ? -1 : 0;
  return s;
}

LinearSnap snap_linear(const nn::Linear& layer) {
  LinearSnap s;
  s.w = layer.weight().value();
  if (layer.bias().defined()) s.b = layer.bias().value();
  return s;
}

LstmSnap snap_lstm(const nn::Lstm& lstm) {
  LstmSnap s;
  s.w = lstm.gate_weights().value();
  s.b = lstm.gate_biases().value();
  s.hidden = lstm.hidden_size();
  return s;
}

/// Pinned-dispatch conv forward: dispatch_n=1 keeps the kernel choice (and
/// with it the float summation order) identical for every batch size.
Tensor conv_forward(const ConvSnap& s, const Tensor& x) {
  return ag::fwd::conv1d(x, s.w, s.b.empty() ? nullptr : &s.b, s.dilation,
                         s.left_pad, /*dispatch_n=*/1);
}

Tensor linear_forward(const LinearSnap& s, const Tensor& x) {
  return ag::fwd::linear(x, s.w, s.b.empty() ? nullptr : &s.b);
}

/// Mirror of nn::Lstm::forward: fused gate GEMM per step, [N,F,T] -> [N,H].
Tensor lstm_forward(const LstmSnap& s, const Tensor& x) {
  const std::size_t n = x.dim(0), t_len = x.dim(2), hid = s.hidden;
  Tensor h = Tensor::zeros({n, hid});
  Tensor c = Tensor::zeros({n, hid});
  for (std::size_t t = 0; t < t_len; ++t) {
    const Tensor xt = ag::fwd::time_slice(x, t);    // [N, F]
    const Tensor xh = ag::fwd::concat_cols(xt, h);  // [N, F+H]
    const Tensor pre = ag::fwd::linear(xh, s.w, &s.b);  // [N, 4H]
    const Tensor i = rptcn::sigmoid(ag::fwd::slice_cols(pre, 0, hid));
    const Tensor f = rptcn::sigmoid(ag::fwd::slice_cols(pre, hid, hid));
    const Tensor g = rptcn::tanh_t(ag::fwd::slice_cols(pre, 2 * hid, hid));
    const Tensor o = rptcn::sigmoid(ag::fwd::slice_cols(pre, 3 * hid, hid));
    c = rptcn::add(rptcn::mul(f, c), rptcn::mul(i, g));
    h = rptcn::mul(o, rptcn::tanh_t(c));
  }
  return h;
}

}  // namespace

RptcnSnap snapshot(const nn::RptcnNet& net) {
  RptcnSnap s;
  for (const auto& block : net.tcn().blocks()) {
    BlockSnap b;
    b.conv1 = snap_conv(block->conv1());
    b.conv2 = snap_conv(block->conv2());
    if (block->shortcut() != nullptr) b.shortcut = snap_conv(*block->shortcut());
    s.blocks.push_back(std::move(b));
  }
  if (net.fc() != nullptr) s.fc = snap_conv(*net.fc());
  if (net.attention() != nullptr)
    s.attention_scorer = snap_conv(net.attention()->scorer());
  s.head = snap_linear(net.head());
  return s;
}

LstmNetSnap snapshot(const nn::LstmNet& net) {
  return {snap_lstm(net.lstm()), snap_linear(net.head())};
}

BiLstmNetSnap snapshot(const nn::BiLstmNet& net) {
  return {snap_lstm(net.forward_lstm()), snap_lstm(net.backward_lstm()),
          snap_linear(net.head())};
}

CnnLstmSnap snapshot(const nn::CnnLstm& net) {
  return {snap_conv(net.conv()), snap_lstm(net.lstm()),
          snap_linear(net.head())};
}

Tensor forward(const RptcnSnap& snap, const Tensor& x) {
  Tensor h = x;
  for (const BlockSnap& block : snap.blocks) {
    Tensor f = rptcn::relu(conv_forward(block.conv1, h));
    f = rptcn::relu(conv_forward(block.conv2, f));
    const Tensor res =
        block.shortcut ? conv_forward(*block.shortcut, h) : h;
    h = rptcn::relu(rptcn::add(res, f));  // eq. (5)
  }
  if (snap.fc) h = rptcn::relu(conv_forward(*snap.fc, h));
  Tensor summary;
  const std::size_t t_last = h.dim(2) - 1;
  if (snap.attention_scorer) {
    const Tensor logits = conv_forward(*snap.attention_scorer, h);
    const Tensor a = rptcn::softmax_lastdim(logits);       // eq. (7)
    const Tensor g = ag::fwd::mul_bcast_channel(a, h);     // eq. (8)
    summary = rptcn::add(ag::fwd::sum_lastdim(g), ag::fwd::time_slice(h, t_last));
  } else {
    summary = ag::fwd::time_slice(h, t_last);
  }
  return linear_forward(snap.head, summary);
}

Tensor forward(const LstmNetSnap& snap, const Tensor& x) {
  return linear_forward(snap.head, lstm_forward(snap.lstm, x));
}

Tensor forward(const BiLstmNetSnap& snap, const Tensor& x) {
  const Tensor h_fwd = lstm_forward(snap.fwd, x);
  const Tensor h_bwd = lstm_forward(snap.bwd, ag::fwd::time_reverse(x));
  return linear_forward(snap.head, ag::fwd::concat_cols(h_fwd, h_bwd));
}

Tensor forward(const CnnLstmSnap& snap, const Tensor& x) {
  const Tensor h = rptcn::relu(conv_forward(snap.conv, x));
  return linear_forward(snap.head, lstm_forward(snap.lstm, h));
}

}  // namespace rptcn::graph
