// Read-only weight snapshots for tape-free serving.
//
// A snapshot copies a fitted network's parameters into plain Tensors —
// weight normalisation already folded into effective weights with the exact
// arithmetic of ag::weight_norm — plus the tape-free forward runners that
// consume them. The runners mirror the nets' eval-mode forward passes
// through the ag::fwd kernels (the same functions the autograd ops call for
// their forward values), so a snapshot forward is bit-identical to the
// autograd forward without allocating a single Variable.
//
// Batch invariance: every eval-mode op is per-row deterministic, except the
// Conv1d kAuto dispatch whose flop cutoff depends on the batch size N. The
// runners therefore pin every conv's dispatch to its N=1 decision
// (ag::fwd::conv1d dispatch_n=1), so a coalesced batch reproduces each
// single-window forward bit-for-bit.
#pragma once

#include <optional>
#include <vector>

#include "tensor/tensor.h"

namespace rptcn::nn {
class Conv1d;
class Lstm;
class Linear;
class RptcnNet;
class LstmNet;
class BiLstmNet;
class CnnLstm;
}  // namespace rptcn::nn

namespace rptcn::graph {

/// One Conv1d layer, weight norm pre-folded.
struct ConvSnap {
  Tensor w;  ///< [Cout, Cin, K] effective weight
  Tensor b;  ///< [Cout]; empty when the layer has no bias
  std::size_t dilation = 1;
  std::ptrdiff_t left_pad = -1;  ///< -1 = causal (K-1)*dilation
};

struct LinearSnap {
  Tensor w;  ///< [out, in]
  Tensor b;  ///< [out]; empty when the layer has no bias
};

struct LstmSnap {
  Tensor w;  ///< [4H, F+H] packed gate weights
  Tensor b;  ///< [4H] packed gate biases
  std::size_t hidden = 0;
};

/// One TCN residual block (Fig. 6): conv-relu-conv-relu + shortcut.
/// Dropout layers vanish at eval time and are not snapshotted.
struct BlockSnap {
  ConvSnap conv1;
  ConvSnap conv2;
  std::optional<ConvSnap> shortcut;  ///< 1x1 conv when channel counts differ
};

struct RptcnSnap {
  std::vector<BlockSnap> blocks;
  std::optional<ConvSnap> fc;                ///< 1x1 per-timestep FC
  std::optional<ConvSnap> attention_scorer;  ///< 1x1 scorer f_phi
  LinearSnap head;
};

struct LstmNetSnap {
  LstmSnap lstm;
  LinearSnap head;
};

struct BiLstmNetSnap {
  LstmSnap fwd;
  LstmSnap bwd;
  LinearSnap head;
};

struct CnnLstmSnap {
  ConvSnap conv;
  LstmSnap lstm;
  LinearSnap head;
};

// -- snapshot builders (deep-copy the current parameter values) --------------
RptcnSnap snapshot(const nn::RptcnNet& net);
LstmNetSnap snapshot(const nn::LstmNet& net);
BiLstmNetSnap snapshot(const nn::BiLstmNet& net);
CnnLstmSnap snapshot(const nn::CnnLstm& net);

// -- tape-free eval-mode forward runners: x [N, F, T] -> [N, horizon] --------
Tensor forward(const RptcnSnap& snap, const Tensor& x);
Tensor forward(const LstmNetSnap& snap, const Tensor& x);
Tensor forward(const BiLstmNetSnap& snap, const Tensor& x);
Tensor forward(const CnnLstmSnap& snap, const Tensor& x);

}  // namespace rptcn::graph
