#include "trace/characterize.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::trace {

std::vector<BoxplotStats> cpu_boxplots_per_interval(
    const ClusterSimulator& sim, std::size_t steps_per_interval) {
  RPTCN_CHECK(steps_per_interval > 0, "interval must be positive");
  const auto avg = sim.cluster_average_cpu();
  std::vector<BoxplotStats> out;
  for (std::size_t start = 0; start + 1 < avg.size();
       start += steps_per_interval) {
    const std::size_t end = std::min(start + steps_per_interval, avg.size());
    out.push_back(
        boxplot(std::span<const double>(avg.data() + start, end - start)));
  }
  return out;
}

double fraction_time_below(const ClusterSimulator& sim, double threshold) {
  const auto avg = sim.cluster_average_cpu();
  std::size_t below = 0;
  for (double v : avg)
    if (v < threshold) ++below;
  return static_cast<double>(below) / static_cast<double>(avg.size());
}

std::vector<double> fraction_machines_below_per_interval(
    const ClusterSimulator& sim, double threshold,
    std::size_t steps_per_interval) {
  RPTCN_CHECK(steps_per_interval > 0, "interval must be positive");
  const std::size_t steps = sim.config().duration_steps;
  const std::string cpu_name =
      indicator_names()[static_cast<std::size_t>(Indicator::kCpuUtilPercent)];
  std::vector<double> out;
  for (std::size_t start = 0; start + 1 < steps; start += steps_per_interval) {
    const std::size_t end = std::min(start + steps_per_interval, steps);
    std::size_t below = 0;
    for (std::size_t m = 0; m < sim.num_machines(); ++m) {
      const auto& cpu = sim.machine_trace(m).column(cpu_name);
      double s = 0.0;
      for (std::size_t t = start; t < end; ++t) s += cpu[t];
      const double avg = s / static_cast<double>(end - start) / 100.0;
      if (avg < threshold) ++below;
    }
    out.push_back(static_cast<double>(below) /
                  static_cast<double>(sim.num_machines()));
  }
  return out;
}

double fraction_machines_below(const ClusterSimulator& sim, double threshold) {
  const std::string cpu_name =
      indicator_names()[static_cast<std::size_t>(Indicator::kCpuUtilPercent)];
  std::size_t below = 0;
  for (std::size_t m = 0; m < sim.num_machines(); ++m) {
    const auto& cpu = sim.machine_trace(m).column(cpu_name);
    if (mean(cpu) / 100.0 < threshold) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(sim.num_machines());
}

std::vector<SeriesSummary> summarize_frame(const data::TimeSeriesFrame& frame) {
  std::vector<SeriesSummary> out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    SeriesSummary s;
    s.indicator = frame.name(c);
    s.mean = mean(col);
    s.stddev = stddev(col);
    s.min = min_value(col);
    s.max = max_value(col);
    s.lag1_autocorr = autocorrelation(col, 1);
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t mutation_points(const std::vector<double>& series, double jump,
                            std::size_t lag) {
  RPTCN_CHECK(lag >= 1, "lag must be >= 1");
  RPTCN_CHECK(series.size() > lag, "series too short");
  const double sd = stddev(series);
  if (sd == 0.0) return 0;
  std::size_t count = 0;
  for (std::size_t t = lag; t < series.size(); ++t)
    if (std::fabs(series[t] - series[t - lag]) > jump * sd) ++count;
  return count;
}

}  // namespace rptcn::trace
