// Loaders for the real Alibaba cluster-trace v2018 CSV schemas.
//
// The public trace (github.com/alibaba/clusterdata, cluster-trace-v2018)
// ships long-format CSVs without headers:
//
//   container_usage.csv:
//     container_id, machine_id, time_stamp, cpu_util_percent,
//     mem_util_percent, cpi, mem_gps, mpki, net_in, net_out, disk_io_percent
//   machine_usage.csv:
//     machine_id, time_stamp, cpu_util_percent, mem_util_percent, mem_gps,
//     mpki, net_in, net_out, disk_io_percent        (no cpi at machine level)
//
// These loaders group rows by entity id, sort by timestamp, and emit one
// TimeSeriesFrame per entity in the Table-I column layout used everywhere
// else in this library — missing machine-level cpi is filled with NaN so
// the cleaning stage (Algorithm 1 line 1) handles it uniformly.
//
// This repository's benches run on the built-in simulator (the raw trace is
// a multi-GB download); anyone holding the real files can load them here
// and run the identical pipeline.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "data/timeseries.h"

namespace rptcn::trace {

/// Entity id -> Table-I frame (rows sorted by time_stamp).
using EntityFrames = std::map<std::string, data::TimeSeriesFrame>;

/// Parse container_usage.csv content (11 headerless columns).
EntityFrames load_alibaba_container_usage(std::istream& in);
EntityFrames load_alibaba_container_usage_file(const std::string& path);

/// Parse machine_usage.csv content (9 headerless columns; cpi emitted as
/// NaN).
EntityFrames load_alibaba_machine_usage(std::istream& in);
EntityFrames load_alibaba_machine_usage_file(const std::string& path);

}  // namespace rptcn::trace
