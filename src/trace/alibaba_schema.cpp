#include "trace/alibaba_schema.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "trace/indicators.h"

namespace rptcn::trace {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

struct Row {
  double time_stamp = 0.0;
  IndicatorSample sample;
};

double parse_field(std::string_view field, std::size_t line_no) {
  const auto trimmed = trim(field);
  if (trimmed.empty()) return kNan;
  try {
    return std::stod(std::string(trimmed));
  } catch (const std::exception&) {
    RPTCN_CHECK(false, "unparseable numeric field '" << trimmed << "' at line "
                                                     << line_no);
  }
  return kNan;  // unreachable
}

EntityFrames assemble(std::map<std::string, std::vector<Row>>&& rows_by_id) {
  EntityFrames out;
  for (auto& [id, rows] : rows_by_id) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) {
                       return a.time_stamp < b.time_stamp;
                     });
    data::TimeSeriesFrame frame;
    for (std::size_t k = 0; k < kIndicatorCount; ++k) {
      std::vector<double> col;
      col.reserve(rows.size());
      for (const Row& r : rows) col.push_back(r.sample.values[k]);
      frame.add(indicator_names()[k], std::move(col));
    }
    out.emplace(id, std::move(frame));
  }
  return out;
}

}  // namespace

EntityFrames load_alibaba_container_usage(std::istream& in) {
  std::map<std::string, std::vector<Row>> by_id;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto t = trim(line);
    if (t.empty()) continue;
    const auto fields = split(t, ',');
    RPTCN_CHECK(fields.size() == 11,
                "container_usage row needs 11 fields, got " << fields.size()
                                                            << " at line "
                                                            << line_no);
    Row row;
    row.time_stamp = parse_field(fields[2], line_no);
    row.sample[Indicator::kCpuUtilPercent] = parse_field(fields[3], line_no);
    row.sample[Indicator::kMemUtilPercent] = parse_field(fields[4], line_no);
    row.sample[Indicator::kCpi] = parse_field(fields[5], line_no);
    row.sample[Indicator::kMemGps] = parse_field(fields[6], line_no);
    row.sample[Indicator::kMpki] = parse_field(fields[7], line_no);
    row.sample[Indicator::kNetIn] = parse_field(fields[8], line_no);
    row.sample[Indicator::kNetOut] = parse_field(fields[9], line_no);
    row.sample[Indicator::kDiskIoPercent] = parse_field(fields[10], line_no);
    by_id[std::string(trim(fields[0]))].push_back(row);
  }
  return assemble(std::move(by_id));
}

EntityFrames load_alibaba_container_usage_file(const std::string& path) {
  std::ifstream in(path);
  RPTCN_CHECK(in.good(), "cannot open: " << path);
  return load_alibaba_container_usage(in);
}

EntityFrames load_alibaba_machine_usage(std::istream& in) {
  std::map<std::string, std::vector<Row>> by_id;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto t = trim(line);
    if (t.empty()) continue;
    const auto fields = split(t, ',');
    RPTCN_CHECK(fields.size() == 9,
                "machine_usage row needs 9 fields, got " << fields.size()
                                                         << " at line "
                                                         << line_no);
    Row row;
    row.time_stamp = parse_field(fields[1], line_no);
    row.sample[Indicator::kCpuUtilPercent] = parse_field(fields[2], line_no);
    row.sample[Indicator::kMemUtilPercent] = parse_field(fields[3], line_no);
    row.sample[Indicator::kCpi] = kNan;  // not reported at machine level
    row.sample[Indicator::kMemGps] = parse_field(fields[4], line_no);
    row.sample[Indicator::kMpki] = parse_field(fields[5], line_no);
    row.sample[Indicator::kNetIn] = parse_field(fields[6], line_no);
    row.sample[Indicator::kNetOut] = parse_field(fields[7], line_no);
    row.sample[Indicator::kDiskIoPercent] = parse_field(fields[8], line_no);
    by_id[std::string(trim(fields[0]))].push_back(row);
  }
  return assemble(std::move(by_id));
}

EntityFrames load_alibaba_machine_usage_file(const std::string& path) {
  std::ifstream in(path);
  RPTCN_CHECK(in.good(), "cannot open: " << path);
  return load_alibaba_machine_usage(in);
}

}  // namespace rptcn::trace
