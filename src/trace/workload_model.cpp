#include "trace/workload_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rptcn::trace {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Smooth 0->1 ramp between lo and hi.
double smoothstep(double x, double lo, double hi) {
  const double t = clamp01((x - lo) / (hi - lo));
  return t * t * (3.0 - 2.0 * t);
}
}  // namespace

WorkloadParams sample_params(WorkloadClass workload_class, Rng& rng) {
  WorkloadParams p;
  p.workload_class = workload_class;
  switch (workload_class) {
    case WorkloadClass::kOnlineService:
      p.base_level = rng.uniform(0.15, 0.40);
      p.diurnal_amplitude = rng.uniform(0.08, 0.20);
      p.noise_sigma = rng.uniform(0.02, 0.05);
      p.mutation_rate = rng.uniform(0.001, 0.004);
      p.burst_rate = rng.uniform(0.003, 0.008);
      break;
    case WorkloadClass::kBatchJob:
      p.base_level = rng.uniform(0.10, 0.30);
      p.diurnal_amplitude = rng.uniform(0.0, 0.05);
      p.noise_sigma = rng.uniform(0.03, 0.07);
      p.mutation_rate = rng.uniform(0.003, 0.008);  // frequent phase changes
      p.burst_rate = rng.uniform(0.004, 0.010);
      break;
    case WorkloadClass::kStreaming:
      p.base_level = rng.uniform(0.20, 0.45);
      p.diurnal_amplitude = rng.uniform(0.03, 0.10);
      p.noise_sigma = rng.uniform(0.015, 0.04);
      p.mutation_rate = rng.uniform(0.0005, 0.002);
      p.burst_rate = rng.uniform(0.002, 0.006);
      break;
  }
  p.ar_coefficient = rng.uniform(0.75, 0.92);
  return p;
}

WorkloadModel::WorkloadModel(const WorkloadParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  RPTCN_CHECK(params.steps_per_day > 0, "steps_per_day must be positive");
  cpu_smoothed_ = params.base_level;
  cpu_visible_ = params.base_level;
  prev_cpu_ = params.base_level;
  // Slow non-stationary drift (load growth, code deployments): the late
  // trace visits levels never seen early on, which is what makes real
  // multi-day traces hard and separates models that generalise from models
  // that memorise absolute levels.
  trend_per_step_ = rng_.uniform(-0.00008, 0.00014);
  mem_walk_ = rng_.uniform(-0.05, 0.15);
}

void WorkloadModel::update_regime() {
  if (regime_steps_left_ > 0) {
    --regime_steps_left_;
    return;
  }
  // Pick the next regime; dwell times are geometric-ish uniform draws.
  const double u = rng_.uniform();
  if (u < 0.15) {
    regime_ = Regime::kIdle;
    regime_steps_left_ = static_cast<std::size_t>(rng_.uniform(30, 200));
  } else if (u < 0.75) {
    regime_ = Regime::kSteady;
    regime_steps_left_ = static_cast<std::size_t>(rng_.uniform(100, 600));
  } else if (u < 0.90) {
    regime_ = Regime::kRamp;
    regime_steps_left_ = static_cast<std::size_t>(rng_.uniform(50, 150));
  } else {
    regime_ = Regime::kBurst;
    regime_steps_left_ = static_cast<std::size_t>(rng_.uniform(10, 60));
  }
}

double WorkloadModel::regime_target() const {
  switch (regime_) {
    case Regime::kIdle:
      return 0.05;
    case Regime::kSteady:
      return params_.base_level;
    case Regime::kRamp:
      // Drift above base while the ramp lasts.
      return params_.base_level * 1.6;
    case Regime::kBurst:
      return std::min(0.95, params_.base_level + 0.35);
    case Regime::kShifted:
      return params_.base_level;
  }
  return params_.base_level;
}

IndicatorSample WorkloadModel::step(double contention) {
  RPTCN_CHECK(contention >= 0.0 && contention <= 1.0,
              "contention must be in [0,1]");
  update_regime();

  // Persistent mutation points (the sudden level shifts of Fig. 8).
  if (rng_.bernoulli(params_.mutation_rate)) {
    const double magnitude = rng_.uniform(0.15, 0.45);
    shift_offset_ = rng_.bernoulli(0.5) ? magnitude : -magnitude;
  }
  // Short exponential-decay bursts.
  if (rng_.bernoulli(params_.burst_rate))
    burst_level_ = rng_.uniform(0.15, 0.5);
  burst_level_ *= 0.9;

  // AR(1) noise.
  ar_state_ = params_.ar_coefficient * ar_state_ +
              rng_.normal(0.0, params_.noise_sigma);

  // Non-stationary drift: deterministic trend plus a slow random walk.
  level_drift_ = std::clamp(
      level_drift_ + trend_per_step_ + rng_.normal(0.0, 0.0008), -0.2, 0.3);

  // Diurnal component (online services only have a meaningful one).
  const double day_phase = 2.0 * M_PI * static_cast<double>(t_) /
                           static_cast<double>(params_.steps_per_day);
  const double diurnal = params_.diurnal_amplitude * std::sin(day_phase);

  cpu_demand_ =
      clamp01(regime_target() + level_drift_ + diurnal + shift_offset_ +
              burst_level_ + ar_state_);

  // Co-location interference: heavy machine pressure throttles the container
  // (it gets less CPU than it demands) and degrades its memory system.
  const double throttle = 1.0 - 0.4 * smoothstep(contention, 0.7, 1.0);
  const double cpu = clamp01(cpu_demand_ * throttle);
  const double contention_excess = std::max(0.0, contention - 0.6);

  // The reported CPU utilisation is the *previous* sampling interval's
  // usage (utilisation counters aggregate over the interval just ended)
  // plus measurement noise, while the hardware memory-system counters below
  // reflect the current interval. This one-interval reporting delay gives
  // mpki/cpi/mem_gps a genuine lead over the reported CPU series — the
  // mechanism behind the paper's observation that multivariate input
  // out-predicts the univariate history at burst onsets.
  cpu_visible_ = clamp01(prev_cpu_ + rng_.normal(0.0, 0.015));

  // EMAs used for lagged couplings.
  cpu_smoothed_ = 0.6 * cpu_smoothed_ + 0.4 * cpu;
  mem_walk_ = std::clamp(mem_walk_ + rng_.normal(0.0, 0.004), -0.15, 0.45);
  disk_phase_ *= 0.85;
  if (rng_.bernoulli(params_.workload_class == WorkloadClass::kBatchJob
                         ? 0.01
                         : 0.004))
    disk_phase_ = rng_.uniform(0.2, 0.8);

  IndicatorSample s;
  s[Indicator::kCpuUtilPercent] = 100.0 * cpu_visible_;

  // Memory-system indicators: coupled to the *current* interval's CPU
  // activity. Each counter is individually noisy (hardware counters are
  // sampled/multiplexed), so no single indicator reveals the state — the
  // information is spread across mpki/cpi/mem_gps and must be combined.
  // Noise magnitudes keep the |PCC| ranking mpki > cpi > mem_gps (Fig. 7).
  s[Indicator::kMpki] = std::max(
      0.0, 2.0 + 28.0 * cpu + 9.0 * contention_excess + rng_.normal(0.0, 2.2));
  s[Indicator::kCpi] = std::max(
      0.3, 0.9 + 1.5 * cpu + 1.8 * contention_excess + rng_.normal(0.0, 0.20));
  s[Indicator::kMemGps] =
      clamp01(0.08 + 0.7 * (0.6 * cpu + 0.4 * cpu_smoothed_) +
              rng_.normal(0.0, 0.11));

  // Weaker couplings.
  s[Indicator::kMemUtilPercent] =
      100.0 * clamp01(0.35 + mem_walk_ + 0.08 * cpu_smoothed_ +
                      rng_.normal(0.0, 0.012));
  const bool online = params_.workload_class == WorkloadClass::kOnlineService;
  const double request_proxy = online ? 0.45 * cpu_smoothed_ : 0.08;
  s[Indicator::kNetIn] =
      clamp01(request_proxy + rng_.normal(0.0, online ? 0.09 : 0.03));
  s[Indicator::kNetOut] =
      clamp01(0.7 * s[Indicator::kNetIn] + rng_.normal(0.0, 0.05));
  s[Indicator::kDiskIoPercent] =
      100.0 * clamp01(disk_phase_ + 0.08 * cpu_smoothed_ +
                      std::fabs(rng_.normal(0.0, 0.04)));

  prev_cpu_ = cpu;
  ++t_;
  return s;
}

}  // namespace rptcn::trace
