#include "trace/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rptcn::trace {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

WorkloadClass sample_class(Rng& rng) {
  const std::size_t pick = rng.categorical({0.4, 0.4, 0.2});
  switch (pick) {
    case 0:
      return WorkloadClass::kOnlineService;
    case 1:
      return WorkloadClass::kBatchJob;
    default:
      return WorkloadClass::kStreaming;
  }
}
}  // namespace

ClusterSimulator::ClusterSimulator(const TraceConfig& config)
    : config_(config) {
  RPTCN_CHECK(config.num_machines > 0, "need at least one machine");
  RPTCN_CHECK(config.min_containers_per_machine >= 1 &&
                  config.max_containers_per_machine >=
                      config.min_containers_per_machine,
              "bad container count range");
  RPTCN_CHECK(config.duration_steps > 1, "duration too short");

  Rng rng(config.seed);
  machine_containers_.resize(config.num_machines);
  std::size_t next_id = 0;
  for (std::size_t m = 0; m < config.num_machines; ++m) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_containers_per_machine),
        static_cast<std::int64_t>(config.max_containers_per_machine)));
    // Raw shares, rescaled so the machine's total allocatable share lands in
    // [0.5, 0.85] — mirroring overcommit-averse production placement.
    std::vector<double> raw(count);
    double raw_sum = 0.0;
    for (auto& r : raw) {
      r = rng.uniform(0.2, 0.5);
      raw_sum += r;
    }
    const double budget = rng.uniform(0.6, 0.95);
    for (std::size_t c = 0; c < count; ++c) {
      ContainerInfo info;
      info.id = "c_" + std::to_string(18100 + next_id);
      info.machine = m;
      info.workload_class = sample_class(rng);
      info.cpu_share = raw[c] / raw_sum * budget;
      machine_containers_[m].push_back(containers_.size());
      containers_.push_back(std::move(info));
      ++next_id;
    }
  }
}

void ClusterSimulator::run() {
  RPTCN_CHECK(!ran_, "ClusterSimulator::run() called twice");
  ran_ = true;

  Rng rng(config_.seed ^ 0x5bd1e995u);
  const std::size_t steps = config_.duration_steps;

  // Per-container indicator buffers.
  std::vector<std::array<std::vector<double>, kIndicatorCount>> cbuf(
      containers_.size());
  for (auto& arr : cbuf)
    for (auto& col : arr) col.reserve(steps);
  std::vector<std::array<std::vector<double>, kIndicatorCount>> mbuf(
      config_.num_machines);
  for (auto& arr : mbuf)
    for (auto& col : arr) col.reserve(steps);

  // Build the per-container models.
  std::vector<WorkloadModel> models;
  models.reserve(containers_.size());
  for (const auto& info : containers_) {
    Rng prng = rng.split();
    WorkloadParams params = sample_params(info.workload_class, prng);
    params.steps_per_day = config_.steps_per_day;
    models.emplace_back(params, prng());
  }

  std::vector<Rng> machine_noise;
  machine_noise.reserve(config_.num_machines);
  for (std::size_t m = 0; m < config_.num_machines; ++m)
    machine_noise.push_back(rng.split());

  // One-step-lagged machine CPU is the contention signal (stable feedback).
  std::vector<double> machine_cpu_prev(config_.num_machines, 0.0);

  // Container churn: placements come and go (scheduler arrivals, departures,
  // migrations). This is what gives *machine-level* series their abrupt
  // sustained level shifts — a single container's mutation is diluted by
  // aggregation, a placement change is not.
  std::vector<bool> active(containers_.size());
  std::vector<Rng> churn_rng;
  churn_rng.reserve(containers_.size());
  for (std::size_t ci = 0; ci < containers_.size(); ++ci) {
    churn_rng.push_back(rng.split());
    active[ci] = churn_rng.back().bernoulli(0.85);
  }
  constexpr double kDepartRate = 0.0008;  // expected residency ~1250 steps
  constexpr double kArriveRate = 0.0030;  // expected gap ~330 steps

  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t m = 0; m < config_.num_machines; ++m) {
      const double contention = machine_cpu_prev[m];
      double cpu_sum = 0.0, mem_sum = 0.0, gps_sum = 0.0;
      double net_in_sum = 0.0, net_out_sum = 0.0, disk_sum = 0.0;
      double cpi_weighted = 0.0, mpki_weighted = 0.0, act_weight = 0.0;
      double share_sum = 0.0;

      for (const std::size_t ci : machine_containers_[m]) {
        const double share = containers_[ci].cpu_share;
        // Churn transition for this container.
        if (active[ci]) {
          if (churn_rng[ci].bernoulli(kDepartRate)) active[ci] = false;
        } else if (churn_rng[ci].bernoulli(kArriveRate)) {
          active[ci] = true;
        }
        IndicatorSample s = models[ci].step(contention);
        if (!active[ci]) {
          // Descheduled placement: near-idle footprint, healthy memory
          // system (no work -> no misses/stalls).
          s[Indicator::kCpuUtilPercent] *= 0.05;
          s[Indicator::kMemGps] *= 0.1;
          s[Indicator::kNetIn] *= 0.1;
          s[Indicator::kNetOut] *= 0.1;
          s[Indicator::kDiskIoPercent] *= 0.3;
          s[Indicator::kMpki] = 1.0 + 0.05 * s[Indicator::kMpki];
          s[Indicator::kCpi] = 0.8 + 0.1 * s[Indicator::kCpi];
        }
        for (std::size_t k = 0; k < kIndicatorCount; ++k)
          cbuf[ci][k].push_back(s.values[k]);

        const double cpu_frac = s[Indicator::kCpuUtilPercent] / 100.0;
        cpu_sum += share * cpu_frac;
        mem_sum += share * s[Indicator::kMemUtilPercent] / 100.0;
        gps_sum += share * s[Indicator::kMemGps];
        net_in_sum += share * s[Indicator::kNetIn];
        net_out_sum += share * s[Indicator::kNetOut];
        disk_sum += share * s[Indicator::kDiskIoPercent] / 100.0;
        const double activity = share * cpu_frac + 1e-9;
        cpi_weighted += activity * s[Indicator::kCpi];
        mpki_weighted += activity * s[Indicator::kMpki];
        act_weight += activity;
        share_sum += share;
      }

      Rng& mrng = machine_noise[m];
      const double machine_cpu =
          clamp01(config_.os_baseline + cpu_sum + mrng.normal(0.0, 0.01));
      machine_cpu_prev[m] = machine_cpu;

      auto& out = mbuf[m];
      out[static_cast<std::size_t>(Indicator::kCpuUtilPercent)].push_back(
          100.0 * machine_cpu);
      out[static_cast<std::size_t>(Indicator::kMemUtilPercent)].push_back(
          100.0 * clamp01(0.15 + mem_sum + mrng.normal(0.0, 0.005)));
      out[static_cast<std::size_t>(Indicator::kCpi)].push_back(
          cpi_weighted / act_weight);
      out[static_cast<std::size_t>(Indicator::kMemGps)].push_back(
          clamp01(gps_sum / std::max(share_sum, 1e-9)));
      out[static_cast<std::size_t>(Indicator::kMpki)].push_back(
          mpki_weighted / act_weight);
      out[static_cast<std::size_t>(Indicator::kNetIn)].push_back(
          clamp01(net_in_sum));
      out[static_cast<std::size_t>(Indicator::kNetOut)].push_back(
          clamp01(net_out_sum));
      out[static_cast<std::size_t>(Indicator::kDiskIoPercent)].push_back(
          100.0 * clamp01(disk_sum / std::max(share_sum, 1e-9)));
    }
  }

  // Materialise frames.
  container_frames_.reserve(containers_.size());
  for (std::size_t ci = 0; ci < containers_.size(); ++ci) {
    data::TimeSeriesFrame frame;
    for (std::size_t k = 0; k < kIndicatorCount; ++k)
      frame.add(indicator_names()[k], std::move(cbuf[ci][k]));
    container_frames_.push_back(std::move(frame));
  }
  machine_frames_.reserve(config_.num_machines);
  for (std::size_t m = 0; m < config_.num_machines; ++m) {
    data::TimeSeriesFrame frame;
    for (std::size_t k = 0; k < kIndicatorCount; ++k)
      frame.add(indicator_names()[k], std::move(mbuf[m][k]));
    machine_frames_.push_back(std::move(frame));
  }
}

const ContainerInfo& ClusterSimulator::container_info(std::size_t i) const {
  RPTCN_CHECK(i < containers_.size(), "container index out of range");
  return containers_[i];
}

const data::TimeSeriesFrame& ClusterSimulator::container_trace(
    std::size_t i) const {
  RPTCN_CHECK(ran_, "call run() first");
  RPTCN_CHECK(i < container_frames_.size(), "container index out of range");
  return container_frames_[i];
}

const data::TimeSeriesFrame& ClusterSimulator::machine_trace(
    std::size_t i) const {
  RPTCN_CHECK(ran_, "call run() first");
  RPTCN_CHECK(i < machine_frames_.size(), "machine index out of range");
  return machine_frames_[i];
}

std::string ClusterSimulator::machine_id(std::size_t i) const {
  RPTCN_CHECK(i < config_.num_machines, "machine index out of range");
  return "m_" + std::to_string(1000 + i);
}

std::vector<double> ClusterSimulator::cluster_average_cpu() const {
  RPTCN_CHECK(ran_, "call run() first");
  std::vector<double> avg(config_.duration_steps, 0.0);
  for (std::size_t m = 0; m < config_.num_machines; ++m) {
    const auto& cpu = machine_frames_[m].column(
        indicator_names()[static_cast<std::size_t>(Indicator::kCpuUtilPercent)]);
    for (std::size_t t = 0; t < avg.size(); ++t) avg[t] += cpu[t] / 100.0;
  }
  for (auto& v : avg) v /= static_cast<double>(config_.num_machines);
  return avg;
}

}  // namespace rptcn::trace
