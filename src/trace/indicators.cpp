#include "trace/indicators.h"

#include "common/check.h"

namespace rptcn::trace {

namespace {
const std::array<std::string, kIndicatorCount> kNames = {
    "cpu_util_percent", "mem_util_percent", "cpi",     "mem_gps",
    "mpki",             "net_in",           "net_out", "disk_io_percent"};

const std::array<std::string, kIndicatorCount> kMeanings = {
    "cpu utilization percent",
    "memory utilization percent",
    "cycles per instruction",
    "normalised memory gigabyte per second",
    "misses per kilo instructions",
    "normalised incoming network traffic",
    "normalised outgoing network traffic",
    "disk io percent"};
}  // namespace

const std::string& indicator_name(Indicator indicator) {
  const auto i = static_cast<std::size_t>(indicator);
  RPTCN_CHECK(i < kIndicatorCount, "bad indicator");
  return kNames[i];
}

const std::string& indicator_meaning(Indicator indicator) {
  const auto i = static_cast<std::size_t>(indicator);
  RPTCN_CHECK(i < kIndicatorCount, "bad indicator");
  return kMeanings[i];
}

const std::array<std::string, kIndicatorCount>& indicator_names() {
  return kNames;
}

}  // namespace rptcn::trace
