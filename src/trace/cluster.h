// ClusterSimulator — the repository's stand-in for Alibaba trace v2018.
//
// A cluster of machines, each co-locating several containers of mixed
// workload classes (online services + batch jobs + streaming), sampled at a
// fixed interval. Machine pressure feeds back into every resident
// container's model (interference), and machine-level indicator series are
// the capacity-weighted aggregates of their containers plus an OS baseline.
//
// Calibration targets (checked by tests and the Fig. 2/3 benches):
//  * cluster-average CPU < 60 % for at least 75 % of the time;
//  * > 80 % of machines below 50 % average CPU utilisation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/timeseries.h"
#include "trace/workload_model.h"

namespace rptcn::trace {

struct TraceConfig {
  std::size_t num_machines = 32;
  std::size_t min_containers_per_machine = 2;
  std::size_t max_containers_per_machine = 5;
  std::size_t duration_steps = 3000;
  double interval_seconds = 10.0;       ///< the paper uses 10 s sampling
  std::size_t steps_per_day = 8640;     ///< for the diurnal component
  double os_baseline = 0.05;            ///< machine CPU floor from the OS
  std::uint64_t seed = 2018;
};

/// Static description of one simulated container.
struct ContainerInfo {
  std::string id;          ///< "c_<n>" in the Alibaba naming style
  std::size_t machine;     ///< index of the hosting machine
  WorkloadClass workload_class;
  double cpu_share;        ///< fraction of the machine's cores it may use
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const TraceConfig& config);

  /// Generate the whole trace. Must be called once before any accessor.
  void run();

  const TraceConfig& config() const { return config_; }
  std::size_t num_machines() const { return config_.num_machines; }
  std::size_t num_containers() const { return containers_.size(); }

  const ContainerInfo& container_info(std::size_t i) const;
  /// Eight-indicator frame for one container ("c_<n>").
  const data::TimeSeriesFrame& container_trace(std::size_t i) const;
  /// Eight-indicator frame for one machine ("m_<n>").
  const data::TimeSeriesFrame& machine_trace(std::size_t i) const;
  std::string machine_id(std::size_t i) const;

  /// Machine-average CPU fraction (0..1) over time, one value per step —
  /// the series behind the paper's Fig. 2.
  std::vector<double> cluster_average_cpu() const;

 private:
  TraceConfig config_;
  std::vector<ContainerInfo> containers_;
  std::vector<std::vector<std::size_t>> machine_containers_;
  std::vector<data::TimeSeriesFrame> container_frames_;
  std::vector<data::TimeSeriesFrame> machine_frames_;
  bool ran_ = false;
};

}  // namespace rptcn::trace
