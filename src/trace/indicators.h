// The eight monitoring indicators of the paper's Table I.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace rptcn::trace {

enum class Indicator : std::size_t {
  kCpuUtilPercent = 0,   ///< cpu utilization percent
  kMemUtilPercent = 1,   ///< memory utilization percent
  kCpi = 2,              ///< cycles per instruction
  kMemGps = 3,           ///< normalised memory gigabytes per second
  kMpki = 4,             ///< misses per kilo instructions
  kNetIn = 5,            ///< normalised incoming network traffic
  kNetOut = 6,           ///< normalised outgoing network traffic
  kDiskIoPercent = 7,    ///< disk io percent
};

inline constexpr std::size_t kIndicatorCount = 8;

/// Canonical column name as used by the paper (Table I).
const std::string& indicator_name(Indicator indicator);
/// Human-readable description (Table I "Meaning" column).
const std::string& indicator_meaning(Indicator indicator);
/// All eight names, in enum order.
const std::array<std::string, kIndicatorCount>& indicator_names();

/// One sample of all eight indicators.
struct IndicatorSample {
  std::array<double, kIndicatorCount> values{};

  double& operator[](Indicator i) {
    return values[static_cast<std::size_t>(i)];
  }
  double operator[](Indicator i) const {
    return values[static_cast<std::size_t>(i)];
  }
};

}  // namespace rptcn::trace
