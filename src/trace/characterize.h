// Trace characterisation — the statistics behind the paper's Figs. 1-3.
#pragma once

#include "common/stats.h"
#include "trace/cluster.h"

namespace rptcn::trace {

/// Fig. 2: boxplot of the cluster-average CPU fraction per fixed-size time
/// interval (the paper uses 6-hour buckets).
std::vector<BoxplotStats> cpu_boxplots_per_interval(
    const ClusterSimulator& sim, std::size_t steps_per_interval);

/// Fraction of time steps where the cluster-average CPU is below `threshold`
/// (paper claim: avg < 0.6 for >= 75 % of the time).
double fraction_time_below(const ClusterSimulator& sim, double threshold);

/// Fig. 3: per-interval fraction of machines whose average CPU over the
/// interval is below `threshold` (paper claim: > 80 % of machines < 50 %).
std::vector<double> fraction_machines_below_per_interval(
    const ClusterSimulator& sim, double threshold,
    std::size_t steps_per_interval);

/// Overall fraction of machines whose whole-trace average CPU is below
/// `threshold`.
double fraction_machines_below(const ClusterSimulator& sim, double threshold);

/// Summary of one container's dynamics (Fig. 1 in text form): per-indicator
/// mean, stddev, min, max, and lag-1 autocorrelation.
struct SeriesSummary {
  std::string indicator;
  double mean = 0, stddev = 0, min = 0, max = 0, lag1_autocorr = 0;
};
std::vector<SeriesSummary> summarize_frame(const data::TimeSeriesFrame& frame);

/// Count of "mutation points": steps where the series moves by more than
/// `jump` times its standard deviation within `lag` samples — the
/// high-dynamics measure that motivates the paper. lag > 1 captures abrupt
/// sustained shifts that smoothed utilisation counters spread over a few
/// samples.
std::size_t mutation_points(const std::vector<double>& series, double jump,
                            std::size_t lag = 1);

}  // namespace rptcn::trace
