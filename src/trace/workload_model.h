// Per-container stochastic workload model.
//
// Calibrated to the qualitative properties the paper reports for Alibaba
// trace v2018:
//  * high-dynamic, weakly periodic CPU usage with abrupt mutation points
//    (Fig. 1, Fig. 8): a regime-switching Markov chain over workload states
//    plus AR(1) noise and Poisson level-shift events;
//  * strong cross-indicator correlation with CPU in the order
//    mpki > cpi > mem_gps (Fig. 7 top-4 = cpu, mpki, cpi, mem_gps), with
//    mem_util / net / disk progressively weaker;
//  * co-location interference: machine-level contention raises cpi/mpki of
//    every resident container (Section II).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "trace/indicators.h"

namespace rptcn::trace {

/// Workload archetypes co-located in the simulated cluster.
enum class WorkloadClass {
  kOnlineService,  ///< diurnal request-driven load, latency-sensitive
  kBatchJob,       ///< phase-structured compute with sharp starts/stops
  kStreaming,      ///< steady medium load with occasional spikes
};

/// Behavioural regimes of the Markov chain.
enum class Regime { kIdle, kSteady, kRamp, kBurst, kShifted };

struct WorkloadParams {
  WorkloadClass workload_class = WorkloadClass::kOnlineService;
  double base_level = 0.25;       ///< resting CPU fraction (0..1)
  double diurnal_amplitude = 0.1; ///< daily sinusoid amplitude
  double noise_sigma = 0.03;      ///< AR(1) innovation stddev
  double ar_coefficient = 0.85;   ///< AR(1) persistence
  double mutation_rate = 0.002;   ///< per-step probability of a level shift
  double burst_rate = 0.004;      ///< per-step probability of a short burst
  std::size_t steps_per_day = 8640;  ///< 10 s sampling -> 8640 steps/day
};

/// Draw randomised-but-plausible parameters for a workload class.
WorkloadParams sample_params(WorkloadClass workload_class, Rng& rng);

/// One container's generative model. step() advances one sampling interval
/// and emits all eight Table-I indicators; `contention` in [0,1] is the
/// machine-level pressure from co-located workloads at this step.
class WorkloadModel {
 public:
  WorkloadModel(const WorkloadParams& params, std::uint64_t seed);

  IndicatorSample step(double contention);

  /// CPU demand (0..1) the model would like next step — used by the cluster
  /// to compute machine pressure before interference feedback.
  double cpu_demand() const { return cpu_demand_; }

  Regime regime() const { return regime_; }
  const WorkloadParams& params() const { return params_; }

 private:
  void update_regime();
  double regime_target() const;

  WorkloadParams params_;
  Rng rng_;
  std::size_t t_ = 0;

  Regime regime_ = Regime::kSteady;
  std::size_t regime_steps_left_ = 0;
  double shift_offset_ = 0.0;    ///< persistent level shift (mutation points)
  double trend_per_step_ = 0.0;  ///< deterministic drift rate
  double level_drift_ = 0.0;     ///< accumulated non-stationary drift
  double burst_level_ = 0.0;     ///< decaying short burst
  double ar_state_ = 0.0;        ///< AR(1) noise state
  double cpu_demand_ = 0.0;
  double cpu_visible_ = 0.0;     ///< lagged utilisation-counter response
  double cpu_smoothed_ = 0.0;    ///< EMA of cpu, drives mem/net coupling
  double mem_walk_ = 0.0;        ///< slow memory random walk
  double disk_phase_ = 0.0;      ///< disk burst envelope
  double prev_cpu_ = 0.0;
};

}  // namespace rptcn::trace
