#include "sched/fleet_source.h"

#include "common/check.h"

namespace rptcn::sched {

FleetForecastSource::FleetForecastSource(fleet::FleetManager& manager,
                                         std::string entity)
    : manager_(manager),
      entity_(std::move(entity)),
      name_("fleet:" + entity_) {
  // Fail at bind time, not at the first decision round.
  manager_.entity_stats(entity_);
}

ResourceForecast FleetForecastSource::forecast(
    const data::TimeSeriesFrame& history) {
  const fleet::EntityStats stats = manager_.entity_stats(entity_);
  RPTCN_CHECK(stats.has_forecast,
              "fleet has not delivered a forecast for entity " << entity_
                                                               << " yet");
  ResourceForecast f;
  f.cpu = stats.last_forecast_raw;
  RPTCN_CHECK(history.has("mem_util_percent") && history.length() > 0,
              "forecast history needs a non-empty mem_util_percent column");
  f.mem = history.column("mem_util_percent").back();
  return f;
}

}  // namespace rptcn::sched
