#include "sched/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace rptcn::sched {

namespace {

/// Float headroom for capacity checks: a request that sums to capacity
/// through different addition orders must not flap between feasible and
/// infeasible on the last ulp.
constexpr double kCapacityEps = 1e-9;

bool fits(double used, double need, double capacity) {
  return used + need <= capacity + kCapacityEps;
}

}  // namespace

ClusterModel::ClusterModel(std::vector<MachineSpec> machines)
    : machines_(std::move(machines)),
      cpu_used_(machines_.size(), 0.0),
      mem_used_(machines_.size(), 0.0) {
  RPTCN_CHECK(!machines_.empty(), "ClusterModel needs >= 1 machine");
  for (const MachineSpec& m : machines_)
    RPTCN_CHECK(m.cpu > 0.0 && m.mem > 0.0,
                "machine capacities must be positive");
}

PackResult ClusterModel::pack(const std::vector<Allocation>& allocations) {
  // Decreasing-cpu order (mem, then id tiebreaks): FFD's approximation
  // guarantee plus a placement that is a pure function of the request set.
  std::vector<const Allocation*> order;
  order.reserve(allocations.size());
  for (const Allocation& a : allocations) {
    RPTCN_CHECK(a.cpu >= 0.0 && a.mem >= 0.0,
                "negative allocation for entity " << a.entity);
    order.push_back(&a);
  }
  std::sort(order.begin(), order.end(),
            [](const Allocation* a, const Allocation* b) {
              if (a->cpu != b->cpu) return a->cpu > b->cpu;
              if (a->mem != b->mem) return a->mem > b->mem;
              return a->entity < b->entity;
            });

  std::fill(cpu_used_.begin(), cpu_used_.end(), 0.0);
  std::fill(mem_used_.begin(), mem_used_.end(), 0.0);
  std::unordered_map<std::string, std::size_t> next;
  next.reserve(order.size());

  PackResult result;
  for (const Allocation* a : order) {
    RPTCN_CHECK(next.find(a->entity) == next.end(),
                "entity placed twice in one pack: " << a->entity);
    std::size_t chosen = kUnplaced;
    // Sticky pass: the machine the entity already occupies, if it still
    // has room, wins — a move costs a migration.
    const auto prev = placement_.find(a->entity);
    const std::size_t prev_machine =
        prev == placement_.end() ? kUnplaced : prev->second;
    if (prev_machine != kUnplaced &&
        fits(cpu_used_[prev_machine], a->cpu, machines_[prev_machine].cpu) &&
        fits(mem_used_[prev_machine], a->mem, machines_[prev_machine].mem)) {
      chosen = prev_machine;
    } else {
      for (std::size_t m = 0; m < machines_.size(); ++m) {
        if (fits(cpu_used_[m], a->cpu, machines_[m].cpu) &&
            fits(mem_used_[m], a->mem, machines_[m].mem)) {
          chosen = m;
          break;
        }
      }
    }
    if (chosen == kUnplaced) {
      result.feasible = false;
      result.unplaced.push_back(a->entity);
      continue;
    }
    cpu_used_[chosen] += a->cpu;
    mem_used_[chosen] += a->mem;
    next[a->entity] = chosen;
    if (prev_machine != kUnplaced && prev_machine != chosen)
      ++result.migrations;
  }
  std::sort(result.unplaced.begin(), result.unplaced.end());

  placement_ = std::move(next);
  std::vector<bool> hosts(machines_.size(), false);
  for (const auto& [entity, m] : placement_) hosts[m] = true;
  for (std::size_t m = 0; m < machines_.size(); ++m)
    if (hosts[m]) ++result.machines_used;
  return result;
}

std::size_t ClusterModel::placement_of(const std::string& entity) const {
  const auto it = placement_.find(entity);
  return it == placement_.end() ? kUnplaced : it->second;
}

double ClusterModel::cpu_used(std::size_t m) const {
  RPTCN_CHECK(m < machines_.size(), "no such machine: " << m);
  return cpu_used_[m];
}

double ClusterModel::mem_used(std::size_t m) const {
  RPTCN_CHECK(m < machines_.size(), "no such machine: " << m);
  return mem_used_[m];
}

}  // namespace rptcn::sched
