#include "sched/loop.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "obs/trace.h"
#include "trace/indicators.h"

namespace rptcn::sched {

namespace {

/// Validation hook for the member-initializer list.
const LoopOptions& validated(const LoopOptions& options) {
  options.validate();
  return options;
}

/// Demand as a fraction of one machine's capacity: the trace emits
/// utilisation percent (0-100 of a machine), the cluster model works in
/// machine fractions.
double percent_to_fraction(double percent) {
  return std::max(percent, 0.0) / 100.0;
}

}  // namespace

void LoopOptions::validate() const {
  RPTCN_CHECK(!machines.empty(), "LoopOptions.machines must be non-empty");
  RPTCN_CHECK(decision_interval > 0,
              "LoopOptions.decision_interval must be >= 1");
  RPTCN_CHECK(bootstrap_ticks > 0, "LoopOptions.bootstrap_ticks must be >= 1");
  RPTCN_CHECK(refit_history > 0, "LoopOptions.refit_history must be >= 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "LoopOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
  autoscaler.validate();
  cost.validate();
}

SchedulerLoop::SchedulerLoop(std::vector<EntityTrace> traces,
                             LoopOptions options)
    : traces_(std::move(traces)),
      options_(validated(options)),
      decisions_counter_(obs::metrics().counter("sched/decisions_total",
                                                options_.tenant)),
      migrations_counter_(obs::metrics().counter("sched/migrations_total",
                                                 options_.tenant)),
      scale_events_counter_(obs::metrics().counter("sched/scale_events_total",
                                                   options_.tenant)),
      violations_counter_(obs::metrics().counter("sched/sla_violations_total",
                                                 options_.tenant)),
      infeasible_counter_(obs::metrics().counter(
          "sched/infeasible_packs_total", options_.tenant)),
      machines_used_gauge_(
          obs::metrics().gauge("sched/machines_used", options_.tenant)),
      forecast_hist_(obs::metrics().histogram("sched/forecast_seconds",
                                              options_.tenant)),
      pack_hist_(
          obs::metrics().histogram("sched/pack_seconds", options_.tenant)) {
  RPTCN_CHECK(!traces_.empty(), "SchedulerLoop needs >= 1 entity trace");
  std::unordered_set<std::string> ids;
  length_ = traces_.front().frame.length();
  for (const EntityTrace& t : traces_) {
    RPTCN_CHECK(!t.id.empty(), "entity trace with empty id");
    RPTCN_CHECK(ids.insert(t.id).second, "duplicate entity trace: " << t.id);
    for (const std::string& name : trace::indicator_names())
      RPTCN_CHECK(t.frame.has(name), "entity " << t.id
                                               << " trace is missing "
                                               << name);
    length_ = std::min(length_, t.frame.length());
  }
  RPTCN_CHECK(length_ > options_.bootstrap_ticks,
              "traces of length " << length_ << " leave no ticks after the "
                                  << options_.bootstrap_ticks
                                  << "-tick bootstrap");
}

LoopResult SchedulerLoop::run(
    const std::vector<std::shared_ptr<ForecastSource>>& sources) {
  RPTCN_CHECK(sources.size() == traces_.size(),
              "need one forecast source per entity trace: "
                  << sources.size() << " sources, " << traces_.size()
                  << " traces");
  for (const auto& s : sources)
    RPTCN_CHECK(s != nullptr, "null forecast source");

  // A source shared between entities refits once per round, on the history
  // of the first entity bound to it.
  std::unordered_map<ForecastSource*, std::size_t> refit_owner;
  for (std::size_t i = 0; i < sources.size(); ++i)
    refit_owner.emplace(sources[i].get(), i);

  Autoscaler scaler(options_.autoscaler);
  ClusterModel cluster(options_.machines);
  LoopResult result;
  result.evaluator = ReplayEvaluator(options_.cost);

  // Committed allocation per entity; zeroed while the packer cannot place
  // the entity (priced as fully under-provisioned).
  std::unordered_map<std::string, Allocation> live;
  for (const EntityTrace& t : traces_) {
    Allocation a;
    a.entity = t.id;
    live.emplace(t.id, a);
  }
  std::size_t prior_scale_events = 0;

  const auto history_tail = [&](std::size_t entity,
                                std::size_t tick) -> data::TimeSeriesFrame {
    const std::size_t span = std::min(tick, options_.refit_history);
    return traces_[entity].frame.slice(tick - span, span);
  };

  for (std::size_t tick = options_.bootstrap_ticks; tick < length_; ++tick) {
    if ((tick - options_.bootstrap_ticks) % options_.decision_interval == 0) {
      obs::TraceSpan span("sched/decision");
      ++result.decisions;
      decisions_counter_.add(1);

      if (options_.refit_interval > 0 && tick != options_.bootstrap_ticks &&
          (tick - options_.bootstrap_ticks) % options_.refit_interval == 0) {
        for (const auto& [source, owner] : refit_owner) {
          source->refit(history_tail(owner, tick));
          ++result.refits;
        }
      }

      std::vector<Allocation> allocations;
      allocations.reserve(traces_.size());
      {
        obs::ScopedTimer timer(forecast_hist_);
        for (std::size_t i = 0; i < traces_.size(); ++i) {
          // Rows [0, tick): the decision never sees the tick it provisions.
          const ResourceForecast raw =
              sources[i]->forecast(history_tail(i, tick));
          ResourceForecast fraction;
          fraction.cpu = percent_to_fraction(raw.cpu);
          fraction.mem = percent_to_fraction(raw.mem);
          allocations.push_back(scaler.decide(traces_[i].id, fraction));
        }
      }

      PackResult pack;
      {
        obs::ScopedTimer timer(pack_hist_);
        pack = cluster.pack(allocations);
      }
      for (const Allocation& a : allocations) live[a.entity] = a;
      for (const std::string& u : pack.unplaced) {
        live[u].cpu = 0.0;
        live[u].mem = 0.0;
      }
      if (!pack.feasible) {
        ++result.infeasible_packs;
        infeasible_counter_.add(1);
      }
      result.evaluator.record_migrations(tick, pack.migrations);
      migrations_counter_.add(pack.migrations);
      const std::size_t events = scaler.scale_events() - prior_scale_events;
      prior_scale_events = scaler.scale_events();
      result.evaluator.record_scale_events(tick, events);
      scale_events_counter_.add(events);
      machines_used_gauge_.set(static_cast<double>(pack.machines_used));
    }

    for (const EntityTrace& t : traces_) {
      ResourceForecast actual;
      actual.cpu = percent_to_fraction(t.frame.column("cpu_util_percent")[tick]);
      actual.mem = percent_to_fraction(t.frame.column("mem_util_percent")[tick]);
      if (result.evaluator.observe(tick, actual, live[t.id]))
        violations_counter_.add(1);
    }
    ++result.scored_ticks;
  }

  result.score = result.evaluator.score();
  return result;
}

}  // namespace rptcn::sched
