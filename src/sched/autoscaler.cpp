#include "sched/autoscaler.h"

#include <algorithm>

#include "common/check.h"

namespace rptcn::sched {

void AutoscalerOptions::validate() const {
  RPTCN_CHECK(headroom >= 1.0, "AutoscalerOptions.headroom must be >= 1");
  RPTCN_CHECK(cpu_floor >= 0.0 && mem_floor >= 0.0,
              "AutoscalerOptions floors must be >= 0");
  RPTCN_CHECK(cpu_cap > 0.0 && cpu_cap >= cpu_floor,
              "AutoscalerOptions.cpu_cap must be > 0 and >= cpu_floor");
  RPTCN_CHECK(mem_cap > 0.0 && mem_cap >= mem_floor,
              "AutoscalerOptions.mem_cap must be > 0 and >= mem_floor");
  RPTCN_CHECK(down_deadband >= 0.0 && down_deadband < 1.0,
              "AutoscalerOptions.down_deadband must be in [0, 1)");
}

namespace {

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

/// One resource's decision: immediate up, dead-banded down.
double step(double current, double target, double deadband) {
  if (target > current) return target;
  if (target < current * (1.0 - deadband)) return target;
  return current;
}

}  // namespace

Autoscaler::Autoscaler(AutoscalerOptions options) : options_(options) {
  options_.validate();
}

Allocation Autoscaler::decide(const std::string& entity,
                              const ResourceForecast& demand_fraction) {
  const double target_cpu =
      clamp(std::max(demand_fraction.cpu, 0.0) * options_.headroom,
            options_.cpu_floor, options_.cpu_cap);
  const double target_mem =
      clamp(std::max(demand_fraction.mem, 0.0) * options_.headroom,
            options_.mem_floor, options_.mem_cap);

  const auto it = current_.find(entity);
  Allocation next;
  next.entity = entity;
  if (it == current_.end()) {
    next.cpu = target_cpu;
    next.mem = target_mem;
  } else {
    next.cpu = step(it->second.cpu, target_cpu, options_.down_deadband);
    next.mem = step(it->second.mem, target_mem, options_.down_deadband);
    if (next.cpu != it->second.cpu || next.mem != it->second.mem)
      ++scale_events_;
  }
  current_[entity] = next;
  return next;
}

void Autoscaler::reset() {
  current_.clear();
  scale_events_ = 0;
}

}  // namespace rptcn::sched
