// FleetForecastSource: the fleet layer's per-entity forecasts as a
// sched::ForecastSource.
//
// The fleet stack already produces a next-tick CPU forecast per entity
// (FleetManager records the newest delivered one; see
// FleetManager::latest_forecasts). This adapter closes the integration
// loop: the scheduler pulls that forecast instead of fitting its own
// model, so the same generations that drive drift detection and hot-swap
// also drive allocation. Memory stays the naive last observed value, like
// every other source (CPU is the forecast target).
//
// The adapter is pull-based and non-blocking: forecast() reads whatever
// the fleet delivered most recently. Callers sequence ingest/drain
// themselves — in the closed-loop tests the pattern is ingest the tick,
// drain(), then decide.
#pragma once

#include <string>

#include "fleet/manager.h"
#include "sched/forecast.h"

namespace rptcn::sched {

class FleetForecastSource final : public ForecastSource {
 public:
  /// The manager must outlive the source. `entity` must be registered.
  FleetForecastSource(fleet::FleetManager& manager, std::string entity);

  const std::string& name() const override { return name_; }
  /// CPU = the fleet's newest delivered forecast for the entity (raw
  /// units); throws common::CheckError if none has been delivered yet —
  /// schedule only after the fleet has forecast at least once.
  ResourceForecast forecast(const data::TimeSeriesFrame& history) override;

  const std::string& entity() const { return entity_; }

 private:
  fleet::FleetManager& manager_;
  std::string entity_;
  std::string name_;
};

}  // namespace rptcn::sched
