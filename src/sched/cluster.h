// ClusterModel: machines, placements, and the first-fit-decreasing packer.
//
// The scheduling layer models a cluster as a fixed set of machines with
// cpu/mem capacity 1.0 each (allocations are fractions of one machine).
// pack() places a full allocation set every decision round with a sticky
// first-fit-decreasing heuristic: entities are sorted by decreasing cpu
// request (mem, then id as tiebreaks, so placement is a pure function of
// the request set), each entity first tries the machine it already sits on
// — a move is a migration, and migrations are priced by the cost model —
// and falls back to the lowest-index machine with room. Entities that fit
// nowhere are reported unplaced; the caller scores them as fully
// under-provisioned rather than silently over-packing a machine.
//
// Invariants (enforced in tests/test_sched.cpp): no machine is ever loaded
// past its capacity, no entity is placed twice, and packing the identical
// request set twice yields bit-identical placements and zero migrations.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace rptcn::sched {

/// One machine's capacity. Allocations are fractions of these totals.
struct MachineSpec {
  double cpu = 1.0;
  double mem = 1.0;
};

/// One entity's provisioned share for the current decision round.
struct Allocation {
  std::string entity;
  double cpu = 0.0;  ///< fraction of one machine's cpu capacity
  double mem = 0.0;  ///< fraction of one machine's mem capacity
};

/// Outcome of one pack() round.
struct PackResult {
  bool feasible = true;             ///< every entity found a machine
  std::vector<std::string> unplaced;  ///< entities that fit nowhere
  std::size_t migrations = 0;       ///< placed entities that changed machine
  std::size_t machines_used = 0;    ///< machines hosting >= 1 entity
};

class ClusterModel {
 public:
  static constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);

  explicit ClusterModel(std::vector<MachineSpec> machines);

  std::size_t machines() const { return machines_.size(); }

  /// Place every allocation (FFD, sticky to the previous placement).
  /// Replaces the cluster's placement state; an entity absent from
  /// `allocations` is evicted. Deterministic: identical request sequences
  /// produce identical placements regardless of input order.
  PackResult pack(const std::vector<Allocation>& allocations);

  /// Machine hosting `entity` after the last pack(), or kUnplaced.
  std::size_t placement_of(const std::string& entity) const;

  /// Load on machine `m` after the last pack().
  double cpu_used(std::size_t m) const;
  double mem_used(std::size_t m) const;

 private:
  std::vector<MachineSpec> machines_;
  std::vector<double> cpu_used_;
  std::vector<double> mem_used_;
  std::unordered_map<std::string, std::size_t> placement_;
};

}  // namespace rptcn::sched
