// Pluggable per-entity demand forecasters for the scheduling loop.
//
// A ForecastSource maps trailing raw history (a Table-I frame, newest row
// last) to next-tick resource demand in raw trace units (utilisation
// percent). Three families:
//
//  * Naive baselines — last value, max over a trailing window. These are
//    the frontier's lower bound and, because last-value tracks regime
//    shifts instantly, a surprisingly strong one under drift.
//  * SessionSource — a learned model (any registry forecaster: RPTCN,
//    LSTM, ARIMA, ...) fitted through the exact streaming recipe
//    (stream::fit_generation_gated under a frozen min-max normalizer) and
//    served through serve::InferenceSession. refit() re-fits on fresh
//    history — the adaptive mode the drift benches compare against frozen.
//  * FleetForecastSource (sched/fleet_source.h) — pulls the newest
//    forecast the fleet layer already produced for an entity.
//
// CPU is the forecast target (the paper's); every source forecasts memory
// naively as the last observed value, so frontier differences between
// sources isolate CPU forecast quality.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/timeseries.h"
#include "serve/session.h"
#include "stream/normalizer.h"
#include "stream/retrain.h"

namespace rptcn::sched {

/// Next-tick demand in raw trace units (utilisation percent, 0-100 scale).
struct ResourceForecast {
  double cpu = 0.0;
  double mem = 0.0;
};

class ForecastSource {
 public:
  virtual ~ForecastSource() = default;
  virtual const std::string& name() const = 0;
  /// Forecast next-tick demand from trailing history (all eight Table-I
  /// columns present, newest row last, at least `min_history()` rows).
  virtual ResourceForecast forecast(const data::TimeSeriesFrame& history) = 0;
  /// Rows of history forecast() needs.
  virtual std::size_t min_history() const { return 1; }
  /// Adaptive hook: re-fit on fresh history. Default: frozen (no-op).
  virtual void refit(const data::TimeSeriesFrame& history) { (void)history; }
};

/// Demand = the newest observation. Adapts to any regime in one tick, pays
/// for it with zero anticipation of bursts.
class LastValueSource final : public ForecastSource {
 public:
  const std::string& name() const override { return name_; }
  ResourceForecast forecast(const data::TimeSeriesFrame& history) override;

 private:
  std::string name_ = "naive-last";
};

/// Demand = max over the trailing `window` observations — the classic
/// peak-provisioning rule: few violations, heavy over-provisioning.
class MaxWindowSource final : public ForecastSource {
 public:
  explicit MaxWindowSource(std::size_t window);
  const std::string& name() const override { return name_; }
  ResourceForecast forecast(const data::TimeSeriesFrame& history) override;
  std::size_t min_history() const override { return 1; }

 private:
  std::string name_;
  std::size_t window_;
};

struct SessionSourceOptions {
  /// Feature columns for the model, target (cpu) first. Must all be
  /// Table-I indicator names present in the history frames.
  std::vector<std::string> features = {"cpu_util_percent",
                                       "mem_util_percent"};
  /// Model + fit recipe; model_name/model select the registry forecaster.
  stream::RetrainOptions retrain;
};

/// A learned forecaster behind the streaming fit recipe. Construction fits
/// generation 1 on the bootstrap history and throws (common::CheckError)
/// if even the gated retries fail — a scheduler must not start without a
/// model. refit() fits the next generation on fresh history; a failed
/// refit keeps the incumbent serving, exactly like the streaming layer.
class SessionSource final : public ForecastSource {
 public:
  SessionSource(std::string name, const data::TimeSeriesFrame& bootstrap,
                SessionSourceOptions options);

  const std::string& name() const override { return name_; }
  ResourceForecast forecast(const data::TimeSeriesFrame& history) override;
  std::size_t min_history() const override {
    return options_.retrain.window.window;
  }
  void refit(const data::TimeSeriesFrame& history) override;

  std::uint64_t generation() const { return generation_; }
  const stream::RetrainOutcome& last_outcome() const { return last_outcome_; }
  const serve::InferenceSession& session() const { return *session_; }

 private:
  /// Fit one generation on `history` (feature-selected tail); installs the
  /// session only when the fit produced one.
  void fit(const data::TimeSeriesFrame& history, const std::string& reason);

  std::string name_;
  SessionSourceOptions options_;
  stream::OnlineNormalizer normalizer_;  ///< frozen at each fit
  std::shared_ptr<const serve::InferenceSession> session_;
  std::uint64_t generation_ = 0;
  stream::RetrainOutcome last_outcome_;
};

}  // namespace rptcn::sched
