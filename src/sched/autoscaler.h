// Autoscaler: forecast demand -> provisioning decision, with headroom and
// scale-down hysteresis.
//
// The policy knobs are the frontier axis: sweeping `headroom` trades SLA
// violations (too little slack, demand spikes past the allocation) against
// over-provision cost (too much slack, capacity idles). The dead-band
// suppresses scale-down churn — an allocation shrinks only when the target
// drops a full `down_deadband` fraction below it, so noise around a level
// does not generate a scale event per tick.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "sched/cluster.h"
#include "sched/forecast.h"

namespace rptcn::sched {

struct AutoscalerOptions {
  /// Multiplier on forecast demand (>= 1 provisions slack above it).
  double headroom = 1.15;
  /// Minimum allocation, as a fraction of one machine — even an idle
  /// entity keeps a sliver so it restarts without a cold allocation.
  double cpu_floor = 0.02;
  double mem_floor = 0.02;
  /// Maximum allocation: one machine (entities do not shard).
  double cpu_cap = 1.0;
  double mem_cap = 1.0;
  /// Shrink only when the target falls below current * (1 - down_deadband).
  double down_deadband = 0.10;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerOptions options = {});

  /// Decide `entity`'s allocation from forecast demand expressed as a
  /// fraction of one machine's capacity. Scale-ups apply immediately;
  /// scale-downs only past the dead-band; otherwise the previous
  /// allocation is kept. Deterministic per (entity history, demand).
  Allocation decide(const std::string& entity,
                    const ResourceForecast& demand_fraction);

  /// Allocation changes so far (an entity's first allocation is not a
  /// scale event — churn, not existence, is what this counts).
  std::size_t scale_events() const { return scale_events_; }

  /// Drop all per-entity state (allocations and the event counter).
  void reset();

 private:
  AutoscalerOptions options_;
  std::unordered_map<std::string, Allocation> current_;
  std::size_t scale_events_ = 0;
};

}  // namespace rptcn::sched
