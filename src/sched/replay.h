// ReplayEvaluator: score provisioning decisions against trace actuals.
//
// The evaluation method is replay (Gritsenko-style): the allocator commits
// a decision from forecasts alone, then the trace's actual demand for the
// same ticks is replayed against it. Per entity-tick the evaluator
// accumulates the over-provision integral (allocated minus used, idle
// capacity) and the under-provision integral (demand minus allocation,
// starved capacity), flags an SLA violation whenever either resource's
// demand exceeds its allocation, and folds in the decision churn
// (migrations, scale events) the loop reports.
//
// Costs are asymmetric a la Goyal: a starved capacity-tick defaults to 8x
// the price of an idle one, because under-provisioning degrades the
// workload while over-provisioning only wastes rent. The per-tick
// aggregation is kept, so score_window() can price any sub-range — the
// drift benches score the post-flip window separately to isolate what
// adaptive retraining buys.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/cluster.h"
#include "sched/forecast.h"

namespace rptcn::sched {

/// Asymmetric provisioning prices (arbitrary cost units).
struct CostModel {
  double over_unit_cost = 1.0;    ///< per idle capacity-tick (cpu or mem)
  double under_unit_cost = 8.0;   ///< per starved capacity-tick
  double violation_cost = 0.05;   ///< flat per violated entity-tick
  double migration_cost = 0.5;    ///< per entity move between machines
  double scale_event_cost = 0.1;  ///< per allocation change

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

/// Aggregate score over a tick range.
struct ReplayScore {
  std::size_t entity_ticks = 0;  ///< scored (entity, tick) pairs
  std::size_t violations = 0;    ///< entity-ticks with demand > allocation
  double violation_rate = 0.0;   ///< violations / entity_ticks
  double over_integral = 0.0;    ///< sum of idle capacity (cpu + mem)
  double under_integral = 0.0;   ///< sum of starved capacity (cpu + mem)
  std::size_t migrations = 0;
  std::size_t scale_events = 0;

  double over_cost = 0.0;
  double under_cost = 0.0;
  double violation_cost = 0.0;
  double migration_cost = 0.0;
  double scale_cost = 0.0;
  double total_cost = 0.0;
};

class ReplayEvaluator {
 public:
  explicit ReplayEvaluator(CostModel cost = {});

  /// Score one entity-tick: `demand` is the actual (fraction of machine
  /// capacity), `allocation` what the allocator had committed for this
  /// tick. Returns true when the tick violated (demand > allocation on
  /// either resource).
  bool observe(std::size_t tick, const ResourceForecast& demand,
               const Allocation& allocation);

  /// Fold decision churn into `tick`'s aggregates.
  void record_migrations(std::size_t tick, std::size_t count);
  void record_scale_events(std::size_t tick, std::size_t count);

  /// Score over every observed tick.
  ReplayScore score() const;
  /// Score over ticks in [begin, end).
  ReplayScore score_window(std::size_t begin, std::size_t end) const;

  const CostModel& cost_model() const { return cost_; }

 private:
  struct TickAgg {
    std::size_t entity_ticks = 0;
    std::size_t violations = 0;
    std::size_t migrations = 0;
    std::size_t scale_events = 0;
    double over = 0.0;
    double under = 0.0;
  };

  TickAgg& at(std::size_t tick);

  CostModel cost_;
  std::vector<TickAgg> ticks_;  ///< indexed by tick
};

}  // namespace rptcn::sched
