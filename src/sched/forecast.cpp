#include "sched/forecast.h"

#include <algorithm>

#include "common/check.h"

namespace rptcn::sched {

namespace {

const std::vector<double>& column_checked(const data::TimeSeriesFrame& history,
                                          const char* name) {
  RPTCN_CHECK(history.has(name) && history.length() > 0,
              "forecast history needs a non-empty \"" << name << "\" column");
  return history.column(name);
}

double last_mem(const data::TimeSeriesFrame& history) {
  return column_checked(history, "mem_util_percent").back();
}

}  // namespace

ResourceForecast LastValueSource::forecast(
    const data::TimeSeriesFrame& history) {
  ResourceForecast f;
  f.cpu = column_checked(history, "cpu_util_percent").back();
  f.mem = last_mem(history);
  return f;
}

MaxWindowSource::MaxWindowSource(std::size_t window)
    : name_("naive-max" + std::to_string(window)), window_(window) {
  RPTCN_CHECK(window_ > 0, "MaxWindowSource window must be >= 1");
}

ResourceForecast MaxWindowSource::forecast(
    const data::TimeSeriesFrame& history) {
  const std::vector<double>& cpu = column_checked(history, "cpu_util_percent");
  const std::size_t span = std::min(window_, cpu.size());
  ResourceForecast f;
  f.cpu = *std::max_element(cpu.end() - static_cast<std::ptrdiff_t>(span),
                            cpu.end());
  f.mem = last_mem(history);
  return f;
}

// ---------------------------------------------------------------------------
// SessionSource
// ---------------------------------------------------------------------------

SessionSource::SessionSource(std::string name,
                             const data::TimeSeriesFrame& bootstrap,
                             SessionSourceOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  RPTCN_CHECK(!options_.features.empty(),
              "SessionSource needs >= 1 feature (target first)");
  fit(bootstrap, "bootstrap:" + name_);
  RPTCN_CHECK(session_ != nullptr,
              "SessionSource \"" << name_ << "\" bootstrap fit failed: "
                                 << (last_outcome_.error.empty()
                                         ? "quality gate rejected every attempt"
                                         : last_outcome_.error));
}

void SessionSource::fit(const data::TimeSeriesFrame& history,
                        const std::string& reason) {
  const data::TimeSeriesFrame selected = history.select(options_.features);
  const std::size_t span =
      std::min(options_.retrain.history, selected.length());
  RPTCN_CHECK(span > options_.retrain.window.window,
              "SessionSource \"" << name_ << "\": " << span
                                 << " history rows cannot fill a window of "
                                 << options_.retrain.window.window);
  const data::TimeSeriesFrame tail =
      selected.slice(selected.length() - span, span);

  // Same normalisation discipline as the streaming stack: min-max fitted
  // over exactly the rows the model trains on, then frozen for serving.
  stream::OnlineNormalizer normalizer(options_.features);
  std::vector<double> row(options_.features.size());
  for (std::size_t t = 0; t < tail.length(); ++t) {
    for (std::size_t f = 0; f < row.size(); ++f) row[f] = tail.column(f)[t];
    normalizer.observe(row);
  }
  normalizer.freeze();

  stream::FittedGeneration g = stream::fit_generation_gated(
      tail, normalizer, options_.retrain, generation_ + 1, reason);
  last_outcome_ = g.outcome;
  if (g.session == nullptr) return;  // incumbent keeps serving
  session_ = std::move(g.session);
  normalizer_ = std::move(normalizer);
  ++generation_;
}

void SessionSource::refit(const data::TimeSeriesFrame& history) {
  fit(history, "refit:" + name_);
}

ResourceForecast SessionSource::forecast(
    const data::TimeSeriesFrame& history) {
  const std::size_t window = options_.retrain.window.window;
  const data::TimeSeriesFrame selected = history.select(options_.features);
  const std::size_t n = selected.length();
  RPTCN_CHECK(n >= window, "SessionSource \"" << name_ << "\" needs "
                                              << window << " rows, got " << n);

  // The trailing window, normalised with the float cast of
  // IngestChannel::latest_window — the model sees bit-identical inputs to
  // the streaming serving path.
  const std::size_t features = options_.features.size();
  Tensor x({1, features, window});
  for (std::size_t f = 0; f < features; ++f) {
    const std::vector<double>& col = selected.column(f);
    float* dst = x.raw() + f * window;
    for (std::size_t t = 0; t < window; ++t)
      dst[t] =
          static_cast<float>(normalizer_.normalize(f, col[n - window + t]));
  }
  const Tensor out = session_->run(x);
  ResourceForecast f;
  f.cpu = normalizer_.denormalize(0, static_cast<double>(out.raw()[0]));
  f.mem = last_mem(history);
  return f;
}

}  // namespace rptcn::sched
