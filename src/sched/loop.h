// SchedulerLoop: the closed predict -> provision -> replay -> score loop.
//
// One loop drives a set of entity traces through a forecast source per
// entity, an Autoscaler, the ClusterModel packer, and the
// ReplayEvaluator:
//
//   every `decision_interval` ticks:
//     (optionally) refit the forecast sources on trailing history
//     forecast each entity's next-tick demand from history before the tick
//     autoscale: demand * headroom -> per-entity allocation
//     pack: FFD placement, migrations counted
//   every tick:
//     replay the actual demand against the committed allocation
//
// Decisions are strictly causal: the decision at tick t sees rows [0, t)
// only, and its allocations are scored against ticks [t, next decision).
// Entities the packer could not place score as fully under-provisioned
// (allocation zero) until a later round packs them again — failing to
// place is priced, not ignored.
//
// The loop is single-threaded and deterministic: same traces, sources and
// options -> bit-identical scores. Observability: sched/decisions_total,
// sched/migrations_total, sched/scale_events_total,
// sched/sla_violations_total, sched/infeasible_packs_total,
// sched/machines_used, sched/forecast_seconds, sched/pack_seconds, and a
// "sched/decision" trace span per round.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/timeseries.h"
#include "obs/metrics.h"
#include "sched/autoscaler.h"
#include "sched/cluster.h"
#include "sched/forecast.h"
#include "sched/replay.h"

namespace rptcn::sched {

/// One entity's recorded actuals (all eight Table-I columns).
struct EntityTrace {
  std::string id;
  data::TimeSeriesFrame frame;
};

struct LoopOptions {
  std::vector<MachineSpec> machines = {{}, {}};
  AutoscalerOptions autoscaler;
  CostModel cost;
  /// Warm-up rows before the first decision (history for the forecasters;
  /// ticks before this are not scored).
  std::size_t bootstrap_ticks = 128;
  /// Re-forecast / re-pack every this many ticks.
  std::size_t decision_interval = 8;
  /// Adaptive mode: refit every source each `refit_interval` ticks past
  /// bootstrap (0 = frozen, sources keep their bootstrap fit).
  std::size_t refit_interval = 0;
  /// Trailing rows handed to forecast()/refit().
  std::size_t refit_history = 512;
  /// Metrics tenant label for the sched/* series (empty = unlabeled).
  std::string tenant;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

struct LoopResult {
  ReplayScore score;          ///< full-run score
  ReplayEvaluator evaluator;  ///< kept for score_window() on sub-ranges
  std::size_t decisions = 0;
  std::size_t refits = 0;           ///< refit calls across sources
  std::size_t infeasible_packs = 0;  ///< rounds with >= 1 unplaced entity
  std::size_t scored_ticks = 0;     ///< ticks replayed against decisions

  LoopResult() : evaluator(CostModel{}) {}
};

class SchedulerLoop {
 public:
  /// Traces must share the eight Table-I columns; the loop runs over
  /// [0, min trace length).
  SchedulerLoop(std::vector<EntityTrace> traces, LoopOptions options);

  /// Drive the loop with one forecast source per entity (index-aligned
  /// with the traces). Sources may be shared between entities — a shared
  /// source is refit once per refit round, on the history of the first
  /// entity bound to it.
  LoopResult run(const std::vector<std::shared_ptr<ForecastSource>>& sources);

  std::size_t length() const { return length_; }
  const std::vector<EntityTrace>& traces() const { return traces_; }

 private:
  std::vector<EntityTrace> traces_;
  LoopOptions options_;
  std::size_t length_ = 0;

  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& decisions_counter_;
  obs::Counter& migrations_counter_;
  obs::Counter& scale_events_counter_;
  obs::Counter& violations_counter_;
  obs::Counter& infeasible_counter_;
  obs::Gauge& machines_used_gauge_;
  obs::Histogram& forecast_hist_;
  obs::Histogram& pack_hist_;
};

}  // namespace rptcn::sched
