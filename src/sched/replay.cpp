#include "sched/replay.h"

#include <algorithm>

#include "common/check.h"

namespace rptcn::sched {

void CostModel::validate() const {
  RPTCN_CHECK(over_unit_cost >= 0.0 && under_unit_cost >= 0.0 &&
                  violation_cost >= 0.0 && migration_cost >= 0.0 &&
                  scale_event_cost >= 0.0,
              "CostModel prices must be >= 0");
}

ReplayEvaluator::ReplayEvaluator(CostModel cost) : cost_(cost) {
  cost_.validate();
}

ReplayEvaluator::TickAgg& ReplayEvaluator::at(std::size_t tick) {
  if (tick >= ticks_.size()) ticks_.resize(tick + 1);
  return ticks_[tick];
}

bool ReplayEvaluator::observe(std::size_t tick, const ResourceForecast& demand,
                              const Allocation& allocation) {
  TickAgg& agg = at(tick);
  ++agg.entity_ticks;
  const double cpu_demand = std::max(demand.cpu, 0.0);
  const double mem_demand = std::max(demand.mem, 0.0);
  agg.over += std::max(allocation.cpu - cpu_demand, 0.0) +
              std::max(allocation.mem - mem_demand, 0.0);
  agg.under += std::max(cpu_demand - allocation.cpu, 0.0) +
               std::max(mem_demand - allocation.mem, 0.0);
  const bool violated =
      cpu_demand > allocation.cpu || mem_demand > allocation.mem;
  if (violated) ++agg.violations;
  return violated;
}

void ReplayEvaluator::record_migrations(std::size_t tick, std::size_t count) {
  at(tick).migrations += count;
}

void ReplayEvaluator::record_scale_events(std::size_t tick,
                                          std::size_t count) {
  at(tick).scale_events += count;
}

ReplayScore ReplayEvaluator::score() const {
  return score_window(0, ticks_.size());
}

ReplayScore ReplayEvaluator::score_window(std::size_t begin,
                                          std::size_t end) const {
  ReplayScore s;
  const std::size_t stop = std::min(end, ticks_.size());
  for (std::size_t t = begin; t < stop; ++t) {
    const TickAgg& agg = ticks_[t];
    s.entity_ticks += agg.entity_ticks;
    s.violations += agg.violations;
    s.migrations += agg.migrations;
    s.scale_events += agg.scale_events;
    s.over_integral += agg.over;
    s.under_integral += agg.under;
  }
  s.violation_rate = s.entity_ticks == 0
                         ? 0.0
                         : static_cast<double>(s.violations) /
                               static_cast<double>(s.entity_ticks);
  s.over_cost = s.over_integral * cost_.over_unit_cost;
  s.under_cost = s.under_integral * cost_.under_unit_cost;
  s.violation_cost = static_cast<double>(s.violations) * cost_.violation_cost;
  s.migration_cost = static_cast<double>(s.migrations) * cost_.migration_cost;
  s.scale_cost = static_cast<double>(s.scale_events) * cost_.scale_event_cost;
  s.total_cost = s.over_cost + s.under_cost + s.violation_cost +
                 s.migration_cost + s.scale_cost;
  return s;
}

}  // namespace rptcn::sched
