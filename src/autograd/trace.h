// Tape trace: introspection hooks the planned training step compiles from.
//
// When a Recording is active on the current thread, every supported ag:: op
// appends one OpRecord describing the node it built (kind, operands, scalar
// payload, RNG stream state for dropout), and Variable::backward appends the
// nodes whose backward closures actually fire, in firing order. The planned
// training-step compiler (graph/train.cpp) walks both lists to re-emit the
// exact same arithmetic as flat TensorOps.
//
// Ops without a record (anything not in OpKind) simply leave a gap: the
// compiler treats any non-leaf node it cannot resolve to a record as
// unsupported and falls back to the eager step. Recording costs one
// thread-local load per op when inactive.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace rptcn::ag::trace {

using autograd::Node;
using NodePtr = std::shared_ptr<autograd::Node>;

enum class OpKind {
  kAdd,
  kMul,
  kLinear,
  kRelu,
  kSigmoid,
  kTanh,
  kConv1d,
  kWeightNorm,
  kDropout,
  kSpatialDropout,
  kSoftmaxLastdim,
  kMulBcastChannel,
  kSumLastdim,
  kTimeSlice,
  kTimeReverse,
  kConcatCols,
  kSliceCols,
  kMseLoss,
  kMaeLoss,
  kPinballLoss,
};

struct OpRecord {
  OpKind kind = OpKind::kAdd;
  NodePtr result;
  std::array<NodePtr, 3> in{};  // operand nodes; unused slots stay null
  std::size_t a = 0;            // conv1d: dilation; slice_cols: start;
                                // time_slice: t
  std::size_t b = 0;            // conv1d: pad flag (1 = causal); slice_cols:
                                // count
  float scalar = 0.0f;          // dropout: p; pinball: tau
  Rng* rng = nullptr;           // dropout: the net's stream (stable address)
  Rng rng_before{0};            // dropout: stream state before this op drew
};

struct TapeTrace {
  std::vector<OpRecord> ops;            // forward, in execution order
  std::vector<Node*> backward_order;    // closures fired, in firing order
};

/// True when a Recording is active on this thread.
bool active();

/// Append a forward record (no-op when inactive).
void record(OpRecord r);

/// Append a backward-order entry (no-op when inactive).
void record_backward(Node* n);

/// RAII scope that routes record()/record_backward() into `sink`.
/// Scopes do not nest; constructing a second one on the same thread throws.
class Recording {
 public:
  explicit Recording(TapeTrace* sink);
  ~Recording();
  Recording(const Recording&) = delete;
  Recording& operator=(const Recording&) = delete;
};

}  // namespace rptcn::ag::trace
