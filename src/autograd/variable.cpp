#include "autograd/variable.h"

#include <unordered_set>

#include "autograd/trace.h"
#include "tensor/tensor_ops.h"

namespace rptcn {

namespace autograd {

namespace {
thread_local bool g_grad_enabled = true;
}

bool grad_enabled() { return g_grad_enabled; }

void Node::accumulate(const Tensor& g) {
  RPTCN_CHECK(g.same_shape(value), "gradient shape " << g.shape_string()
                                                     << " != value shape "
                                                     << value.shape_string());
  if (!grad_initialized) {
    grad = g;
    grad_initialized = true;
  } else {
    add_inplace(grad, g);
  }
}

}  // namespace autograd

NoGradScope::NoGradScope() : previous_(autograd::g_grad_enabled) {
  autograd::g_grad_enabled = false;
}

NoGradScope::~NoGradScope() { autograd::g_grad_enabled = previous_; }

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<autograd::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

bool Variable::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

const Tensor& Variable::value() const {
  RPTCN_CHECK(defined(), "value() on undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  RPTCN_CHECK(defined(), "mutable_value() on undefined Variable");
  return node_->value;
}

const Tensor& Variable::grad() const {
  RPTCN_CHECK(defined(), "grad() on undefined Variable");
  if (!node_->grad_initialized) {
    // Lazily materialise a zero gradient so callers can always read it.
    node_->grad = Tensor::zeros(node_->value.shape());
    node_->grad_initialized = true;
  }
  return node_->grad;
}

void Variable::zero_grad() {
  RPTCN_CHECK(defined(), "zero_grad() on undefined Variable");
  node_->grad = Tensor{};
  node_->grad_initialized = false;
}

namespace {
// Iterative post-order topological sort (avoids deep recursion on long
// per-timestep chains such as unrolled LSTMs).
void topo_sort(const std::shared_ptr<autograd::Node>& root,
               std::vector<autograd::Node*>& order) {
  std::unordered_set<autograd::Node*> visited;
  struct Frame {
    autograd::Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      autograd::Node* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}
}  // namespace

void Variable::backward() {
  RPTCN_CHECK(defined(), "backward() on undefined Variable");
  RPTCN_CHECK(node_->value.size() == 1,
              "backward() without seed requires a scalar output, got shape "
                  << node_->value.shape_string());
  backward(Tensor::ones(node_->value.shape()));
}

void Variable::backward(const Tensor& seed) {
  RPTCN_CHECK(defined(), "backward() on undefined Variable");
  node_->accumulate(seed);
  std::vector<autograd::Node*> order;
  topo_sort(node_, order);
  // Post-order puts parents before children; sweep children-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    autograd::Node* n = *it;
    if (n->backward_fn && n->grad_initialized) {
      ag::trace::record_backward(n);
      n->backward_fn(*n);
    }
  }
}

Variable Variable::detach() const {
  RPTCN_CHECK(defined(), "detach() on undefined Variable");
  return Variable(node_->value, /*requires_grad=*/false);
}

}  // namespace rptcn
