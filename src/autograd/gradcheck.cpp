#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace rptcn::ag {

GradCheckResult gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    const std::vector<Tensor>& input_values, float eps, float atol,
    float rtol) {
  GradCheckResult result;

  // Analytic gradients: one forward + backward on sum(f(x)).
  std::vector<Variable> inputs;
  inputs.reserve(input_values.size());
  for (const auto& t : input_values)
    inputs.emplace_back(t, /*requires_grad=*/true);
  Variable out = sum_all(f(inputs));
  out.backward();

  const auto eval_sum = [&](const std::vector<Tensor>& vals) -> double {
    NoGradScope no_grad;
    std::vector<Variable> vars;
    vars.reserve(vals.size());
    for (const auto& t : vals) vars.emplace_back(t, false);
    return static_cast<double>(rptcn::sum(f(vars).value()));
  };

  std::vector<Tensor> work = input_values;
  for (std::size_t vi = 0; vi < work.size(); ++vi) {
    const Tensor& analytic = inputs[vi].grad();
    for (std::size_t i = 0; i < work[vi].size(); ++i) {
      const float orig = work[vi][i];
      work[vi][i] = orig + eps;
      const double up = eval_sum(work);
      work[vi][i] = orig - eps;
      const double down = eval_sum(work);
      work[vi][i] = orig;
      const float numeric = static_cast<float>((up - down) / (2.0 * eps));
      const float got = analytic[i];
      const float err = std::fabs(got - numeric);
      result.max_abs_error = std::max(result.max_abs_error, err);
      if (err > atol + rtol * std::fabs(numeric)) {
        result.ok = false;
        if (result.message.empty()) {
          std::ostringstream oss;
          oss << "input " << vi << " element " << i << ": analytic " << got
              << " vs numeric " << numeric << " (err " << err << ")";
          result.message = oss.str();
        }
      }
    }
  }
  return result;
}

}  // namespace rptcn::ag
