// Finite-difference gradient verification for autograd ops.
//
// Used by the test suite to validate every backward implementation against a
// central-difference numerical Jacobian-vector product.
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace rptcn::ag {

struct GradCheckResult {
  bool ok = true;
  float max_abs_error = 0.0f;   ///< worst |analytic - numeric| over all inputs
  std::string message;          ///< describes the first failure, if any
};

/// Check d(sum of f(inputs)) / d(inputs) against central differences.
///
/// `f` must be a pure function of its inputs (re-invoked many times).
/// Inputs are perturbed elementwise by eps; analytic grads come from one
/// backward() pass. Tolerance is abs+rel like allclose.
GradCheckResult gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    const std::vector<Tensor>& input_values, float eps = 1e-3f,
    float atol = 2e-2f, float rtol = 2e-2f);

}  // namespace rptcn::ag
