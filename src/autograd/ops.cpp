#include "autograd/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "autograd/trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "tensor/dispatch.h"
#include "tensor/tensor_ops.h"

namespace rptcn::ag {

namespace {

using autograd::Node;
using NodePtr = std::shared_ptr<Node>;

/// Build a graph node. If gradients are globally disabled or no parent
/// requires them, the result is a detached leaf and `make_backward` is not
/// invoked (saved tensors for backward are never captured).
template <typename MakeBackward>
Variable make_node(Tensor value, std::vector<Variable> parents,
                   const char* op_name, MakeBackward&& make_backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op = op_name;
  bool needs_grad = false;
  if (autograd::grad_enabled()) {
    for (const auto& p : parents)
      if (p.defined() && p.requires_grad()) needs_grad = true;
  }
  if (needs_grad) {
    node->requires_grad = true;
    for (const auto& p : parents)
      if (p.defined()) node->parents.push_back(p.node());
    node->backward_fn = make_backward();
  }
  return Variable(std::move(node));
}

void check_defined(const Variable& v, const char* op) {
  RPTCN_CHECK(v.defined(), op << ": undefined operand");
}

/// Pass-through that appends a trace record when a trace::Recording is
/// active. Operand slots are positional; undefined operands (e.g. a missing
/// bias) leave their slot null.
Variable rec(trace::OpKind kind, Variable result,
             std::initializer_list<const Variable*> ins, std::size_t a = 0,
             std::size_t b = 0, float scalar = 0.0f) {
  if (trace::active()) {
    trace::OpRecord r;
    r.kind = kind;
    r.result = result.node();
    std::size_t slot = 0;
    for (const Variable* v : ins) {
      if (v != nullptr && v->defined()) r.in[slot] = v->node();
      ++slot;
    }
    r.a = a;
    r.b = b;
    r.scalar = scalar;
    trace::record(std::move(r));
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// arithmetic
// ---------------------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  check_defined(a, "add");
  check_defined(b, "add");
  Tensor out = rptcn::add(a.value(), b.value());
  return rec(trace::OpKind::kAdd,
             make_node(std::move(out), {a, b}, "add",
                       [a, b] {
                         return [an = a.node(), bn = b.node()](Node& self) {
                           if (an->requires_grad) an->accumulate(self.grad);
                           if (bn->requires_grad) bn->accumulate(self.grad);
                         };
                       }),
             {&a, &b});
}

Variable sub(const Variable& a, const Variable& b) {
  check_defined(a, "sub");
  check_defined(b, "sub");
  Tensor out = rptcn::sub(a.value(), b.value());
  return make_node(std::move(out), {a, b}, "sub", [a, b] {
    return [an = a.node(), bn = b.node()](Node& self) {
      if (an->requires_grad) an->accumulate(self.grad);
      if (bn->requires_grad) bn->accumulate(rptcn::neg(self.grad));
    };
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_defined(a, "mul");
  check_defined(b, "mul");
  Tensor out = rptcn::mul(a.value(), b.value());
  return rec(
      trace::OpKind::kMul,
      make_node(std::move(out), {a, b}, "mul",
                [a, b] {
                  return [an = a.node(), bn = b.node()](Node& self) {
                    if (an->requires_grad)
                      an->accumulate(rptcn::mul(self.grad, bn->value));
                    if (bn->requires_grad)
                      bn->accumulate(rptcn::mul(self.grad, an->value));
                  };
                }),
      {&a, &b});
}

Variable add_scalar(const Variable& a, float s) {
  check_defined(a, "add_scalar");
  Tensor out = rptcn::add_scalar(a.value(), s);
  return make_node(std::move(out), {a}, "add_scalar", [a] {
    return [an = a.node()](Node& self) { an->accumulate(self.grad); };
  });
}

Variable mul_scalar(const Variable& a, float s) {
  check_defined(a, "mul_scalar");
  Tensor out = rptcn::mul_scalar(a.value(), s);
  return make_node(std::move(out), {a}, "mul_scalar", [a, s] {
    return [an = a.node(), s](Node& self) {
      an->accumulate(rptcn::mul_scalar(self.grad, s));
    };
  });
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0f); }

// ---------------------------------------------------------------------------
// linear algebra
// ---------------------------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  check_defined(a, "matmul");
  check_defined(b, "matmul");
  Tensor out = rptcn::matmul(a.value(), b.value());
  return make_node(std::move(out), {a, b}, "matmul", [a, b] {
    return [an = a.node(), bn = b.node()](Node& self) {
      // dA = dC * B^T; dB = A^T * dC.
      if (an->requires_grad)
        an->accumulate(rptcn::matmul_nt(self.grad, bn->value));
      if (bn->requires_grad)
        bn->accumulate(rptcn::matmul_tn(an->value, self.grad));
    };
  });
}

Variable linear(const Variable& x, const Variable& w, const Variable& b) {
  check_defined(x, "linear");
  check_defined(w, "linear");
  Tensor out =
      fwd::linear(x.value(), w.value(), b.defined() ? &b.value() : nullptr);
  return rec(trace::OpKind::kLinear,
             make_node(std::move(out), {x, w, b}, "linear", [x, w, b] {
    return [xn = x.node(), wn = w.node(),
            bn = b.defined() ? b.node() : nullptr](Node& self) {
      // y = x w^T + b: dx = dy w; dw = dy^T x; db = colsum(dy).
      if (xn->requires_grad)
        xn->accumulate(rptcn::matmul(self.grad, wn->value));
      if (wn->requires_grad)
        wn->accumulate(rptcn::matmul_tn(self.grad, xn->value));
      if (bn && bn->requires_grad)
        bn->accumulate(rptcn::sum_cols(self.grad));
    };
  }),
             {&x, &w, &b});
}

// ---------------------------------------------------------------------------
// activations
// ---------------------------------------------------------------------------

Variable relu(const Variable& a) {
  check_defined(a, "relu");
  Tensor out = rptcn::relu(a.value());
  return rec(trace::OpKind::kRelu,
             make_node(std::move(out), {a}, "relu",
                       [a] {
                         return [an = a.node()](Node& self) {
                           Tensor g = self.grad;
                           const auto pv = an->value.data();
                           auto pg = g.data();
                           for (std::size_t i = 0; i < pg.size(); ++i)
                             if (pv[i] <= 0.0f) pg[i] = 0.0f;
                           an->accumulate(g);
                         };
                       }),
             {&a});
}

Variable sigmoid(const Variable& a) {
  check_defined(a, "sigmoid");
  Tensor out = rptcn::sigmoid(a.value());
  return rec(trace::OpKind::kSigmoid,
             make_node(std::move(out), {a}, "sigmoid",
                       [a] {
                         return [an = a.node()](Node& self) {
                           // dx = dy * s * (1 - s), s the forward output.
                           Tensor g = self.grad;
                           const auto ps = self.value.data();
                           auto pg = g.data();
                           for (std::size_t i = 0; i < pg.size(); ++i)
                             pg[i] *= ps[i] * (1.0f - ps[i]);
                           an->accumulate(g);
                         };
                       }),
             {&a});
}

Variable tanh_v(const Variable& a) {
  check_defined(a, "tanh");
  Tensor out = rptcn::tanh_t(a.value());
  return rec(trace::OpKind::kTanh,
             make_node(std::move(out), {a}, "tanh",
                       [a] {
                         return [an = a.node()](Node& self) {
                           Tensor g = self.grad;
                           const auto ps = self.value.data();
                           auto pg = g.data();
                           for (std::size_t i = 0; i < pg.size(); ++i)
                             pg[i] *= 1.0f - ps[i] * ps[i];
                           an->accumulate(g);
                         };
                       }),
             {&a});
}

// ---------------------------------------------------------------------------
// shape
// ---------------------------------------------------------------------------

Variable reshape(const Variable& a, std::vector<std::size_t> shape) {
  check_defined(a, "reshape");
  Tensor out = a.value().reshape(shape);
  return make_node(std::move(out), {a}, "reshape", [a] {
    return [an = a.node()](Node& self) {
      an->accumulate(self.grad.reshape(an->value.shape()));
    };
  });
}

// ---------------------------------------------------------------------------
// dilated causal convolution (paper eqs. 3 and 4)
//
// Two kernel paths compute the same convolution:
//  * direct — the original per-(sample, channel) offset loops; wins on tiny
//    shapes where patch traffic would dominate.
//  * im2col+GEMM — forward, dX and dW lowered onto the packed blocked GEMM
//    (tensor_ops gemm_accumulate). Samples are batched into one patch
//    matrix patches[Cin*K, n_chunk*T_out] so the GEMM sees wide panels:
//      forward: Y = W[Cout, Cin*K] × patches            (+ bias prefill)
//      dW     : dW += dY × patchesᵀ                      (trans_b)
//      dX     : cols = Wᵀ × dY, then col2im scatter-add  (trans_a)
//    Scratch (patches, gathered dY, per-chunk Y) lives in the thread-local
//    buffer pool, so steady-state training reuses the same few buffers.
// Dispatch is shape-only (never data-dependent); see Conv1dImpl in ops.h.
// ---------------------------------------------------------------------------

namespace {

std::atomic<Conv1dImpl>& conv1d_impl_flag() {
  static std::atomic<Conv1dImpl> impl{Conv1dImpl::kAuto};
  return impl;
}

// Below this many fused multiply-adds the direct loops win (patch build +
// pack overhead dominate the GEMM). Calibrated with bench/micro_kernels.
constexpr std::size_t kConv1dGemmMinFlops = 1u << 14;
// Patch-matrix cap: chunk the batch so im2col scratch stays cache-friendly
// and bounded (~8 MiB) for any batch size.
constexpr std::size_t kConv1dChunkFloats = 1u << 21;

bool conv1d_use_gemm(std::size_t n, std::size_t cin, std::size_t cout,
                     std::size_t k, std::size_t t_out) {
  switch (conv1d_impl_flag().load(std::memory_order_relaxed)) {
    case Conv1dImpl::kDirect:
      return false;
    case Conv1dImpl::kIm2col:
      return true;
    case Conv1dImpl::kAuto:
    default:
      return 2 * n * cout * cin * k * t_out >= kConv1dGemmMinFlops;
  }
}

struct Conv1dMetrics {
  obs::Counter& gemm_calls =
      obs::metrics().counter("kernel/conv1d_gemm_calls");
  obs::Counter& direct_calls =
      obs::metrics().counter("kernel/conv1d_direct_calls");
};

Conv1dMetrics& conv1d_metrics() {
  static Conv1dMetrics* m = new Conv1dMetrics();
  return *m;
}

/// Valid output range [t_lo, t_hi) for tap offset off = kk*d - pad, i.e. the
/// t with 0 <= t + off < t_in.
inline void tap_range(std::ptrdiff_t off, std::size_t t_in, std::size_t t_out,
                      std::size_t& t_lo, std::size_t& t_hi) {
  // Clamp both ends to [0, t_out]: with pad > T_in a tap can sit entirely in
  // the zero padding (t_lo would exceed t_out), which must yield an empty
  // range, not an out-of-bounds fill in the im2col writer.
  t_lo = off < 0 ? std::min(static_cast<std::size_t>(-off), t_out) : 0u;
  const std::ptrdiff_t hi =
      std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(t_out),
                               static_cast<std::ptrdiff_t>(t_in) - off);
  t_hi = hi > static_cast<std::ptrdiff_t>(t_lo)
             ? static_cast<std::size_t>(hi)
             : t_lo;
}

/// y[n,co,t] = b[co] + sum_{ci,k} w[co,ci,k] * x[n,ci,t + k*d - P]
/// (indices outside [0,T) read as zero — left padding).
Tensor conv1d_forward_direct(const Tensor& x, const Tensor& w, const Tensor* b,
                             std::size_t d, std::size_t pad,
                             std::size_t t_out) {
  const std::size_t n = x.dim(0), cin = x.dim(1), t_in = x.dim(2);
  const std::size_t cout = w.dim(0), k = w.dim(2);
  Tensor y({n, cout, t_out});
  fwd::conv1d_direct_strided(x.raw(), cin * t_in, t_in, w.raw(),
                             b != nullptr ? b->raw() : nullptr, n, cin, t_in,
                             cout, k, d, pad, t_out, y.raw(), cout * t_out,
                             t_out);
  return y;
}

/// dx[n,ci,t+off] += w[co,ci,k] * dy[n,co,t] — transpose of the forward.
void conv1d_dx_direct(const Tensor& dy, const Tensor& w, Tensor& dx,
                      std::size_t d, std::size_t pad) {
  fwd::conv1d_dx_direct_raw(dy.raw(), w.raw(), dx.dim(0), dx.dim(1),
                            dx.dim(2), w.dim(0), w.dim(2), d, pad, dy.dim(2),
                            dx.raw());
}

/// dw[co,ci,k] += sum_{n,t} dy[n,co,t] * x[n,ci,t+off].
void conv1d_dw_direct(const Tensor& dy, const Tensor& x, Tensor& dw,
                      std::size_t d, std::size_t pad) {
  fwd::conv1d_dw_direct_raw(dy.raw(), x.raw(), x.dim(0), x.dim(1), x.dim(2),
                            dw.dim(0), dw.dim(2), d, pad, dy.dim(2), dw.raw());
}

/// Number of samples per im2col chunk for a given patch-row length.
std::size_t conv1d_chunk(std::size_t n, std::size_t ck, std::size_t t_out) {
  const std::size_t per_sample = std::max<std::size_t>(1, ck * t_out);
  return std::min(n, std::max<std::size_t>(1, kConv1dChunkFloats / per_sample));
}

/// Causal-padding-aware im2col over a chunk of nc sample-major samples:
/// patches[(ci*K + kk), s*T_out + t] = x[s, ci, t + kk*d - pad], zero
/// outside [0, T_in). Thin wrapper over the strided writer with the
/// sample-major [N,Cin,T] strides.
void im2col_chunk(const float* x, std::size_t nc, std::size_t cin,
                  std::size_t t_in, std::size_t k, std::size_t d,
                  std::size_t pad, std::size_t t_out, float* patches) {
  fwd::im2col_strided(x, cin * t_in, t_in, nc, cin, t_in, k, d, pad, t_out,
                      patches);
}

/// Transpose of im2col_chunk: dx[s, ci, t + kk*d - pad] += cols[row, s, t].
/// Rows are scattered in fixed (ci, kk, s, t) order — deterministic.
void col2im_chunk_add(const float* cols, std::size_t nc, std::size_t cin,
                      std::size_t t_in, std::size_t k, std::size_t d,
                      std::size_t pad, std::size_t t_out, float* dx) {
  const std::size_t nt = nc * t_out;
  for (std::size_t ci = 0; ci < cin; ++ci) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* row = cols + (ci * k + kk) * nt;
      const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk * d) -
                                 static_cast<std::ptrdiff_t>(pad);
      std::size_t t_lo, t_hi;
      tap_range(off, t_in, t_out, t_lo, t_hi);
      for (std::size_t s = 0; s < nc; ++s) {
        const float* seg = row + s * t_out;
        float* dxrow = dx + (s * cin + ci) * t_in;
        for (std::size_t t = t_lo; t < t_hi; ++t)
          dxrow[static_cast<std::size_t>(static_cast<std::ptrdiff_t>(t) +
                                         off)] += seg[t];
      }
    }
  }
}

/// Gather dy[n0+s, co, t] into the chunk layout dyg[co, s*T_out + t]
/// (contiguous row copies).
void gather_dy_chunk(const float* dy, std::size_t cout, std::size_t t_out,
                     std::size_t n0, std::size_t nc, float* dyg) {
  const std::size_t nt = nc * t_out;
  for (std::size_t s = 0; s < nc; ++s)
    for (std::size_t co = 0; co < cout; ++co)
      std::copy_n(dy + ((n0 + s) * cout + co) * t_out, t_out,
                  dyg + co * nt + s * t_out);
}

Tensor conv1d_forward_gemm(const Tensor& x, const Tensor& w, const Tensor* b,
                           std::size_t d, std::size_t pad, std::size_t t_out) {
  const std::size_t n = x.dim(0), cin = x.dim(1), t_in = x.dim(2);
  const std::size_t cout = w.dim(0), k = w.dim(2);
  Tensor y({n, cout, t_out});
  fwd::conv1d_forward_gemm_raw(x.raw(), w.raw(),
                               b != nullptr ? b->raw() : nullptr, n, cin, t_in,
                               cout, k, d, pad, t_out, y.raw());
  return y;
}

void conv1d_dx_gemm(const Tensor& dy, const Tensor& w, Tensor& dx,
                    std::size_t d, std::size_t pad) {
  fwd::conv1d_dx_gemm_raw(dy.raw(), w.raw(), dx.dim(0), dx.dim(1), dx.dim(2),
                          w.dim(0), w.dim(2), d, pad, dy.dim(2), dx.raw());
}

void conv1d_dw_gemm(const Tensor& dy, const Tensor& x, Tensor& dw,
                    std::size_t d, std::size_t pad) {
  fwd::conv1d_dw_gemm_raw(dy.raw(), x.raw(), x.dim(0), x.dim(1), x.dim(2),
                          dw.dim(0), dw.dim(2), d, pad, dy.dim(2), dw.raw());
}

/// Shared weight-norm forward. `norms_out`, when non-null, receives the
/// per-channel L2 norms the backward closure reuses.
Tensor weight_norm_forward(const Tensor& v, const Tensor& g,
                           std::vector<float>* norms_out) {
  RPTCN_CHECK(v.rank() >= 2, "weight_norm expects rank >= 2");
  const std::size_t cout = v.dim(0);
  RPTCN_CHECK(g.rank() == 1 && g.dim(0) == cout,
              "weight_norm gain must be [Cout]");
  const std::size_t row = v.size() / cout;

  Tensor out(v.shape());
  if (norms_out != nullptr) norms_out->resize(cout);
  const float* pv = v.raw();
  float* po = out.raw();
  for (std::size_t c = 0; c < cout; ++c) {
    double s = 0.0;
    for (std::size_t i = 0; i < row; ++i) {
      const float vv = pv[c * row + i];
      s += static_cast<double>(vv) * vv;
    }
    const float nrm = static_cast<float>(std::sqrt(std::max(s, 1e-24)));
    if (norms_out != nullptr) (*norms_out)[c] = nrm;
    const float scale = g.at(c) / nrm;
    for (std::size_t i = 0; i < row; ++i) po[c * row + i] = pv[c * row + i] * scale;
  }
  return out;
}

}  // namespace

namespace fwd {

Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor* b,
              std::size_t dilation, std::ptrdiff_t left_pad,
              std::size_t dispatch_n) {
  RPTCN_CHECK(x.rank() == 3,
              "conv1d input must be [N,Cin,T], got " << x.shape_string());
  RPTCN_CHECK(w.rank() == 3,
              "conv1d weight must be [Cout,Cin,K], got " << w.shape_string());
  RPTCN_CHECK(x.dim(1) == w.dim(1), "conv1d channel mismatch: x "
                                        << x.shape_string() << ", w "
                                        << w.shape_string());
  RPTCN_CHECK(dilation >= 1, "conv1d dilation must be >= 1");
  const std::size_t k = w.dim(2);
  const std::size_t pad = left_pad < 0 ? (k - 1) * dilation
                                       : static_cast<std::size_t>(left_pad);
  if (b != nullptr)
    RPTCN_CHECK(b->rank() == 1 && b->dim(0) == w.dim(0),
                "conv1d bias must be [Cout]");
  const std::size_t k_reach = (k - 1) * dilation;
  const std::size_t t_in = x.dim(2);
  RPTCN_CHECK(t_in + pad >= k_reach,
              "conv1d: input too short for kernel reach " << k_reach);
  const std::size_t t_out = t_in + pad - k_reach;
  const bool use_gemm = conv1d_use_gemm(
      dispatch_n != 0 ? dispatch_n : x.dim(0), x.dim(1), w.dim(0), k, t_out);
  if (obs::enabled())
    (use_gemm ? conv1d_metrics().gemm_calls : conv1d_metrics().direct_calls)
        .add(1);
  return use_gemm ? conv1d_forward_gemm(x, w, b, dilation, pad, t_out)
                  : conv1d_forward_direct(x, w, b, dilation, pad, t_out);
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor* b) {
  RPTCN_CHECK(x.rank() == 2 && w.rank() == 2, "linear expects x[N,F], w[O,F]");
  RPTCN_CHECK(x.dim(1) == w.dim(1), "linear feature mismatch: x "
                                        << x.shape_string() << ", w "
                                        << w.shape_string());
  const std::size_t n = x.dim(0), out_f = w.dim(0);
  Tensor out = rptcn::matmul_nt(x, w);  // [N,O]
  if (b != nullptr) {
    RPTCN_CHECK(b->rank() == 1 && b->dim(0) == out_f,
                "linear bias shape mismatch");
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < out_f; ++j) out.at(i, j) += b->at(j);
  }
  return out;
}

Tensor weight_norm(const Tensor& v, const Tensor& g) {
  return weight_norm_forward(v, g, nullptr);
}

Tensor mul_bcast_channel(const Tensor& a, const Tensor& z) {
  RPTCN_CHECK(a.rank() == 3 && a.dim(1) == 1,
              "attention weights must be [N,1,T], got " << a.shape_string());
  RPTCN_CHECK(z.rank() == 3, "features must be [N,C,T]");
  RPTCN_CHECK(a.dim(0) == z.dim(0) && a.dim(2) == z.dim(2),
              "mul_bcast_channel shape mismatch: " << a.shape_string() << " vs "
                                                   << z.shape_string());
  const std::size_t n = z.dim(0), c = z.dim(1), t = z.dim(2);
  Tensor out({n, c, t});
  for (std::size_t ni = 0; ni < n; ++ni) {
    const float* arow = a.raw() + ni * t;
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float* zrow = z.raw() + (ni * c + ci) * t;
      float* orow = out.raw() + (ni * c + ci) * t;
      for (std::size_t ti = 0; ti < t; ++ti) orow[ti] = arow[ti] * zrow[ti];
    }
  }
  return out;
}

Tensor sum_lastdim(const Tensor& a) {
  RPTCN_CHECK(a.rank() == 3, "sum_lastdim expects [N,C,T]");
  const std::size_t n = a.dim(0), c = a.dim(1), t = a.dim(2);
  Tensor out({n, c});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float* row = a.raw() + (ni * c + ci) * t;
      double s = 0.0;
      for (std::size_t ti = 0; ti < t; ++ti) s += row[ti];
      out.at(ni, ci) = static_cast<float>(s);
    }
  return out;
}

Tensor time_slice(const Tensor& x, std::size_t t) {
  RPTCN_CHECK(x.rank() == 3, "time_slice expects [N,C,T]");
  const std::size_t n = x.dim(0), c = x.dim(1), tt = x.dim(2);
  RPTCN_CHECK(t < tt, "time_slice index " << t << " out of T=" << tt);
  Tensor out({n, c});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci)
      out.at(ni, ci) = x.at(ni, ci, t);
  return out;
}

Tensor time_reverse(const Tensor& x) {
  RPTCN_CHECK(x.rank() == 3, "time_reverse expects [N,C,T]");
  const std::size_t n = x.dim(0), c = x.dim(1), t = x.dim(2);
  Tensor out({n, c, t});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float* src = x.raw() + (ni * c + ci) * t;
      float* dst = out.raw() + (ni * c + ci) * t;
      for (std::size_t ti = 0; ti < t; ++ti) dst[ti] = src[t - 1 - ti];
    }
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  RPTCN_CHECK(a.rank() == 2 && b.rank() == 2,
              "concat_cols expects rank-2 operands");
  RPTCN_CHECK(a.dim(0) == b.dim(0), "concat_cols batch mismatch");
  const std::size_t n = a.dim(0), fa = a.dim(1), fb = b.dim(1);
  Tensor out({n, fa + fb});
  for (std::size_t i = 0; i < n; ++i) {
    std::copy_n(a.raw() + i * fa, fa, out.raw() + i * (fa + fb));
    std::copy_n(b.raw() + i * fb, fb, out.raw() + i * (fa + fb) + fa);
  }
  return out;
}

Tensor slice_cols(const Tensor& x, std::size_t start, std::size_t count) {
  RPTCN_CHECK(x.rank() == 2,
              "slice_cols expects rank-2 input, got " << x.shape_string());
  const std::size_t n = x.dim(0), f = x.dim(1);
  RPTCN_CHECK(count > 0 && start + count <= f,
              "slice_cols [" << start << ", " << (start + count)
                             << ") out of range for " << f << " columns");
  Tensor out({n, count});
  for (std::size_t i = 0; i < n; ++i)
    std::copy_n(x.raw() + i * f + start, count, out.raw() + i * count);
  return out;
}

Conv1dLowering conv1d_lowering(std::size_t n, std::size_t cin,
                               std::size_t cout, std::size_t k,
                               std::size_t t_in, std::size_t dilation,
                               std::ptrdiff_t left_pad,
                               std::size_t dispatch_n) {
  RPTCN_CHECK(dilation >= 1, "conv1d dilation must be >= 1");
  Conv1dLowering lo;
  lo.pad = left_pad < 0 ? (k - 1) * dilation
                        : static_cast<std::size_t>(left_pad);
  const std::size_t k_reach = (k - 1) * dilation;
  RPTCN_CHECK(t_in + lo.pad >= k_reach,
              "conv1d: input too short for kernel reach " << k_reach);
  lo.t_out = t_in + lo.pad - k_reach;
  lo.use_gemm =
      conv1d_use_gemm(dispatch_n != 0 ? dispatch_n : n, cin, cout, k, lo.t_out);
  // Chunking always sees the true batch size (it bounds scratch, it does not
  // pick a kernel), exactly as conv1d_forward_gemm computes it.
  lo.chunk = lo.use_gemm ? conv1d_chunk(n, cin * k, lo.t_out) : 0;
  return lo;
}

void im2col_strided(const float* x, std::size_t xs, std::size_t xc,
                    std::size_t nc, std::size_t cin, std::size_t t_in,
                    std::size_t k, std::size_t d, std::size_t pad,
                    std::size_t t_out, float* patches) {
  // Dispatched patch writer (tensor/dispatch.h). Pure data movement, so
  // every tier is exact; the body lives in tensor/kernels_detail.h.
  kernels().im2col(x, xs, xc, nc, cin, t_in, k, d, pad, t_out, patches);
}

void conv1d_direct_strided(const float* x, std::size_t xs, std::size_t xc,
                           const float* w, const float* b, std::size_t n,
                           std::size_t cin, std::size_t t_in, std::size_t cout,
                           std::size_t k, std::size_t d, std::size_t pad,
                           std::size_t t_out, float* y, std::size_t ys,
                           std::size_t yc, bool relu) {
#pragma omp parallel for collapse(2) schedule(static) if (n * cout > 1 && kernel_parallelism_allowed())
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t co = 0; co < cout; ++co) {
      float* yrow = y + ni * ys + co * yc;
      // Unconditional prefill: arena rows (unlike fresh Tensors) are not
      // zero-initialised, and rewriting zeros on the eager path is free.
      const float bias = b != nullptr ? b[co] : 0.0f;
      for (std::size_t t = 0; t < t_out; ++t) yrow[t] = bias;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + ni * xs + ci * xc;
        const float* wrow = w + (co * cin + ci) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float wv = wrow[kk];
          if (wv == 0.0f) continue;
          // input offset of x relative to output index t
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk * d) -
                                     static_cast<std::ptrdiff_t>(pad);
          std::size_t t_lo, t_hi;
          tap_range(off, t_in, t_out, t_lo, t_hi);
          for (std::size_t t = t_lo; t < t_hi; ++t)
            yrow[t] += wv * xrow[static_cast<std::size_t>(
                           static_cast<std::ptrdiff_t>(t) + off)];
        }
      }
      if (relu)
        for (std::size_t t = 0; t < t_out; ++t)
          yrow[t] = yrow[t] > 0.0f ? yrow[t] : 0.0f;
    }
  }
}

void conv1d_1x1_strided_serial(const float* x, std::size_t xs, std::size_t xc,
                               const float* w, const float* b, std::size_t n,
                               std::size_t cin, std::size_t cout,
                               std::size_t t, float* y, std::size_t ys,
                               std::size_t yc, bool relu) {
  // Channel-major on both sides (sample stride == t) makes every channel
  // row contiguous across the whole batch, collapsing the (sample, time)
  // loops into one fused pass of n*t floats per (cout, cin) pair. The
  // per-element accumulation sequence is the same either way.
  const bool fused_rows = xs == t && ys == t;
  const std::size_t rows = fused_rows ? 1 : n;
  const std::size_t len = fused_rows ? n * t : t;
  for (std::size_t co = 0; co < cout; ++co) {
    const float* wrow = w + co * cin;  // [Cout, Cin, 1] weight layout
    for (std::size_t ni = 0; ni < rows; ++ni) {
      float* yrow = y + ni * ys + co * yc;
      const float bias = b != nullptr ? b[co] : 0.0f;
      for (std::size_t i = 0; i < len; ++i) yrow[i] = bias;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float wv = wrow[ci];
        if (wv == 0.0f) continue;
        const float* xrow = x + ni * xs + ci * xc;
        for (std::size_t i = 0; i < len; ++i) yrow[i] += wv * xrow[i];
      }
      if (relu)
        for (std::size_t i = 0; i < len; ++i)
          yrow[i] = yrow[i] > 0.0f ? yrow[i] : 0.0f;
    }
  }
}

bool conv1d_uses_gemm(std::size_t n, std::size_t cin, std::size_t cout,
                      std::size_t k, std::size_t t_out) {
  return conv1d_use_gemm(n, cin, cout, k, t_out);
}

void conv1d_forward_gemm_raw(const float* x, const float* w, const float* b,
                             std::size_t n, std::size_t cin, std::size_t t_in,
                             std::size_t cout, std::size_t k, std::size_t d,
                             std::size_t pad, std::size_t t_out, float* y) {
  const std::size_t ck = cin * k;
  const std::size_t chunk = conv1d_chunk(n, ck, t_out);
  pool::Scratch patches(ck * chunk * t_out);
  pool::Scratch ybuf(cout * chunk * t_out);
  for (std::size_t n0 = 0; n0 < n; n0 += chunk) {
    const std::size_t nc = std::min(chunk, n - n0);
    const std::size_t nt = nc * t_out;
    im2col_chunk(x + n0 * cin * t_in, nc, cin, t_in, k, d, pad, t_out,
                 patches.data());
    if (b != nullptr) {
      for (std::size_t co = 0; co < cout; ++co)
        std::fill_n(ybuf.data() + co * nt, nt, b[co]);
    } else {
      std::fill_n(ybuf.data(), cout * nt, 0.0f);
    }
    // Y[co, s·T+t] += W2[co, ci·K+kk] · patches[ci·K+kk, s·T+t]
    gemm_accumulate(cout, nt, ck, w, ck, false, patches.data(), nt, false,
                    ybuf.data());
    for (std::size_t s = 0; s < nc; ++s)
      for (std::size_t co = 0; co < cout; ++co)
        std::copy_n(ybuf.data() + co * nt + s * t_out, t_out,
                    y + ((n0 + s) * cout + co) * t_out);
  }
}

void conv1d_dx_direct_raw(const float* dy, const float* w, std::size_t n,
                          std::size_t cin, std::size_t t_in, std::size_t cout,
                          std::size_t k, std::size_t d, std::size_t pad,
                          std::size_t t_out, float* dx) {
#pragma omp parallel for schedule(static) if (n > 1 && kernel_parallelism_allowed())
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t co = 0; co < cout; ++co) {
      const float* gyrow = dy + (ni * cout + co) * t_out;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        float* dxrow = dx + (ni * cin + ci) * t_in;
        const float* wrow = w + (co * cin + ci) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float wv = wrow[kk];
          if (wv == 0.0f) continue;
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk * d) -
                                     static_cast<std::ptrdiff_t>(pad);
          std::size_t t_lo, t_hi;
          tap_range(off, t_in, t_out, t_lo, t_hi);
          for (std::size_t t = t_lo; t < t_hi; ++t)
            dxrow[static_cast<std::size_t>(static_cast<std::ptrdiff_t>(t) +
                                           off)] += wv * gyrow[t];
        }
      }
    }
  }
}

void conv1d_dx_gemm_raw(const float* dy, const float* w, std::size_t n,
                        std::size_t cin, std::size_t t_in, std::size_t cout,
                        std::size_t k, std::size_t d, std::size_t pad,
                        std::size_t t_out, float* dx) {
  const std::size_t ck = cin * k;
  const std::size_t chunk = conv1d_chunk(n, ck, t_out);
  pool::Scratch cols(ck * chunk * t_out);
  pool::Scratch dyg(cout * chunk * t_out);
  for (std::size_t n0 = 0; n0 < n; n0 += chunk) {
    const std::size_t nc = std::min(chunk, n - n0);
    const std::size_t nt = nc * t_out;
    gather_dy_chunk(dy, cout, t_out, n0, nc, dyg.data());
    std::fill_n(cols.data(), ck * nt, 0.0f);
    // cols[ci·K+kk, s·T+t] += W2ᵀ[ci·K+kk, co] · dY[co, s·T+t]
    gemm_accumulate(ck, nt, cout, w, ck, true, dyg.data(), nt, false,
                    cols.data());
    col2im_chunk_add(cols.data(), nc, cin, t_in, k, d, pad, t_out,
                     dx + n0 * cin * t_in);
  }
}

void conv1d_dw_direct_raw(const float* dy, const float* x, std::size_t n,
                          std::size_t cin, std::size_t t_in, std::size_t cout,
                          std::size_t k, std::size_t d, std::size_t pad,
                          std::size_t t_out, float* dw) {
#pragma omp parallel for schedule(static) if (cout > 1 && kernel_parallelism_allowed())
  for (std::size_t co = 0; co < cout; ++co) {
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* gyrow = dy + (ni * cout + co) * t_out;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + (ni * cin + ci) * t_in;
        float* dwrow = dw + (co * cin + ci) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk * d) -
                                     static_cast<std::ptrdiff_t>(pad);
          std::size_t t_lo, t_hi;
          tap_range(off, t_in, t_out, t_lo, t_hi);
          double s = 0.0;
          for (std::size_t t = t_lo; t < t_hi; ++t)
            s += static_cast<double>(gyrow[t]) *
                 xrow[static_cast<std::size_t>(
                     static_cast<std::ptrdiff_t>(t) + off)];
          dwrow[kk] += static_cast<float>(s);
        }
      }
    }
  }
}

void conv1d_dw_gemm_raw(const float* dy, const float* x, std::size_t n,
                        std::size_t cin, std::size_t t_in, std::size_t cout,
                        std::size_t k, std::size_t d, std::size_t pad,
                        std::size_t t_out, float* dw) {
  const std::size_t ck = cin * k;
  const std::size_t chunk = conv1d_chunk(n, ck, t_out);
  pool::Scratch patches(ck * chunk * t_out);
  pool::Scratch dyg(cout * chunk * t_out);
  for (std::size_t n0 = 0; n0 < n; n0 += chunk) {
    const std::size_t nc = std::min(chunk, n - n0);
    const std::size_t nt = nc * t_out;
    im2col_chunk(x + n0 * cin * t_in, nc, cin, t_in, k, d, pad, t_out,
                 patches.data());
    gather_dy_chunk(dy, cout, t_out, n0, nc, dyg.data());
    // dW2[co, ci·K+kk] += dY[co, s·T+t] · patchesᵀ[s·T+t, ci·K+kk];
    // chunks accumulate in fixed n0 order — deterministic.
    gemm_accumulate(cout, ck, nt, dyg.data(), nt, false, patches.data(), nt,
                    true, dw);
  }
}

void conv1d_db_raw(const float* dy, std::size_t n, std::size_t cout,
                   std::size_t t_out, float* db) {
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t co = 0; co < cout; ++co) {
      const float* gyrow = dy + (ni * cout + co) * t_out;
      double s = 0.0;
      for (std::size_t t = 0; t < t_out; ++t) s += gyrow[t];
      db[co] += static_cast<float>(s);
    }
}

bool conv1d_gemm_single_chunk(std::size_t n, std::size_t cin, std::size_t k,
                              std::size_t t_out) {
  return conv1d_chunk(n, cin * k, t_out) >= n;
}

void conv1d_im2col_full(const float* x, std::size_t n, std::size_t cin,
                        std::size_t t_in, std::size_t k, std::size_t d,
                        std::size_t pad, std::size_t t_out, float* patches) {
  im2col_chunk(x, n, cin, t_in, k, d, pad, t_out, patches);
}

void conv1d_gather_dy_full(const float* dy, std::size_t n, std::size_t cout,
                           std::size_t t_out, float* dyg) {
  gather_dy_chunk(dy, cout, t_out, 0, n, dyg);
}

void conv1d_forward_gemm_prepatched(const float* patches, const float* w,
                                    const float* b, std::size_t n,
                                    std::size_t cin, std::size_t cout,
                                    std::size_t k, std::size_t t_out,
                                    float* y) {
  const std::size_t ck = cin * k;
  const std::size_t nt = n * t_out;
  pool::Scratch ybuf(cout * nt);
  if (b != nullptr) {
    for (std::size_t co = 0; co < cout; ++co)
      std::fill_n(ybuf.data() + co * nt, nt, b[co]);
  } else {
    std::fill_n(ybuf.data(), cout * nt, 0.0f);
  }
  gemm_accumulate(cout, nt, ck, w, ck, false, patches, nt, false, ybuf.data());
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t co = 0; co < cout; ++co)
      std::copy_n(ybuf.data() + co * nt + s * t_out, t_out,
                  y + (s * cout + co) * t_out);
}

void conv1d_dx_gemm_pregathered(const float* dyg, const float* w,
                                std::size_t n, std::size_t cin,
                                std::size_t t_in, std::size_t cout,
                                std::size_t k, std::size_t d, std::size_t pad,
                                std::size_t t_out, float* dx) {
  const std::size_t ck = cin * k;
  const std::size_t nt = n * t_out;
  pool::Scratch cols(ck * nt);
  std::fill_n(cols.data(), ck * nt, 0.0f);
  gemm_accumulate(ck, nt, cout, w, ck, true, dyg, nt, false, cols.data());
  col2im_chunk_add(cols.data(), n, cin, t_in, k, d, pad, t_out, dx);
}

void conv1d_dw_gemm_prepatched(const float* dyg, const float* patches,
                               std::size_t n, std::size_t cin,
                               std::size_t cout, std::size_t k,
                               std::size_t t_out, float* dw) {
  const std::size_t ck = cin * k;
  const std::size_t nt = n * t_out;
  gemm_accumulate(cout, ck, nt, dyg, nt, false, patches, nt, true, dw);
}

}  // namespace fwd

void set_conv1d_impl(Conv1dImpl impl) {
  conv1d_impl_flag().store(impl, std::memory_order_relaxed);
}

Conv1dImpl conv1d_impl() {
  return conv1d_impl_flag().load(std::memory_order_relaxed);
}

Variable conv1d(const Variable& x, const Variable& w, const Variable& b,
                std::size_t dilation, std::ptrdiff_t left_pad) {
  check_defined(x, "conv1d");
  check_defined(w, "conv1d");
  Tensor out = fwd::conv1d(x.value(), w.value(),
                           b.defined() ? &b.value() : nullptr, dilation,
                           left_pad);
  const std::size_t k = w.dim(2);
  const std::size_t pad = left_pad < 0 ? (k - 1) * dilation
                                       : static_cast<std::size_t>(left_pad);
  const std::size_t d = dilation;
  return rec(
      trace::OpKind::kConv1d,
      make_node(std::move(out), {x, w, b}, "conv1d", [x, w, b, d, pad] {
    return [xn = x.node(), wn = w.node(),
            bn = b.defined() ? b.node() : nullptr, d, pad](Node& self) {
      const Tensor& xv = xn->value;
      const Tensor& wv = wn->value;
      const Tensor& dy = self.grad;
      const std::size_t n = xv.dim(0), cout = wv.dim(0), ksz = wv.dim(2);
      const std::size_t t_out = dy.dim(2);
      // Same shape-only dispatch as the forward pass (re-evaluated so the
      // backward honours set_conv1d_impl at backward time too).
      const bool lower = conv1d_use_gemm(n, xv.dim(1), cout, ksz, t_out);

      if (xn->requires_grad) {
        Tensor dx = Tensor::zeros(xv.shape());
        if (lower)
          conv1d_dx_gemm(dy, wv, dx, d, pad);
        else
          conv1d_dx_direct(dy, wv, dx, d, pad);
        xn->accumulate(dx);
      }

      if (wn->requires_grad) {
        Tensor dw = Tensor::zeros(wv.shape());
        if (lower)
          conv1d_dw_gemm(dy, xv, dw, d, pad);
        else
          conv1d_dw_direct(dy, xv, dw, d, pad);
        wn->accumulate(dw);
      }

      if (bn != nullptr && bn->requires_grad) {
        Tensor db = Tensor::zeros({cout});
        for (std::size_t ni = 0; ni < n; ++ni)
          for (std::size_t co = 0; co < cout; ++co) {
            const float* gyrow = dy.raw() + (ni * cout + co) * t_out;
            double s = 0.0;
            for (std::size_t t = 0; t < t_out; ++t) s += gyrow[t];
            db.at(co) += static_cast<float>(s);
          }
        bn->accumulate(db);
      }
    };
  }),
      {&x, &w, &b}, d, pad);
}

// ---------------------------------------------------------------------------
// weight normalisation
// ---------------------------------------------------------------------------

Variable weight_norm(const Variable& v, const Variable& g) {
  check_defined(v, "weight_norm");
  check_defined(g, "weight_norm");
  std::vector<float> norms;
  Tensor out = weight_norm_forward(v.value(), g.value(), &norms);
  const std::size_t cout = v.dim(0);
  const std::size_t row = v.size() / cout;

  return rec(trace::OpKind::kWeightNorm,
             make_node(std::move(out), {v, g}, "weight_norm",
                       [v, g, norms = std::move(norms), row, cout] {
    return [vn = v.node(), gn = g.node(), norms, row, cout](Node& self) {
      const float* pv = vn->value.raw();
      const float* pg = self.grad.raw();
      // Per channel c: w = g_c * v_c / n_c.
      //   dg_c   = (dw_c . v_c) / n_c
      //   dv_c   = g_c/n_c * dw_c - g_c (dw_c . v_c) / n_c^3 * v_c
      Tensor dv = Tensor::zeros(vn->value.shape());
      Tensor dg = Tensor::zeros({cout});
      for (std::size_t c = 0; c < cout; ++c) {
        double dot = 0.0;
        for (std::size_t i = 0; i < row; ++i)
          dot += static_cast<double>(pg[c * row + i]) * pv[c * row + i];
        const float n = norms[c];
        const float gc = gn->value.at(c);
        dg.at(c) = static_cast<float>(dot / n);
        const float a = gc / n;
        const float bcoef = static_cast<float>(gc * dot / (static_cast<double>(n) * n * n));
        float* pdv = dv.raw() + c * row;
        for (std::size_t i = 0; i < row; ++i)
          pdv[i] = a * pg[c * row + i] - bcoef * pv[c * row + i];
      }
      if (vn->requires_grad) vn->accumulate(dv);
      if (gn->requires_grad) gn->accumulate(dg);
    };
  }),
             {&v, &g});
}

// ---------------------------------------------------------------------------
// dropout
// ---------------------------------------------------------------------------

namespace {
Variable apply_mask(const Variable& x, Tensor mask, const char* op) {
  Tensor out = rptcn::mul(x.value(), mask);
  return make_node(std::move(out), {x}, op, [x, mask = std::move(mask)] {
    return [xn = x.node(), mask](Node& self) {
      xn->accumulate(rptcn::mul(self.grad, mask));
    };
  });
}
}  // namespace

Variable dropout(const Variable& x, float p, Rng& rng, bool training) {
  check_defined(x, "dropout");
  RPTCN_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0,1)");
  if (!training || p == 0.0f) return x;
  const bool tracing = trace::active();
  Rng rng_before{0};
  if (tracing) rng_before = rng;  // stream state before this op's draws
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(x.value().shape());
  for (auto& m : mask.data()) m = rng.bernoulli(p) ? 0.0f : scale;
  Variable out = apply_mask(x, std::move(mask), "dropout");
  if (tracing) {
    trace::OpRecord r;
    r.kind = trace::OpKind::kDropout;
    r.result = out.node();
    r.in[0] = x.node();
    r.scalar = p;
    r.rng = &rng;
    r.rng_before = rng_before;
    trace::record(std::move(r));
  }
  return out;
}

Variable spatial_dropout(const Variable& x, float p, Rng& rng, bool training) {
  check_defined(x, "spatial_dropout");
  RPTCN_CHECK(x.value().rank() == 3, "spatial_dropout expects [N,C,T]");
  RPTCN_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0,1)");
  if (!training || p == 0.0f) return x;
  const bool tracing = trace::active();
  Rng rng_before{0};
  if (tracing) rng_before = rng;
  const std::size_t n = x.dim(0), c = x.dim(1), t = x.dim(2);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask({n, c, t});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float m = rng.bernoulli(p) ? 0.0f : scale;
      float* row = mask.raw() + (ni * c + ci) * t;
      for (std::size_t ti = 0; ti < t; ++ti) row[ti] = m;
    }
  Variable out = apply_mask(x, std::move(mask), "spatial_dropout");
  if (tracing) {
    trace::OpRecord r;
    r.kind = trace::OpKind::kSpatialDropout;
    r.result = out.node();
    r.in[0] = x.node();
    r.scalar = p;
    r.rng = &rng;
    r.rng_before = rng_before;
    trace::record(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// attention building blocks
// ---------------------------------------------------------------------------

Variable softmax_lastdim_v(const Variable& a) {
  check_defined(a, "softmax");
  Tensor out = rptcn::softmax_lastdim(a.value());
  return rec(trace::OpKind::kSoftmaxLastdim,
             make_node(std::move(out), {a}, "softmax", [a] {
    return [an = a.node()](Node& self) {
      // Rowwise: dx_i = s_i * (g_i - sum_j g_j s_j).
      const Tensor& s = self.value;
      const Tensor& gy = self.grad;
      const std::size_t last = s.shape().back();
      const std::size_t rows = s.size() / last;
      Tensor dx(s.shape());
      for (std::size_t r = 0; r < rows; ++r) {
        const float* ps = s.raw() + r * last;
        const float* pg = gy.raw() + r * last;
        float* pd = dx.raw() + r * last;
        double dot = 0.0;
        for (std::size_t j = 0; j < last; ++j)
          dot += static_cast<double>(pg[j]) * ps[j];
        for (std::size_t j = 0; j < last; ++j)
          pd[j] = ps[j] * (pg[j] - static_cast<float>(dot));
      }
      an->accumulate(dx);
    };
  }),
             {&a});
}

Variable mul_bcast_channel(const Variable& a, const Variable& z) {
  check_defined(a, "mul_bcast_channel");
  check_defined(z, "mul_bcast_channel");
  Tensor out = fwd::mul_bcast_channel(a.value(), z.value());
  return rec(trace::OpKind::kMulBcastChannel,
             make_node(std::move(out), {a, z}, "mul_bcast_channel", [a, z] {
    return [an = a.node(), zn = z.node()](Node& self) {
      const Tensor& av = an->value;
      const Tensor& zv = zn->value;
      const Tensor& gy = self.grad;
      const std::size_t nb = zv.dim(0), cb = zv.dim(1), tb = zv.dim(2);
      if (an->requires_grad) {
        Tensor da = Tensor::zeros(av.shape());
        for (std::size_t ni = 0; ni < nb; ++ni) {
          float* darow = da.raw() + ni * tb;
          for (std::size_t ci = 0; ci < cb; ++ci) {
            const float* zrow = zv.raw() + (ni * cb + ci) * tb;
            const float* grow = gy.raw() + (ni * cb + ci) * tb;
            for (std::size_t ti = 0; ti < tb; ++ti)
              darow[ti] += grow[ti] * zrow[ti];
          }
        }
        an->accumulate(da);
      }
      if (zn->requires_grad) {
        Tensor dz(zv.shape());
        for (std::size_t ni = 0; ni < nb; ++ni) {
          const float* arow = av.raw() + ni * tb;
          for (std::size_t ci = 0; ci < cb; ++ci) {
            const float* grow = gy.raw() + (ni * cb + ci) * tb;
            float* dzrow = dz.raw() + (ni * cb + ci) * tb;
            for (std::size_t ti = 0; ti < tb; ++ti)
              dzrow[ti] = grow[ti] * arow[ti];
          }
        }
        zn->accumulate(dz);
      }
    };
  }),
             {&a, &z});
}

Variable sum_lastdim(const Variable& a) {
  check_defined(a, "sum_lastdim");
  Tensor out = fwd::sum_lastdim(a.value());
  const std::size_t t = a.dim(2);
  return rec(trace::OpKind::kSumLastdim,
             make_node(std::move(out), {a}, "sum_lastdim", [a, t] {
    return [an = a.node(), t](Node& self) {
      const std::size_t nb = self.grad.dim(0), cb = self.grad.dim(1);
      Tensor dx(an->value.shape());
      for (std::size_t ni = 0; ni < nb; ++ni)
        for (std::size_t ci = 0; ci < cb; ++ci) {
          const float g = self.grad.at(ni, ci);
          float* row = dx.raw() + (ni * cb + ci) * t;
          for (std::size_t ti = 0; ti < t; ++ti) row[ti] = g;
        }
      an->accumulate(dx);
    };
  }),
             {&a});
}

Variable time_slice(const Variable& x, std::size_t t) {
  check_defined(x, "time_slice");
  Tensor out = fwd::time_slice(x.value(), t);
  return rec(trace::OpKind::kTimeSlice,
             make_node(std::move(out), {x}, "time_slice",
                       [x, t] {
                         return [xn = x.node(), t](Node& self) {
                           Tensor dx = Tensor::zeros(xn->value.shape());
                           const std::size_t nb = self.grad.dim(0),
                                             cb = self.grad.dim(1);
                           for (std::size_t ni = 0; ni < nb; ++ni)
                             for (std::size_t ci = 0; ci < cb; ++ci)
                               dx.at(ni, ci, t) = self.grad.at(ni, ci);
                           xn->accumulate(dx);
                         };
                       }),
             {&x}, t);
}

// ---------------------------------------------------------------------------
// sequence utilities
// ---------------------------------------------------------------------------

Variable time_reverse(const Variable& x) {
  check_defined(x, "time_reverse");
  Tensor out = fwd::time_reverse(x.value());
  return rec(trace::OpKind::kTimeReverse,
             make_node(std::move(out), {x}, "time_reverse",
                       [x] {
                         return [xn = x.node()](Node& self) {
                           // involution
                           xn->accumulate(fwd::time_reverse(self.grad));
                         };
                       }),
             {&x});
}

Variable concat_cols(const Variable& a, const Variable& b) {
  check_defined(a, "concat_cols");
  check_defined(b, "concat_cols");
  Tensor out = fwd::concat_cols(a.value(), b.value());
  const std::size_t fa = a.dim(1), fb = b.dim(1);
  return rec(trace::OpKind::kConcatCols,
             make_node(std::move(out), {a, b}, "concat_cols", [a, b, fa, fb] {
    return [an = a.node(), bn = b.node(), fa, fb](Node& self) {
      const std::size_t rows = self.grad.dim(0);
      if (an->requires_grad) {
        Tensor da({rows, fa});
        for (std::size_t i = 0; i < rows; ++i)
          std::copy_n(self.grad.raw() + i * (fa + fb), fa, da.raw() + i * fa);
        an->accumulate(da);
      }
      if (bn->requires_grad) {
        Tensor db({rows, fb});
        for (std::size_t i = 0; i < rows; ++i)
          std::copy_n(self.grad.raw() + i * (fa + fb) + fa, fb,
                      db.raw() + i * fb);
        bn->accumulate(db);
      }
    };
  }),
             {&a, &b});
}

Variable slice_cols(const Variable& x, std::size_t start, std::size_t count) {
  check_defined(x, "slice_cols");
  Tensor out = fwd::slice_cols(x.value(), start, count);
  const std::size_t f = x.dim(1);
  return rec(trace::OpKind::kSliceCols,
             make_node(std::move(out), {x}, "slice_cols",
                       [x, start, count, f] {
                         return [xn = x.node(), start, count,
                                 f](Node& self) {
                           const std::size_t rows = self.grad.dim(0);
                           Tensor dx = Tensor::zeros(xn->value.shape());
                           for (std::size_t i = 0; i < rows; ++i)
                             std::copy_n(self.grad.raw() + i * count, count,
                                         dx.raw() + i * f + start);
                           xn->accumulate(dx);
                         };
                       }),
             {&x}, start, count);
}

// ---------------------------------------------------------------------------
// reductions and losses
// ---------------------------------------------------------------------------

Variable sum_all(const Variable& a) {
  check_defined(a, "sum_all");
  Tensor out = Tensor::scalar(rptcn::sum(a.value()));
  return make_node(std::move(out), {a}, "sum_all", [a] {
    return [an = a.node()](Node& self) {
      an->accumulate(Tensor::full(an->value.shape(), self.grad.item()));
    };
  });
}

Variable mean_all(const Variable& a) {
  check_defined(a, "mean_all");
  const float inv = 1.0f / static_cast<float>(a.size());
  Tensor out = Tensor::scalar(rptcn::sum(a.value()) * inv);
  return make_node(std::move(out), {a}, "mean_all", [a, inv] {
    return [an = a.node(), inv](Node& self) {
      an->accumulate(Tensor::full(an->value.shape(), self.grad.item() * inv));
    };
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  check_defined(pred, "mse_loss");
  RPTCN_CHECK(pred.value().same_shape(target),
              "mse_loss shape mismatch: " << pred.value().shape_string()
                                          << " vs " << target.shape_string());
  const std::size_t n = pred.size();
  double acc = 0.0;
  {
    const auto pp = pred.value().data();
    const auto pt = target.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(pp[i]) - pt[i];
      acc += d * d;
    }
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / static_cast<double>(n)));
  return rec(trace::OpKind::kMseLoss,
             make_node(std::move(out), {pred}, "mse_loss", [pred, target, n] {
    return [pn = pred.node(), target, n](Node& self) {
      const float g = self.grad.item() * 2.0f / static_cast<float>(n);
      Tensor dx(pn->value.shape());
      const auto pp = pn->value.data();
      const auto pt = target.data();
      auto pd = dx.data();
      for (std::size_t i = 0; i < n; ++i) pd[i] = g * (pp[i] - pt[i]);
      pn->accumulate(dx);
    };
  }),
             {&pred});
}

Variable mae_loss(const Variable& pred, const Tensor& target) {
  check_defined(pred, "mae_loss");
  RPTCN_CHECK(pred.value().same_shape(target),
              "mae_loss shape mismatch: " << pred.value().shape_string()
                                          << " vs " << target.shape_string());
  const std::size_t n = pred.size();
  double acc = 0.0;
  {
    const auto pp = pred.value().data();
    const auto pt = target.data();
    for (std::size_t i = 0; i < n; ++i)
      acc += std::fabs(static_cast<double>(pp[i]) - pt[i]);
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / static_cast<double>(n)));
  return rec(trace::OpKind::kMaeLoss,
             make_node(std::move(out), {pred}, "mae_loss", [pred, target, n] {
    return [pn = pred.node(), target, n](Node& self) {
      const float g = self.grad.item() / static_cast<float>(n);
      Tensor dx(pn->value.shape());
      const auto pp = pn->value.data();
      const auto pt = target.data();
      auto pd = dx.data();
      for (std::size_t i = 0; i < n; ++i) {
        const float d = pp[i] - pt[i];
        pd[i] = d > 0.0f ? g : (d < 0.0f ? -g : 0.0f);
      }
      pn->accumulate(dx);
    };
  }),
             {&pred});
}

Variable pinball_loss(const Variable& pred, const Tensor& target, float tau) {
  check_defined(pred, "pinball_loss");
  RPTCN_CHECK(tau > 0.0f && tau < 1.0f, "tau must be in (0,1)");
  RPTCN_CHECK(pred.value().same_shape(target),
              "pinball_loss shape mismatch: " << pred.value().shape_string()
                                              << " vs "
                                              << target.shape_string());
  const std::size_t n = pred.size();
  double acc = 0.0;
  {
    const auto pp = pred.value().data();
    const auto pt = target.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double diff = static_cast<double>(pt[i]) - pp[i];  // y - yhat
      acc += diff >= 0.0 ? tau * diff : (tau - 1.0) * diff;
    }
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / static_cast<double>(n)));
  return rec(trace::OpKind::kPinballLoss,
             make_node(std::move(out), {pred}, "pinball_loss",
                       [pred, target, tau, n] {
    return [pn = pred.node(), target, tau, n](Node& self) {
      // d/dyhat of rho_tau(y - yhat): -tau if y > yhat, (1 - tau) if y < yhat.
      const float g = self.grad.item() / static_cast<float>(n);
      Tensor dx(pn->value.shape());
      const auto pp = pn->value.data();
      const auto pt = target.data();
      auto pd = dx.data();
      for (std::size_t i = 0; i < n; ++i) {
        const float diff = pt[i] - pp[i];
        pd[i] = diff > 0.0f ? -tau * g : (diff < 0.0f ? (1.0f - tau) * g : 0.0f);
      }
      pn->accumulate(dx);
    };
  }),
             {&pred}, 0, 0, tau);
}

}  // namespace rptcn::ag
