// Differentiable operations on Variables.
//
// Conventions:
//  * Batched 2-D activations are [N, F]; temporal activations are [N, C, T]
//    (batch, channels, time), matching the paper's Conv1d formulation.
//  * Linear weights are [out, in]; Conv1d weights are [Cout, Cin, K].
//  * Ops validate shapes with RPTCN_CHECK and build backward closures only
//    when gradients are enabled and some input requires them.
#pragma once

#include "autograd/variable.h"

namespace rptcn {
class Rng;
}

namespace rptcn::ag {

// -- arithmetic ---------------------------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
Variable neg(const Variable& a);

// -- linear algebra -------------------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n].
Variable matmul(const Variable& a, const Variable& b);
/// y[N,O] = x[N,F] * w[O,F]^T (+ b[O] if b.defined()).
Variable linear(const Variable& x, const Variable& w, const Variable& b);

// -- activations -----------------------------------------------------------------
Variable relu(const Variable& a);
Variable sigmoid(const Variable& a);
Variable tanh_v(const Variable& a);

// -- shape -------------------------------------------------------------------------
Variable reshape(const Variable& a, std::vector<std::size_t> shape);

// -- temporal convolution (eq. 3/4 of the paper) -------------------------------------
/// Dilated causal 1-D convolution.
///   x: [N, Cin, T], w: [Cout, Cin, K], b: [Cout] or undefined.
/// left_pad < 0 selects causal padding (K-1)*dilation, which preserves T.
/// Output: [N, Cout, T + left_pad - (K-1)*dilation].
///
/// Forward, dX and dW are lowered onto the packed blocked GEMM via a
/// causal-padding-aware im2col patch matrix whenever the shape is large
/// enough to amortise the patch traffic (see Conv1dImpl); small shapes keep
/// the direct loops. Both paths compute the same convolution; they differ
/// only in float summation order (parity is gradcheck-tested).
Variable conv1d(const Variable& x, const Variable& w, const Variable& b,
                std::size_t dilation = 1, std::ptrdiff_t left_pad = -1);

/// Conv1d kernel dispatch. kAuto (default) picks by a flop-count cutoff:
/// large shapes lower to im2col+GEMM, tiny ones keep the direct loop.
/// kDirect / kIm2col pin one path — used by the parity tests and the
/// direct-vs-lowered benches. Process-wide; shape-dependent only, so
/// dispatch never depends on data.
enum class Conv1dImpl { kAuto, kDirect, kIm2col };
void set_conv1d_impl(Conv1dImpl impl);
Conv1dImpl conv1d_impl();

/// Weight normalisation: w[c,...] = g[c] * v[c,...] / ||v[c,...]||_2.
/// Used inside the TCN residual block (Fig. 6).
Variable weight_norm(const Variable& v, const Variable& g);

// -- regularisation -----------------------------------------------------------------
/// Inverted elementwise dropout: keeps with prob 1-p, scales by 1/(1-p).
/// Identity when !training or p == 0.
Variable dropout(const Variable& x, float p, Rng& rng, bool training);
/// Spatial (channel) dropout on [N, C, T]: zeroes entire channels.
Variable spatial_dropout(const Variable& x, float p, Rng& rng, bool training);

// -- attention building blocks (eqs. 7/8) ----------------------------------------------
/// Softmax over the last dimension (any rank >= 1).
Variable softmax_lastdim_v(const Variable& a);
/// Broadcast product a[N,1,T] ⊙ z[N,C,T] -> [N,C,T].
Variable mul_bcast_channel(const Variable& a, const Variable& z);
/// Sum over the last (time) dimension: [N,C,T] -> [N,C].
Variable sum_lastdim(const Variable& a);
/// Select one timestep: [N,C,T] -> [N,C].
Variable time_slice(const Variable& x, std::size_t t);

// -- sequence utilities ---------------------------------------------------------------
/// Reverse the time axis: [N,C,T] -> [N,C,T] with t' = T-1-t.
/// Used by the bidirectional-LSTM baseline.
Variable time_reverse(const Variable& x);
/// Concatenate along the feature axis: [N,A] ++ [N,B] -> [N,A+B].
Variable concat_cols(const Variable& a, const Variable& b);
/// Column slice of a 2-D activation: [N,F] -> [N,count] starting at `start`.
/// Used to peel per-gate activations out of the LSTM's fused pre-activation
/// GEMM; backward scatters into the sliced columns.
Variable slice_cols(const Variable& x, std::size_t start, std::size_t count);

// -- tape-free forward kernels ------------------------------------------------------------
// Tensor-level forward implementations shared by the Variable ops above and
// the serving layer (src/serve). Each Variable op computes its forward value
// by calling the matching fwd:: function, so an inference path built from
// these is bit-identical to the autograd forward by construction — there is
// exactly one copy of every forward numeric.
namespace fwd {

/// Dilated causal Conv1d forward (same contract as ag::conv1d). dispatch_n
/// overrides the batch size used in the kAuto flop cutoff: the kAuto
/// decision depends on N, so a batched call can pick a different summation
/// order than an N=1 call on the same layer. The serving path passes
/// dispatch_n=1 so a coalesced batch reproduces the single-window forward
/// bit-for-bit; dispatch_n=0 (default) uses the true batch size, which is
/// what training does. kDirect/kIm2col pins win over dispatch_n either way.
Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor* b,
              std::size_t dilation = 1, std::ptrdiff_t left_pad = -1,
              std::size_t dispatch_n = 0);
/// y[N,O] = x[N,F] * w[O,F]^T (+ b[O] if non-null).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor* b);
/// w[c,...] = g[c] * v[c,...] / ||v[c,...]||_2.
Tensor weight_norm(const Tensor& v, const Tensor& g);
/// Broadcast product a[N,1,T] ⊙ z[N,C,T] -> [N,C,T].
Tensor mul_bcast_channel(const Tensor& a, const Tensor& z);
/// Sum over the last (time) dimension: [N,C,T] -> [N,C].
Tensor sum_lastdim(const Tensor& a);
/// Select one timestep: [N,C,T] -> [N,C].
Tensor time_slice(const Tensor& x, std::size_t t);
/// Reverse the time axis: [N,C,T] -> [N,C,T] with t' = T-1-t.
Tensor time_reverse(const Tensor& x);
/// Concatenate along the feature axis: [N,A] ++ [N,B] -> [N,A+B].
Tensor concat_cols(const Tensor& a, const Tensor& b);
/// Column slice of a 2-D activation: [N,F] -> [N,count] starting at `start`.
Tensor slice_cols(const Tensor& x, std::size_t start, std::size_t count);

// -- conv1d lowering internals, exposed for the graph planner -----------------
// A captured plan must make exactly the dispatch decisions and run exactly
// the kernels the eager conv makes, or the two executors stop being
// bit-identical (the GEMM small/blocked paths round differently against a
// bias-prefilled C). These entry points are that shared substrate.

/// Shape-only lowering geometry for one conv1d call. `dispatch_n` as in
/// fwd::conv1d (0 = true batch size, 1 = serving pin); `chunk` always uses
/// the true batch size, mirroring conv1d_forward_gemm.
struct Conv1dLowering {
  bool use_gemm = false;  ///< im2col+GEMM vs direct loops
  std::size_t pad = 0;    ///< resolved left padding
  std::size_t t_out = 0;  ///< output time length
  std::size_t chunk = 0;  ///< samples per im2col chunk (GEMM path)
};
Conv1dLowering conv1d_lowering(std::size_t n, std::size_t cin,
                               std::size_t cout, std::size_t k,
                               std::size_t t_in, std::size_t dilation,
                               std::ptrdiff_t left_pad,
                               std::size_t dispatch_n = 0);

/// Causal-padding-aware im2col over nc samples with explicit input strides:
/// patches[(ci*K + kk), s*T_out + t] = x[s*xs + ci*xc + (t + kk*d - pad)],
/// zero outside [0, T_in). xs/xc express the input layout — sample-major
/// [N,C,T] uses (C*T_in, T_in); the planner's channel-major [C, N*T_in]
/// activations use (T_in, N*T_in). The eager kernels call this with the
/// sample-major strides, so both executors share one loop body.
void im2col_strided(const float* x, std::size_t xs, std::size_t xc,
                    std::size_t nc, std::size_t cin, std::size_t t_in,
                    std::size_t k, std::size_t d, std::size_t pad,
                    std::size_t t_out, float* patches);

/// Direct conv1d forward with explicit strides on input and output:
/// y[s*ys + co*yc + t] = b[co] + sum w[co,ci,kk] * x[s*xs + ci*xc + t+kk*d-pad].
/// b may be null (output rows are then zero-initialised). Identical loop
/// body (and OpenMP policy) as the eager direct kernel — it IS the eager
/// kernel, parameterised by layout.
void conv1d_direct_strided(const float* x, std::size_t xs, std::size_t xc,
                           const float* w, const float* b, std::size_t n,
                           std::size_t cin, std::size_t t_in, std::size_t cout,
                           std::size_t k, std::size_t d, std::size_t pad,
                           std::size_t t_out, float* y, std::size_t ys,
                           std::size_t yc, bool relu = false);

/// Serial pointwise (k=1, pad=0) conv for the planned executor: every
/// output element goes through the exact accumulation sequence of
/// conv1d_direct_strided — bias first, then one add per input channel in
/// ascending order with the zero-weight skip — so it is bit-identical to
/// the eager direct kernel; only the scheduling differs (no OpenMP region,
/// and channel-major rows on both sides collapse the sample/time loops
/// into one contiguous pass of n*t floats per channel pair). The planner
/// uses it because it knows at capture time that these convs are far too
/// small to amortise a parallel-region fork. `relu` fuses the epilogue.
void conv1d_1x1_strided_serial(const float* x, std::size_t xs, std::size_t xc,
                               const float* w, const float* b, std::size_t n,
                               std::size_t cin, std::size_t cout,
                               std::size_t t, float* y, std::size_t ys,
                               std::size_t yc, bool relu);

// -- raw conv1d kernels for the planned training step -------------------------
// Sample-major [N,C,T] layouts throughout. These are the loop bodies of the
// eager tape kernels (forward GEMM path, dX, dW, db), hoisted out of their
// Tensor wrappers so the planned training step can run them against arena
// pointers: same translation unit, same loops, bit-identical results.
// dX, dW and db ACCUMULATE into their outputs; callers zero-fill first,
// exactly as the tape closures allocate Tensor::zeros.

/// Shape-only GEMM-vs-direct dispatch (honours set_conv1d_impl), the same
/// predicate fwd::conv1d and the backward closures evaluate per call.
bool conv1d_uses_gemm(std::size_t n, std::size_t cin, std::size_t cout,
                      std::size_t k, std::size_t t_out);
void conv1d_forward_gemm_raw(const float* x, const float* w, const float* b,
                             std::size_t n, std::size_t cin, std::size_t t_in,
                             std::size_t cout, std::size_t k, std::size_t d,
                             std::size_t pad, std::size_t t_out, float* y);
void conv1d_dx_direct_raw(const float* dy, const float* w, std::size_t n,
                          std::size_t cin, std::size_t t_in, std::size_t cout,
                          std::size_t k, std::size_t d, std::size_t pad,
                          std::size_t t_out, float* dx);
void conv1d_dx_gemm_raw(const float* dy, const float* w, std::size_t n,
                        std::size_t cin, std::size_t t_in, std::size_t cout,
                        std::size_t k, std::size_t d, std::size_t pad,
                        std::size_t t_out, float* dx);
void conv1d_dw_direct_raw(const float* dy, const float* x, std::size_t n,
                          std::size_t cin, std::size_t t_in, std::size_t cout,
                          std::size_t k, std::size_t d, std::size_t pad,
                          std::size_t t_out, float* dw);
void conv1d_dw_gemm_raw(const float* dy, const float* x, std::size_t n,
                        std::size_t cin, std::size_t t_in, std::size_t cout,
                        std::size_t k, std::size_t d, std::size_t pad,
                        std::size_t t_out, float* dw);
/// db[co] += per-(sample, channel) double row-sums of dy, in (n, co) order.
void conv1d_db_raw(const float* dy, std::size_t n, std::size_t cout,
                   std::size_t t_out, float* db);

// -- single-chunk prepatched conv1d GEMM kernels ------------------------------
// The chunked GEMM kernels above each rebuild their own patch matrix
// (forward, dW) and dy gather (dX, dW) from x/dy on every call. When the
// whole batch fits one im2col chunk, those intermediates are pure functions
// of x and dy with layouts that do not depend on the consumer — so a planned
// program can materialise each ONCE per step and feed all three GEMMs. The
// kernels below are the single-chunk bodies of the *_raw kernels with the
// rebuild hoisted out: same fills, same gemm_accumulate calls with identical
// operand layouts, same scatter order — bit-identical by construction.
// Callers must check conv1d_gemm_single_chunk first; the prepatched kernels
// assume nt = n * t_out.

/// True when conv1d_chunk covers the whole batch in one chunk, i.e. the
/// chunked kernels would run exactly one (im2col, GEMM) round.
bool conv1d_gemm_single_chunk(std::size_t n, std::size_t cin, std::size_t k,
                              std::size_t t_out);
/// patches[(ci*K+kk), s*T_out+t] = x[s,ci,t+kk*d-pad] for the whole batch.
void conv1d_im2col_full(const float* x, std::size_t n, std::size_t cin,
                        std::size_t t_in, std::size_t k, std::size_t d,
                        std::size_t pad, std::size_t t_out, float* patches);
/// dyg[co, s*T_out+t] = dy[s,co,t] for the whole batch.
void conv1d_gather_dy_full(const float* dy, std::size_t n, std::size_t cout,
                           std::size_t t_out, float* dyg);
/// Forward from a prebuilt patch matrix: bias fill, one GEMM, scatter to y.
void conv1d_forward_gemm_prepatched(const float* patches, const float* w,
                                    const float* b, std::size_t n,
                                    std::size_t cin, std::size_t cout,
                                    std::size_t k, std::size_t t_out, float* y);
/// dX from a pregathered dy: Wᵀ·dY into a column buffer, then col2im adds
/// into dx (caller zero-fills dx, as with conv1d_dx_gemm_raw).
void conv1d_dx_gemm_pregathered(const float* dyg, const float* w,
                                std::size_t n, std::size_t cin,
                                std::size_t t_in, std::size_t cout,
                                std::size_t k, std::size_t d, std::size_t pad,
                                std::size_t t_out, float* dx);
/// dW from pregathered dy and prebuilt patches: one GEMM accumulating into
/// dw (caller zero-fills, as with conv1d_dw_gemm_raw).
void conv1d_dw_gemm_prepatched(const float* dyg, const float* patches,
                               std::size_t n, std::size_t cin,
                               std::size_t cout, std::size_t k,
                               std::size_t t_out, float* dw);

}  // namespace fwd

// -- reductions & losses ------------------------------------------------------------------
Variable sum_all(const Variable& a);   // -> [1]
Variable mean_all(const Variable& a);  // -> [1]
/// Mean squared error against a constant target (eq. 9).
Variable mse_loss(const Variable& pred, const Tensor& target);
/// Mean absolute error against a constant target (eq. 10).
Variable mae_loss(const Variable& pred, const Tensor& target);
/// Mean pinball (quantile) loss at level tau in (0,1): training with it
/// yields the tau-quantile forecast — used by the capacity-planning
/// extension to reserve to a high percentile instead of the mean.
Variable pinball_loss(const Variable& pred, const Tensor& target, float tau);

}  // namespace rptcn::ag
