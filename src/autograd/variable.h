// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a shared graph Node holding a value tensor, a lazily
// allocated gradient tensor, and a closure that pushes the node's gradient
// back to its parents. Graphs are built define-by-run by the ops in
// autograd/ops.h and freed when the last Variable referencing them dies.
//
// Threading: graph construction and backward are single-threaded (the
// orchestration thread); the numeric kernels inside ops use OpenMP.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rptcn {

namespace autograd {

struct Node {
  Tensor value;
  Tensor grad;                 // allocated on first accumulation
  bool grad_initialized = false;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // may be empty for leaves
  const char* op = "leaf";

  /// grad += g, allocating on first use. Shape of g must match value.
  void accumulate(const Tensor& g);
};

/// When false (see NoGradScope), ops produce detached results: no parents,
/// no backward closures. Used for validation/test-time forward passes.
bool grad_enabled();

}  // namespace autograd

/// RAII guard that disables gradient tracking in its scope.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

 private:
  bool previous_;
};

class Variable {
 public:
  /// Undefined variable; defined() is false.
  Variable() = default;

  /// Wrap a value. requires_grad marks this as a trainable leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Internal: wrap an existing node (used by ops).
  explicit Variable(std::shared_ptr<autograd::Node> node)
      : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  bool requires_grad() const;

  const Tensor& value() const;
  /// Mutable access to the value, for optimizer parameter updates.
  /// Must only be called between forward passes.
  Tensor& mutable_value();

  /// Gradient tensor; zeros-shaped if backward has not touched this node.
  const Tensor& grad() const;

  /// Reset the gradient to "empty" (next accumulation re-initialises it).
  void zero_grad();

  /// Reverse-mode sweep from this (scalar) variable, seeding with 1.
  void backward();
  /// Reverse-mode sweep with an explicit output gradient (any shape).
  void backward(const Tensor& seed);

  /// Shape helpers forwarding to the value tensor.
  const std::vector<std::size_t>& shape() const { return value().shape(); }
  std::size_t size() const { return value().size(); }
  std::size_t dim(std::size_t i) const { return value().dim(i); }

  /// Detached copy: same value, no graph history.
  Variable detach() const;

  std::shared_ptr<autograd::Node> node() const { return node_; }

 private:
  std::shared_ptr<autograd::Node> node_;
};

}  // namespace rptcn
