#include "autograd/trace.h"

#include "common/check.h"

namespace rptcn::ag::trace {

namespace {
thread_local TapeTrace* g_sink = nullptr;
}  // namespace

bool active() { return g_sink != nullptr; }

void record(OpRecord r) {
  if (g_sink != nullptr) g_sink->ops.push_back(std::move(r));
}

void record_backward(Node* n) {
  if (g_sink != nullptr) g_sink->backward_order.push_back(n);
}

Recording::Recording(TapeTrace* sink) {
  RPTCN_CHECK(g_sink == nullptr, "trace::Recording scopes do not nest");
  RPTCN_CHECK(sink != nullptr, "trace::Recording needs a sink");
  g_sink = sink;
}

Recording::~Recording() { g_sink = nullptr; }

}  // namespace rptcn::ag::trace
