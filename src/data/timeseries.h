// TimeSeriesFrame: a named collection of equally sampled indicator series
// (one row of the paper's Table I per column), the common currency between
// the trace simulator, the preprocessing pipeline, and the models.
#pragma once

#include <string>
#include <vector>

#include "common/csv.h"

namespace rptcn::data {

class TimeSeriesFrame {
 public:
  TimeSeriesFrame() = default;

  /// Append a column; all columns must have equal length.
  void add(std::string name, std::vector<double> values);

  std::size_t indicators() const { return names_.size(); }
  std::size_t length() const {
    return series_.empty() ? 0 : series_.front().size();
  }
  bool empty() const { return series_.empty(); }

  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(std::size_t i) const;

  /// Column access by index or name (throws CheckError if absent).
  const std::vector<double>& column(std::size_t i) const;
  const std::vector<double>& column(const std::string& name) const;
  std::vector<double>& column_mut(std::size_t i);
  std::size_t index_of(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Sub-range [start, start+count) of every column.
  TimeSeriesFrame slice(std::size_t start, std::size_t count) const;

  /// Keep only the named columns, in the given order.
  TimeSeriesFrame select(const std::vector<std::string>& keep) const;

  /// Conversions to/from the CSV table type.
  CsvTable to_csv() const;
  static TimeSeriesFrame from_csv(const CsvTable& table);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> series_;
};

}  // namespace rptcn::data
