#include "data/timeseries.h"

#include "common/check.h"

namespace rptcn::data {

void TimeSeriesFrame::add(std::string name, std::vector<double> values) {
  RPTCN_CHECK(!has(name), "duplicate indicator name: " << name);
  if (!series_.empty())
    RPTCN_CHECK(values.size() == length(),
                "column " << name << " has length " << values.size()
                          << ", frame has " << length());
  names_.push_back(std::move(name));
  series_.push_back(std::move(values));
}

const std::string& TimeSeriesFrame::name(std::size_t i) const {
  RPTCN_CHECK(i < names_.size(), "indicator index out of range");
  return names_[i];
}

const std::vector<double>& TimeSeriesFrame::column(std::size_t i) const {
  RPTCN_CHECK(i < series_.size(), "indicator index out of range");
  return series_[i];
}

const std::vector<double>& TimeSeriesFrame::column(
    const std::string& name) const {
  return series_[index_of(name)];
}

std::vector<double>& TimeSeriesFrame::column_mut(std::size_t i) {
  RPTCN_CHECK(i < series_.size(), "indicator index out of range");
  return series_[i];
}

std::size_t TimeSeriesFrame::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  RPTCN_CHECK(false, "no such indicator: " << name);
  return 0;  // unreachable
}

bool TimeSeriesFrame::has(const std::string& name) const {
  for (const auto& n : names_)
    if (n == name) return true;
  return false;
}

TimeSeriesFrame TimeSeriesFrame::slice(std::size_t start,
                                       std::size_t count) const {
  RPTCN_CHECK(start + count <= length(),
              "slice [" << start << ", " << (start + count)
                        << ") out of range for length " << length());
  TimeSeriesFrame out;
  for (std::size_t i = 0; i < indicators(); ++i) {
    std::vector<double> vals(series_[i].begin() + start,
                             series_[i].begin() + start + count);
    out.add(names_[i], std::move(vals));
  }
  return out;
}

TimeSeriesFrame TimeSeriesFrame::select(
    const std::vector<std::string>& keep) const {
  TimeSeriesFrame out;
  for (const auto& name : keep) out.add(name, column(name));
  return out;
}

CsvTable TimeSeriesFrame::to_csv() const {
  CsvTable table;
  table.columns = names_;
  table.data = series_;
  return table;
}

TimeSeriesFrame TimeSeriesFrame::from_csv(const CsvTable& table) {
  TimeSeriesFrame out;
  for (std::size_t c = 0; c < table.cols(); ++c)
    out.add(table.columns[c], table.data[c]);
  return out;
}

}  // namespace rptcn::data
