// Pearson correlation analysis and indicator screening
// (paper Section III-B and Algorithm 1 lines 3-4, Fig. 7).
#pragma once

#include "data/timeseries.h"

namespace rptcn::data {

/// Full PCC matrix of a frame: m[i][j] = pearson(col_i, col_j) (eq. 2).
std::vector<std::vector<double>> correlation_matrix(
    const TimeSeriesFrame& frame);

struct IndicatorCorrelation {
  std::string name;
  double correlation;  ///< signed PCC with the target indicator
};

/// Indicators ranked by |PCC| with the target, target first (|PCC| = 1).
std::vector<IndicatorCorrelation> rank_by_correlation(
    const TimeSeriesFrame& frame, const std::string& target);

/// Algorithm 1 line 3-4: keep the top ceil(indicators/2) ranked indicators
/// (target included), returning a frame with target as first column.
TimeSeriesFrame select_top_half(const TimeSeriesFrame& frame,
                                const std::string& target);

/// Keep the top-`count` ranked indicators (target included).
TimeSeriesFrame select_top_correlated(const TimeSeriesFrame& frame,
                                      const std::string& target,
                                      std::size_t count);

}  // namespace rptcn::data
