// Data cleaning and normalisation (Algorithm 1, lines 1-2).
//
// The paper first "screens the records with complete information" (drops
// incomplete samples) and then min-max normalises each indicator (eq. 1).
// We additionally provide linear interpolation as a gentler cleaning mode
// for gap-y monitoring data.
#pragma once

#include "data/timeseries.h"

namespace rptcn::data {

/// Count of rows containing at least one NaN.
std::size_t incomplete_rows(const TimeSeriesFrame& frame);

/// Drop every time index where any indicator is NaN (paper's DataClean).
TimeSeriesFrame clean_drop_incomplete(const TimeSeriesFrame& frame);

/// Replace NaN runs by linear interpolation between the nearest valid
/// neighbours (edges extend the nearest valid value). A column that is all
/// NaN becomes all zero.
TimeSeriesFrame clean_interpolate(const TimeSeriesFrame& frame);

/// Per-indicator min-max scaler, x_norm = (x - min) / (max - min) (eq. 1).
/// Constant columns map to 0. Fitted bounds are retained for inverse
/// transformation of model outputs back to resource units.
class MinMaxScaler {
 public:
  /// Fit bounds on all rows of the frame.
  void fit(const TimeSeriesFrame& frame);
  /// Fit bounds on rows [start, start+count) only (leakage-free variant).
  void fit_range(const TimeSeriesFrame& frame, std::size_t start,
                 std::size_t count);

  /// Apply eq. 1 per column; clamps nothing (test data may exceed [0,1]).
  TimeSeriesFrame transform(const TimeSeriesFrame& frame) const;
  TimeSeriesFrame fit_transform(const TimeSeriesFrame& frame);

  /// Map normalised values of one indicator back to original units.
  std::vector<double> inverse_transform(const std::string& name,
                                        const std::vector<double>& values) const;

  bool fitted() const { return !names_.empty(); }
  double min_of(const std::string& name) const;
  double max_of(const std::string& name) const;

 private:
  std::size_t index_of(const std::string& name) const;
  std::vector<std::string> names_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace rptcn::data
