#include "data/preprocess.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::data {

std::size_t incomplete_rows(const TimeSeriesFrame& frame) {
  std::size_t count = 0;
  for (std::size_t t = 0; t < frame.length(); ++t) {
    for (std::size_t c = 0; c < frame.indicators(); ++c) {
      if (std::isnan(frame.column(c)[t])) {
        ++count;
        break;
      }
    }
  }
  return count;
}

TimeSeriesFrame clean_drop_incomplete(const TimeSeriesFrame& frame) {
  std::vector<std::size_t> keep;
  keep.reserve(frame.length());
  for (std::size_t t = 0; t < frame.length(); ++t) {
    bool complete = true;
    for (std::size_t c = 0; c < frame.indicators() && complete; ++c)
      complete = !std::isnan(frame.column(c)[t]);
    if (complete) keep.push_back(t);
  }
  TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    std::vector<double> vals;
    vals.reserve(keep.size());
    for (auto t : keep) vals.push_back(frame.column(c)[t]);
    out.add(frame.name(c), std::move(vals));
  }
  return out;
}

TimeSeriesFrame clean_interpolate(const TimeSeriesFrame& frame) {
  TimeSeriesFrame out;
  const std::size_t n = frame.length();
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    std::vector<double> vals = frame.column(c);
    // Collect valid indices.
    std::vector<std::size_t> valid;
    for (std::size_t t = 0; t < n; ++t)
      if (!std::isnan(vals[t])) valid.push_back(t);
    if (valid.empty()) {
      std::fill(vals.begin(), vals.end(), 0.0);
      out.add(frame.name(c), std::move(vals));
      continue;
    }
    // Leading/trailing edges: extend nearest valid value.
    for (std::size_t t = 0; t < valid.front(); ++t) vals[t] = vals[valid.front()];
    for (std::size_t t = valid.back() + 1; t < n; ++t)
      vals[t] = vals[valid.back()];
    // Interior gaps: linear interpolation between bracketing valid samples.
    for (std::size_t vi = 0; vi + 1 < valid.size(); ++vi) {
      const std::size_t a = valid[vi], b = valid[vi + 1];
      if (b == a + 1) continue;
      const double va = vals[a], vb = vals[b];
      for (std::size_t t = a + 1; t < b; ++t) {
        const double frac =
            static_cast<double>(t - a) / static_cast<double>(b - a);
        vals[t] = va + frac * (vb - va);
      }
    }
    out.add(frame.name(c), std::move(vals));
  }
  return out;
}

void MinMaxScaler::fit(const TimeSeriesFrame& frame) {
  fit_range(frame, 0, frame.length());
}

void MinMaxScaler::fit_range(const TimeSeriesFrame& frame, std::size_t start,
                             std::size_t count) {
  RPTCN_CHECK(count > 0, "MinMaxScaler fit on empty range");
  RPTCN_CHECK(start + count <= frame.length(), "fit range out of bounds");
  names_.clear();
  mins_.clear();
  maxs_.clear();
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    double lo = col[start], hi = col[start];
    for (std::size_t t = start; t < start + count; ++t) {
      RPTCN_CHECK(!std::isnan(col[t]),
                  "MinMaxScaler.fit on NaN data — clean the frame first");
      lo = std::min(lo, col[t]);
      hi = std::max(hi, col[t]);
    }
    names_.push_back(frame.name(c));
    mins_.push_back(lo);
    maxs_.push_back(hi);
  }
}

TimeSeriesFrame MinMaxScaler::transform(const TimeSeriesFrame& frame) const {
  RPTCN_CHECK(fitted(), "MinMaxScaler used before fit");
  TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const std::size_t fi = index_of(frame.name(c));
    const double lo = mins_[fi];
    const double range = maxs_[fi] - lo;
    std::vector<double> vals = frame.column(c);
    if (range == 0.0) {
      std::fill(vals.begin(), vals.end(), 0.0);
    } else {
      for (auto& v : vals) v = (v - lo) / range;
    }
    out.add(frame.name(c), std::move(vals));
  }
  return out;
}

TimeSeriesFrame MinMaxScaler::fit_transform(const TimeSeriesFrame& frame) {
  fit(frame);
  return transform(frame);
}

std::vector<double> MinMaxScaler::inverse_transform(
    const std::string& name, const std::vector<double>& values) const {
  RPTCN_CHECK(fitted(), "MinMaxScaler used before fit");
  const std::size_t fi = index_of(name);
  const double lo = mins_[fi];
  const double range = maxs_[fi] - lo;
  std::vector<double> out = values;
  for (auto& v : out) v = lo + v * range;
  return out;
}

double MinMaxScaler::min_of(const std::string& name) const {
  return mins_[index_of(name)];
}

double MinMaxScaler::max_of(const std::string& name) const {
  return maxs_[index_of(name)];
}

std::size_t MinMaxScaler::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  RPTCN_CHECK(false, "scaler was not fitted on indicator: " << name);
  return 0;  // unreachable
}

}  // namespace rptcn::data
