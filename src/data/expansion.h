// Feature-dimension expansion (paper Section III-C, Fig. 4).
//
// Horizontal expansion (Fig. 4b, the paper's choice): each indicator r is
// replicated into `copies` lagged series r_{t}, r_{t-stride}, r_{t-2*stride},
// ..., widening the feature dimension instead of lengthening the window.
// This both injects older information (reach grows by (copies-1)*stride)
// and duplicates recent values, increasing the weight of short-term
// neighbours — exactly the intuition in the paper.
//
// Vertical expansion (Fig. 4a, the alternative) is simply a longer input
// window; the helper below computes the equivalent window length so the
// ablation bench can compare both on equal history.
#pragma once

#include "data/timeseries.h"

namespace rptcn::data {

struct ExpansionOptions {
  std::size_t copies = 3;  ///< series per indicator (paper eq. 11 uses 3)
  std::size_t stride = 1;  ///< lag between successive copies
};

/// Horizontally expand every indicator. Output columns are named
/// "<name>", "<name>.lag<stride>", "<name>.lag<2*stride>", ... and the
/// frame is shortened by (copies-1)*stride rows so all columns align.
TimeSeriesFrame expand_horizontal(const TimeSeriesFrame& frame,
                                  const ExpansionOptions& options);

/// History reach (timesteps) of a window after horizontal expansion.
std::size_t expanded_reach(std::size_t window, const ExpansionOptions& options);

/// Vertical-expansion equivalent: the window length whose reach matches
/// a horizontally expanded window.
std::size_t vertical_equivalent_window(std::size_t window,
                                       const ExpansionOptions& options);

// --- extensions proposed in the paper's Discussion / future work ----------

/// Append first-difference columns ("<name>.diff") to every indicator:
/// diff[t] = col[t] - col[t-1]. The frame is shortened by one row.
/// ("adding first-order difference information for resource utilization ...
/// to further improve the accuracy of the model")
TimeSeriesFrame expand_with_differences(const TimeSeriesFrame& frame);

/// Correlation-weighted horizontal expansion: the number of lagged copies
/// of each indicator scales with its |PCC| against the target —
/// max(1, round(|PCC| * max_copies)) copies at the given stride.
/// ("set different dimension columns according to the correlation weights
/// of each performance metric with predicted resource")
TimeSeriesFrame expand_weighted(const TimeSeriesFrame& frame,
                                const std::string& target,
                                std::size_t max_copies,
                                std::size_t stride = 1);

}  // namespace rptcn::data
