#include "data/correlation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace rptcn::data {

std::vector<std::vector<double>> correlation_matrix(
    const TimeSeriesFrame& frame) {
  const std::size_t k = frame.indicators();
  std::vector<std::vector<double>> m(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    m[i][i] = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = pearson(frame.column(i), frame.column(j));
      m[i][j] = r;
      m[j][i] = r;
    }
  }
  return m;
}

std::vector<IndicatorCorrelation> rank_by_correlation(
    const TimeSeriesFrame& frame, const std::string& target) {
  const auto& tcol = frame.column(target);
  std::vector<IndicatorCorrelation> ranked;
  ranked.reserve(frame.indicators());
  for (std::size_t i = 0; i < frame.indicators(); ++i) {
    if (frame.name(i) == target) continue;
    ranked.push_back({frame.name(i), pearson(tcol, frame.column(i))});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const IndicatorCorrelation& a,
                      const IndicatorCorrelation& b) {
                     return std::fabs(a.correlation) > std::fabs(b.correlation);
                   });
  ranked.insert(ranked.begin(), {target, 1.0});
  return ranked;
}

TimeSeriesFrame select_top_correlated(const TimeSeriesFrame& frame,
                                      const std::string& target,
                                      std::size_t count) {
  RPTCN_CHECK(count >= 1, "must keep at least the target indicator");
  auto ranked = rank_by_correlation(frame, target);
  count = std::min(count, ranked.size());
  std::vector<std::string> keep;
  keep.reserve(count);
  for (std::size_t i = 0; i < count; ++i) keep.push_back(ranked[i].name);
  return frame.select(keep);
}

TimeSeriesFrame select_top_half(const TimeSeriesFrame& frame,
                                const std::string& target) {
  const std::size_t half = (frame.indicators() + 1) / 2;
  return select_top_correlated(frame, target, half);
}

}  // namespace rptcn::data
