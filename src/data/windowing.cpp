#include "data/windowing.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::data {

std::size_t window_count(std::size_t length, const WindowOptions& options) {
  const std::size_t need = options.window + options.horizon;
  if (length < need) return 0;
  return (length - need) / options.stride + 1;
}

opt::TrainData make_windows(const TimeSeriesFrame& frame,
                            const std::string& target,
                            const WindowOptions& options) {
  RPTCN_CHECK(options.window > 0 && options.horizon > 0 && options.stride > 0,
              "window, horizon and stride must be positive");
  const std::size_t f = frame.indicators();
  const std::size_t s = window_count(frame.length(), options);
  RPTCN_CHECK(s > 0, "frame of length " << frame.length()
                                        << " too short for window "
                                        << options.window << "+horizon "
                                        << options.horizon);
  const auto& tcol = frame.column(target);

  opt::TrainData out;
  out.inputs = Tensor({s, f, options.window});
  out.targets = Tensor({s, options.horizon});
  for (std::size_t si = 0; si < s; ++si) {
    const std::size_t t0 = si * options.stride;
    for (std::size_t c = 0; c < f; ++c) {
      const auto& col = frame.column(c);
      float* row = out.inputs.raw() + (si * f + c) * options.window;
      for (std::size_t t = 0; t < options.window; ++t)
        row[t] = static_cast<float>(col[t0 + t]);
    }
    for (std::size_t h = 0; h < options.horizon; ++h)
      out.targets.at(si, h) =
          static_cast<float>(tcol[t0 + options.window + h]);
  }
  return out;
}

namespace {
opt::TrainData take_rows(const opt::TrainData& all, std::size_t start,
                         std::size_t count) {
  std::vector<std::size_t> idx(count);
  for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
  return {opt::gather_rows(all.inputs, idx), opt::gather_rows(all.targets, idx)};
}
}  // namespace

SplitData chrono_split(const opt::TrainData& all, double train_frac,
                       double valid_frac) {
  RPTCN_CHECK(train_frac > 0 && valid_frac > 0 &&
                  train_frac + valid_frac < 1.0,
              "invalid split fractions");
  const std::size_t s = all.samples();
  const auto n_train = static_cast<std::size_t>(
      std::floor(static_cast<double>(s) * train_frac));
  const auto n_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(s) * valid_frac));
  RPTCN_CHECK(n_train > 0 && n_valid > 0 && n_train + n_valid < s,
              "dataset too small to split " << s << " samples");
  SplitData out;
  out.train = take_rows(all, 0, n_train);
  out.valid = take_rows(all, n_train, n_valid);
  out.test = take_rows(all, n_train + n_valid, s - n_train - n_valid);
  return out;
}

SplitData split_then_window(const TimeSeriesFrame& frame,
                            const std::string& target,
                            const WindowOptions& options, double train_frac,
                            double valid_frac) {
  RPTCN_CHECK(train_frac > 0 && valid_frac > 0 &&
                  train_frac + valid_frac < 1.0,
              "invalid split fractions");
  const std::size_t n = frame.length();
  const auto n_train = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * train_frac));
  const auto n_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * valid_frac));
  SplitData out;
  out.train = make_windows(frame.slice(0, n_train), target, options);
  out.valid = make_windows(frame.slice(n_train, n_valid), target, options);
  out.test = make_windows(frame.slice(n_train + n_valid, n - n_train - n_valid),
                          target, options);
  return out;
}

}  // namespace rptcn::data
