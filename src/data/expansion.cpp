#include "data/expansion.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace rptcn::data {

TimeSeriesFrame expand_horizontal(const TimeSeriesFrame& frame,
                                  const ExpansionOptions& options) {
  RPTCN_CHECK(options.copies >= 1, "expansion needs at least one copy");
  RPTCN_CHECK(options.stride >= 1, "expansion stride must be >= 1");
  const std::size_t drop = (options.copies - 1) * options.stride;
  RPTCN_CHECK(frame.length() > drop,
              "frame too short for expansion: length " << frame.length()
                                                       << ", need > " << drop);
  const std::size_t out_len = frame.length() - drop;

  TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    for (std::size_t j = 0; j < options.copies; ++j) {
      const std::size_t lag = j * options.stride;
      // Row t of the output corresponds to source time (t + drop); copy j
      // reads the value lag steps earlier.
      std::vector<double> vals(out_len);
      for (std::size_t t = 0; t < out_len; ++t) vals[t] = col[t + drop - lag];
      std::string name = frame.name(c);
      if (j > 0) name += ".lag" + std::to_string(lag);
      out.add(std::move(name), std::move(vals));
    }
  }
  return out;
}

std::size_t expanded_reach(std::size_t window, const ExpansionOptions& options) {
  return window + (options.copies - 1) * options.stride;
}

std::size_t vertical_equivalent_window(std::size_t window,
                                       const ExpansionOptions& options) {
  return expanded_reach(window, options);
}

TimeSeriesFrame expand_with_differences(const TimeSeriesFrame& frame) {
  RPTCN_CHECK(frame.length() >= 2, "frame too short for differencing");
  const std::size_t out_len = frame.length() - 1;
  TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    std::vector<double> vals(col.begin() + 1, col.end());
    out.add(frame.name(c), std::move(vals));
  }
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    std::vector<double> d(out_len);
    for (std::size_t t = 0; t < out_len; ++t) d[t] = col[t + 1] - col[t];
    out.add(frame.name(c) + ".diff", std::move(d));
  }
  return out;
}

TimeSeriesFrame expand_weighted(const TimeSeriesFrame& frame,
                                const std::string& target,
                                std::size_t max_copies, std::size_t stride) {
  RPTCN_CHECK(max_copies >= 1, "max_copies must be >= 1");
  RPTCN_CHECK(stride >= 1, "stride must be >= 1");
  const auto& tcol = frame.column(target);

  // Per-indicator copy counts from |PCC|; the target always gets the
  // maximum (|PCC| = 1).
  std::vector<std::size_t> copies(frame.indicators());
  std::size_t worst_drop = 0;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const double r = frame.name(c) == target
                         ? 1.0
                         : std::fabs(pearson(tcol, frame.column(c)));
    copies[c] = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(r * static_cast<double>(max_copies))));
    worst_drop = std::max(worst_drop, (copies[c] - 1) * stride);
  }
  RPTCN_CHECK(frame.length() > worst_drop,
              "frame too short for weighted expansion");
  const std::size_t out_len = frame.length() - worst_drop;

  TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    const auto& col = frame.column(c);
    for (std::size_t j = 0; j < copies[c]; ++j) {
      const std::size_t lag = j * stride;
      std::vector<double> vals(out_len);
      for (std::size_t t = 0; t < out_len; ++t)
        vals[t] = col[t + worst_drop - lag];
      std::string name = frame.name(c);
      if (j > 0) name += ".lag" + std::to_string(lag);
      out.add(std::move(name), std::move(vals));
    }
  }
  return out;
}

}  // namespace rptcn::data
