// Sliding-window supervised dataset construction and the paper's 6:2:2
// chronological train/validation/test split.
#pragma once

#include "data/timeseries.h"
#include "opt/trainer.h"

namespace rptcn::data {

struct WindowOptions {
  std::size_t window = 32;  ///< input timesteps per sample
  std::size_t horizon = 1;  ///< forecast steps (cpu_{m+1..m+k})
  std::size_t stride = 1;   ///< step between consecutive windows
};

/// Build supervised windows from a (normalised) frame.
/// Sample s: inputs = all indicators over [s*stride, s*stride + window),
/// targets = `target` over the following `horizon` steps.
/// inputs: [S, F, window], targets: [S, horizon].
opt::TrainData make_windows(const TimeSeriesFrame& frame,
                            const std::string& target,
                            const WindowOptions& options);

/// Number of windows make_windows will produce.
std::size_t window_count(std::size_t length, const WindowOptions& options);

struct SplitData {
  opt::TrainData train;
  opt::TrainData valid;
  opt::TrainData test;
};

/// Chronological split of supervised windows (paper ratio 6:2:2).
SplitData chrono_split(const opt::TrainData& all, double train_frac = 0.6,
                       double valid_frac = 0.2);

/// Split the raw frame by time, then window each part independently so no
/// sample straddles a split boundary (stricter variant, avoids any overlap
/// between train and test windows).
SplitData split_then_window(const TimeSeriesFrame& frame,
                            const std::string& target,
                            const WindowOptions& options,
                            double train_frac = 0.6, double valid_frac = 0.2);

}  // namespace rptcn::data
