// Int8 quantized weight snapshots for inference-only serving.
//
// A quantized snapshot is derived from a float graph:: snapshot by
// quantizing every GEMM-shaped weight matrix (LSTM packed gate weights,
// linear heads) per output channel with symmetric int8 scales
// (tensor/quant.h). At run time activations are quantized dynamically —
// one symmetric scale per GEMM call over the whole batch — the GEMM runs
// in int8 through the dispatched kernel (exact int32 accumulation, so the
// integer path is bit-identical in every arch tier), and the combined
// scale plus the float bias fold back in one dequantize pass. Biases and
// every non-GEMM op (gate sigmoids/tanh, elementwise cell updates, conv
// layers) stay float.
//
// Coverage: the LSTM-family nets (LstmNet, BiLstmNet, CnnLstm — the conv
// front-end of CnnLstm stays float, only its LSTM + head quantize). The
// RPTCN net is conv-bound and keeps the float planned path; an
// InferenceSession asked to quantize it serves float32 and reports
// quantized() == false.
//
// Accuracy is a contract, not an assumption: tests/test_golden_pipeline.cpp
// gates the quantized trajectory against the float32 fixture with explicit
// per-metric tolerances, and test_quant.cpp pins round-trip, saturation,
// and determinism behaviour (two quantizations of one snapshot are
// byte-identical).
#pragma once

#include "serve/snapshot.h"
#include "tensor/quant.h"

namespace rptcn::serve {

/// Linear layer with int8 weights: w is [out, in] per-row quantized; the
/// bias stays float ([out]; empty when absent).
struct QLinearSnap {
  QuantizedMatrix w;
  Tensor b;
};

/// LSTM packed gate weights [4H, F+H], per-row (= per gate unit) quantized;
/// gate biases stay float.
struct QLstmSnap {
  QuantizedMatrix w;
  Tensor b;
  std::size_t hidden = 0;
};

struct QLstmNetSnap {
  QLstmSnap lstm;
  QLinearSnap head;
};

struct QBiLstmNetSnap {
  QLstmSnap fwd;
  QLstmSnap bwd;
  QLinearSnap head;
};

struct QCnnLstmSnap {
  ConvSnap conv;  ///< stays float (im2col + float GEMM)
  QLstmSnap lstm;
  QLinearSnap head;
};

// -- builders: quantize a float snapshot (deterministic, byte-stable) --------
QLstmNetSnap quantize(const LstmNetSnap& snap);
QBiLstmNetSnap quantize(const BiLstmNetSnap& snap);
QCnnLstmSnap quantize(const CnnLstmSnap& snap);

// -- quantized eval forward runners: x [N, F, T] -> [N, horizon] -------------
Tensor forward(const QLstmNetSnap& snap, const Tensor& x);
Tensor forward(const QBiLstmNetSnap& snap, const Tensor& x);
Tensor forward(const QCnnLstmSnap& snap, const Tensor& x);

}  // namespace rptcn::serve
