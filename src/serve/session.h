// InferenceSession: immutable, thread-safe, tape-free inference over a
// fitted Forecaster.
//
// Construction snapshots the forecaster's weights into read-only storage
// (serve/snapshot.h); run() executes the batched forward through the
// ag::fwd kernels with no autograd Variable allocation. Any number of
// threads may call run() concurrently on one session — the snapshot is
// never written after construction.
//
// Non-tensor models (ARIMA, XGBoost) have no weights to snapshot; for those
// the session delegates run() to the forecaster's own predict() behind a
// mutex (their per-sample prediction loops are batch-invariant, so results
// still match the unbatched path bit-for-bit). Construct from a
// shared_ptr<Forecaster> and the session shares ownership of the delegate,
// so it can never dangle; with the reference constructor the forecaster
// must outlive the session. Snapshotted sessions carry no reference back.
// Planned execution: snapshotted sessions own a graph::PlanCache seeded
// from their snapshot. run() replays the captured-and-planned executable
// for the input's [N, F, T] (bit-identical to the eager runners; see
// src/graph/plan.h), falling back to the eager forward when planning is
// disabled (RPTCN_DISABLE_PLAN=1). Hot-swap safety is structural: the plan
// cache lives and dies with its session, so a BatchingEngine swap installs
// a fresh cache and stale plans can never see new weights.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <variant>

#include "graph/capture.h"
#include "graph/plan.h"
#include "obs/metrics.h"
#include "serve/quant.h"
#include "serve/snapshot.h"

namespace rptcn::models {
class Forecaster;
}

namespace rptcn::serve {

/// Construction-time serving options.
struct SessionOptions {
  /// Serve through the int8 quantized snapshot (serve/quant.h) instead of
  /// the float planned path. Applies to the LSTM-family nets; the
  /// conv-bound RPTCN net ignores the request and serves float32 (check
  /// quantized() for what actually engaged). Quantized runs bypass the
  /// plan cache: the planned replay's prepacked-GEMM advantage is subsumed
  /// by the pre-quantized weights, and the int8 runner is eager. Each such
  /// bypass bumps the process-wide `serve/plan_bypass_quantized` counter
  /// and the session's stats().plan_bypass_quantized, so the perf cliff is
  /// observable rather than silent.
  bool quantized = false;
};

/// Per-session run accounting (monotonic since construction).
struct SessionStats {
  std::uint64_t runs = 0;  ///< run() calls that dispatched a forward
  /// run() calls that served the eager int8 path instead of a planned
  /// executable. Equals `runs` on a quantized session, 0 otherwise.
  std::uint64_t plan_bypass_quantized = 0;
};

class InferenceSession {
 public:
  /// Snapshot a fitted forecaster (any registry model). Neural forecasters
  /// must have been fit() or restore()d first.
  explicit InferenceSession(models::Forecaster& forecaster,
                            SessionOptions options = {});

  /// Same, but the session co-owns the forecaster while it delegates
  /// (non-tensor models) — the delegate cannot be freed under a live
  /// session no matter how the caller sequences teardown. Snapshotted
  /// models release the forecaster immediately; the snapshot is
  /// self-contained.
  explicit InferenceSession(std::shared_ptr<models::Forecaster> forecaster,
                            SessionOptions options = {});

  // Direct snapshots of a network, for callers that own the net itself.
  explicit InferenceSession(const nn::RptcnNet& net,
                            SessionOptions options = {});
  explicit InferenceSession(const nn::LstmNet& net,
                            SessionOptions options = {});
  explicit InferenceSession(const nn::BiLstmNet& net,
                            SessionOptions options = {});
  explicit InferenceSession(const nn::CnnLstm& net,
                            SessionOptions options = {});

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Batched tape-free forward: inputs [N, F, T] -> predictions [N, horizon].
  /// Thread-safe. Each output row is bit-identical to the unbatched (N=1)
  /// autograd forward of the same window.
  Tensor run(const Tensor& inputs) const;

  const std::string& model_name() const { return name_; }
  /// Forecast steps per request; 0 when unknown (delegated models).
  std::size_t horizon() const { return horizon_; }
  /// Expected feature count F; 0 when unknown (delegated models).
  std::size_t input_features() const { return input_features_; }
  /// True iff run() actually serves the int8 quantized path. False when
  /// quantization was not requested, the model has no quantizable snapshot
  /// (delegated models), or the net is RPTCN (conv-bound, stays float).
  bool quantized() const { return !std::holds_alternative<std::monostate>(qsnap_); }

  /// Snapshot of this session's run accounting. Thread-safe; counts relaxed
  /// (a concurrent reader may be one run behind a racing writer).
  SessionStats stats() const {
    SessionStats s;
    s.runs = runs_.load(std::memory_order_relaxed);
    s.plan_bypass_quantized = plan_bypass_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Seed plans_ from the (just-assigned) snapshot variant.
  void init_plans();
  /// Build qsnap_ from snap_ when options request quantized serving.
  void init_quantized();
  /// Expected input shape for error messages: "[N, F, T]" plus the shapes
  /// already captured by the plan cache.
  std::string expected_shape() const;

  std::string name_;
  std::size_t horizon_ = 0;
  std::size_t input_features_ = 0;
  std::variant<std::monostate, RptcnSnap, LstmNetSnap, BiLstmNetSnap,
               CnnLstmSnap>
      snap_;
  /// Int8 twin of snap_, populated iff quantized serving engaged; run()
  /// prefers it over the planned float path.
  std::variant<std::monostate, QLstmNetSnap, QBiLstmNetSnap, QCnnLstmSnap>
      qsnap_;
  /// Shape-keyed planned executables; null for delegated models.
  std::unique_ptr<graph::PlanCache> plans_;
  models::Forecaster* delegate_ = nullptr;  ///< set iff snap_ is monostate
  /// Keeps `delegate_` alive when constructed from a shared_ptr.
  std::shared_ptr<models::Forecaster> owner_;
  mutable std::mutex delegate_mutex_;
  mutable std::atomic<std::uint64_t> runs_{0};
  mutable std::atomic<std::uint64_t> plan_bypass_{0};
  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& plan_bypass_counter_ =
      obs::metrics().counter("serve/plan_bypass_quantized");
};

}  // namespace rptcn::serve
