// InferenceSession: immutable, thread-safe, tape-free inference over a
// fitted Forecaster.
//
// Construction snapshots the forecaster's weights into read-only storage
// (serve/snapshot.h); run() executes the batched forward through the
// ag::fwd kernels with no autograd Variable allocation. Any number of
// threads may call run() concurrently on one session — the snapshot is
// never written after construction.
//
// Non-tensor models (ARIMA, XGBoost) have no weights to snapshot; for those
// the session delegates run() to the forecaster's own predict() behind a
// mutex (their per-sample prediction loops are batch-invariant, so results
// still match the unbatched path bit-for-bit). Construct from a
// shared_ptr<Forecaster> and the session shares ownership of the delegate,
// so it can never dangle; with the reference constructor the forecaster
// must outlive the session. Snapshotted sessions carry no reference back.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <variant>

#include "serve/snapshot.h"

namespace rptcn::models {
class Forecaster;
}

namespace rptcn::serve {

class InferenceSession {
 public:
  /// Snapshot a fitted forecaster (any registry model). Neural forecasters
  /// must have been fit() or restore()d first.
  explicit InferenceSession(models::Forecaster& forecaster);

  /// Same, but the session co-owns the forecaster while it delegates
  /// (non-tensor models) — the delegate cannot be freed under a live
  /// session no matter how the caller sequences teardown. Snapshotted
  /// models release the forecaster immediately; the snapshot is
  /// self-contained.
  explicit InferenceSession(std::shared_ptr<models::Forecaster> forecaster);

  // Direct snapshots of a network, for callers that own the net itself.
  explicit InferenceSession(const nn::RptcnNet& net);
  explicit InferenceSession(const nn::LstmNet& net);
  explicit InferenceSession(const nn::BiLstmNet& net);
  explicit InferenceSession(const nn::CnnLstm& net);

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Batched tape-free forward: inputs [N, F, T] -> predictions [N, horizon].
  /// Thread-safe. Each output row is bit-identical to the unbatched (N=1)
  /// autograd forward of the same window.
  Tensor run(const Tensor& inputs) const;

  const std::string& model_name() const { return name_; }
  /// Forecast steps per request; 0 when unknown (delegated models).
  std::size_t horizon() const { return horizon_; }
  /// Expected feature count F; 0 when unknown (delegated models).
  std::size_t input_features() const { return input_features_; }

 private:
  std::string name_;
  std::size_t horizon_ = 0;
  std::size_t input_features_ = 0;
  std::variant<std::monostate, RptcnSnap, LstmNetSnap, BiLstmNetSnap,
               CnnLstmSnap>
      snap_;
  models::Forecaster* delegate_ = nullptr;  ///< set iff snap_ is monostate
  /// Keeps `delegate_` alive when constructed from a shared_ptr.
  std::shared_ptr<models::Forecaster> owner_;
  mutable std::mutex delegate_mutex_;
};

}  // namespace rptcn::serve
