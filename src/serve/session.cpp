#include "serve/session.h"

#include "models/nn_forecasters.h"

namespace rptcn::serve {

namespace {

/// Fitted-net guard shared by the forecaster constructor branches.
template <typename Net>
const Net& require_net(const Net* net, const std::string& name) {
  RPTCN_CHECK(net != nullptr,
              "InferenceSession: forecaster \"" << name
                                                << "\" must be fitted first");
  return *net;
}

/// Null-checked deref so the delegating constructor below never dereferences
/// an empty shared_ptr.
models::Forecaster& require_forecaster(
    const std::shared_ptr<models::Forecaster>& forecaster) {
  RPTCN_CHECK(forecaster != nullptr, "InferenceSession: null forecaster");
  return *forecaster;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<models::Forecaster> forecaster)
    : InferenceSession(require_forecaster(forecaster)) {
  // Only delegating sessions need the keep-alive; a snapshot is
  // self-contained and holding the forecaster would double its weights.
  if (delegate_ != nullptr) owner_ = std::move(forecaster);
}

InferenceSession::InferenceSession(models::Forecaster& forecaster)
    : name_(forecaster.name()) {
  const auto take = [this](const auto& net) {
    snap_ = serve::snapshot(net);
    horizon_ = net.options().horizon;
    input_features_ = net.options().input_features;
  };
  if (const auto* rptcn = dynamic_cast<const models::RptcnForecaster*>(&forecaster)) {
    take(require_net(rptcn->net(), name_));
  } else if (const auto* tcn = dynamic_cast<const models::TcnForecaster*>(&forecaster)) {
    take(require_net(tcn->net(), name_));
  } else if (const auto* lstm = dynamic_cast<const models::LstmForecaster*>(&forecaster)) {
    take(require_net(lstm->net(), name_));
  } else if (const auto* bilstm = dynamic_cast<const models::BiLstmForecaster*>(&forecaster)) {
    take(require_net(bilstm->net(), name_));
  } else if (const auto* cnnlstm = dynamic_cast<const models::CnnLstmForecaster*>(&forecaster)) {
    take(require_net(cnnlstm->net(), name_));
  } else {
    // No tensor weights (ARIMA, XGBoost): serve through the forecaster's own
    // batch-invariant predict(), serialised by delegate_mutex_.
    delegate_ = &forecaster;
  }
}

InferenceSession::InferenceSession(const nn::RptcnNet& net)
    : name_("RPTCN"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {}

InferenceSession::InferenceSession(const nn::LstmNet& net)
    : name_("LSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {}

InferenceSession::InferenceSession(const nn::BiLstmNet& net)
    : name_("BiLSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {}

InferenceSession::InferenceSession(const nn::CnnLstm& net)
    : name_("CNN-LSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {}

Tensor InferenceSession::run(const Tensor& inputs) const {
  RPTCN_CHECK(inputs.rank() == 3, "InferenceSession::run expects [N,F,T], got "
                                      << inputs.shape_string());
  if (delegate_ != nullptr) {
    std::lock_guard<std::mutex> lock(delegate_mutex_);
    return delegate_->predict(inputs);
  }
  RPTCN_CHECK(input_features_ == 0 || inputs.dim(1) == input_features_,
              "InferenceSession: model \""
                  << name_ << "\" expects " << input_features_
                  << " features, got " << inputs.dim(1));
  return std::visit(
      [&](const auto& snap) -> Tensor {
        if constexpr (std::is_same_v<std::decay_t<decltype(snap)>,
                                     std::monostate>) {
          RPTCN_CHECK(false, "InferenceSession: no snapshot");
          return Tensor();  // unreachable; silences -Wreturn-type
        } else {
          return serve::forward(snap, inputs);
        }
      },
      snap_);
}

}  // namespace rptcn::serve
