#include "serve/session.h"

#include <sstream>

#include "models/nn_forecasters.h"

namespace rptcn::serve {

namespace {

/// Fitted-net guard shared by the forecaster constructor branches.
template <typename Net>
const Net& require_net(const Net* net, const std::string& name) {
  RPTCN_CHECK(net != nullptr,
              "InferenceSession: forecaster \"" << name
                                                << "\" must be fitted first");
  return *net;
}

/// Null-checked deref so the delegating constructor below never dereferences
/// an empty shared_ptr.
models::Forecaster& require_forecaster(
    const std::shared_ptr<models::Forecaster>& forecaster) {
  RPTCN_CHECK(forecaster != nullptr, "InferenceSession: null forecaster");
  return *forecaster;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<models::Forecaster> forecaster,
                                   SessionOptions options)
    : InferenceSession(require_forecaster(forecaster), options) {
  // Only delegating sessions need the keep-alive; a snapshot is
  // self-contained and holding the forecaster would double its weights.
  if (delegate_ != nullptr) owner_ = std::move(forecaster);
}

InferenceSession::InferenceSession(models::Forecaster& forecaster,
                                   SessionOptions options)
    : name_(forecaster.name()) {
  const auto take = [this, &options](const auto& net) {
    snap_ = serve::snapshot(net);
    horizon_ = net.options().horizon;
    input_features_ = net.options().input_features;
    if (options.quantized) init_quantized();
    if (!quantized()) init_plans();
  };
  if (const auto* rptcn = dynamic_cast<const models::RptcnForecaster*>(&forecaster)) {
    take(require_net(rptcn->net(), name_));
  } else if (const auto* tcn = dynamic_cast<const models::TcnForecaster*>(&forecaster)) {
    take(require_net(tcn->net(), name_));
  } else if (const auto* lstm = dynamic_cast<const models::LstmForecaster*>(&forecaster)) {
    take(require_net(lstm->net(), name_));
  } else if (const auto* bilstm = dynamic_cast<const models::BiLstmForecaster*>(&forecaster)) {
    take(require_net(bilstm->net(), name_));
  } else if (const auto* cnnlstm = dynamic_cast<const models::CnnLstmForecaster*>(&forecaster)) {
    take(require_net(cnnlstm->net(), name_));
  } else {
    // No tensor weights (ARIMA, XGBoost): serve through the forecaster's own
    // batch-invariant predict(), serialised by delegate_mutex_.
    delegate_ = &forecaster;
  }
}

InferenceSession::InferenceSession(const nn::RptcnNet& net,
                                   SessionOptions options)
    : name_("RPTCN"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {
  if (options.quantized) init_quantized();  // no-op: RPTCN stays float
  init_plans();
}

InferenceSession::InferenceSession(const nn::LstmNet& net,
                                   SessionOptions options)
    : name_("LSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {
  if (options.quantized) init_quantized();
  if (!quantized()) init_plans();
}

InferenceSession::InferenceSession(const nn::BiLstmNet& net,
                                   SessionOptions options)
    : name_("BiLSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {
  if (options.quantized) init_quantized();
  if (!quantized()) init_plans();
}

InferenceSession::InferenceSession(const nn::CnnLstm& net,
                                   SessionOptions options)
    : name_("CNN-LSTM"),
      horizon_(net.options().horizon),
      input_features_(net.options().input_features),
      snap_(serve::snapshot(net)) {
  if (options.quantized) init_quantized();
  if (!quantized()) init_plans();
}

void InferenceSession::init_quantized() {
  // Quantize the GEMM-shaped weights of the LSTM-family snapshots; RPTCN
  // (conv-bound) and delegated models fall through with qsnap_ left empty —
  // quantized() then reports the truth. The float snap_ is kept: it is the
  // reference the accuracy tests compare against, and horizon/feature
  // metadata lives there.
  if (const auto* lstm = std::get_if<LstmNetSnap>(&snap_)) {
    qsnap_ = serve::quantize(*lstm);
  } else if (const auto* bilstm = std::get_if<BiLstmNetSnap>(&snap_)) {
    qsnap_ = serve::quantize(*bilstm);
  } else if (const auto* cnnlstm = std::get_if<CnnLstmSnap>(&snap_)) {
    qsnap_ = serve::quantize(*cnnlstm);
  }
}

void InferenceSession::init_plans() {
  // Capture closures deep-copy the snapshot's tensors, so the cache stays
  // valid for the session's whole lifetime; serving captures pin conv
  // dispatch to N=1 (CaptureOptions default), matching the eager runner's
  // batch-invariance guarantee.
  std::visit(
      [this](const auto& snap) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(snap)>,
                                      std::monostate>) {
          plans_ = std::make_unique<graph::PlanCache>(
              graph::make_capture_fn(snap));
        }
      },
      snap_);
}

std::string InferenceSession::expected_shape() const {
  std::ostringstream os;
  os << "[N, ";
  if (input_features_ != 0)
    os << input_features_;
  else
    os << "F";
  os << ", T]";
  if (plans_ != nullptr) {
    const auto shapes = plans_->shapes();
    if (!shapes.empty()) {
      os << " (captured plans:";
      for (const auto& s : shapes)
        os << " [" << s[0] << ", " << s[1] << ", " << s[2] << "]";
      os << ")";
    }
  }
  return os.str();
}

Tensor InferenceSession::run(const Tensor& inputs) const {
  RPTCN_CHECK(inputs.rank() == 3, "InferenceSession::run: model \""
                                      << name_ << "\" expects "
                                      << expected_shape() << ", got "
                                      << inputs.shape_string());
  if (delegate_ != nullptr) {
    runs_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(delegate_mutex_);
    return delegate_->predict(inputs);
  }
  RPTCN_CHECK(input_features_ == 0 || inputs.dim(1) == input_features_,
              "InferenceSession: model \""
                  << name_ << "\" expects " << expected_shape() << ", got "
                  << inputs.shape_string());
  runs_.fetch_add(1, std::memory_order_relaxed);
  if (!std::holds_alternative<std::monostate>(qsnap_)) {
    plan_bypass_.fetch_add(1, std::memory_order_relaxed);
    plan_bypass_counter_.add(1);
    return std::visit(
        [&](const auto& qsnap) -> Tensor {
          if constexpr (std::is_same_v<std::decay_t<decltype(qsnap)>,
                                       std::monostate>) {
            RPTCN_CHECK(false, "InferenceSession: no quantized snapshot");
            return Tensor();  // unreachable; silences -Wreturn-type
          } else {
            return serve::forward(qsnap, inputs);
          }
        },
        qsnap_);
  }
  if (plans_ != nullptr && graph::planning_enabled())
    return plans_->get(inputs.dim(0), inputs.dim(1), inputs.dim(2))
        ->run(inputs);
  return std::visit(
      [&](const auto& snap) -> Tensor {
        if constexpr (std::is_same_v<std::decay_t<decltype(snap)>,
                                     std::monostate>) {
          RPTCN_CHECK(false, "InferenceSession: no snapshot");
          return Tensor();  // unreachable; silences -Wreturn-type
        } else {
          return serve::forward(snap, inputs);
        }
      },
      snap_);
}

}  // namespace rptcn::serve
