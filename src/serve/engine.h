// BatchingEngine: micro-batching request queue in front of an
// InferenceSession.
//
// Concurrent single-window requests are coalesced into one batched forward
// over the N dimension (the im2col conv path and the fused LSTM gate GEMM
// both amortise with N), trading up to `max_delay_us` of queueing latency
// for throughput. Each submit() returns a future that delivers that
// request's row of the batched output — bit-identical to running the window
// alone, because the session pins per-layer kernel dispatch to its N=1
// decision.
//
// Threading model: submit() may be called from any thread. `workers` engine
// threads pop coalesced batches under one mutex; each batch forward runs
// inside an ActiveJobScope so concurrent batches gate nested OpenMP exactly
// like ThreadPool jobs do. A batch failure (e.g. a feature-count mismatch)
// is delivered to every future of that batch; other batches are unaffected.
// The destructor stops intake, drains every queued request, then joins.
//
// Hot-swap: the live model is a generation-counted WeightSnapshot.
// swap_session() atomically installs a new session and bumps the
// generation; a worker captures one snapshot under the queue mutex when it
// picks a batch up, so every batch runs end-to-end on the generation it
// started with — readers finish on the old generation, new batches see the
// new one, and nothing ever blocks the submit path. flush() is the fence:
// it blocks until every request submitted before the call has been
// delivered, so swap + flush guarantees later submissions are answered by
// the new weights only.
//
// Observability: serve/requests + serve/batches + serve/swaps_total
// counters, serve/queue_depth gauge, serve/batch_size,
// serve/queue_wait_seconds and serve/forward_seconds histograms, and a
// "serve/batch" trace span around each batched forward.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/session.h"

namespace rptcn::serve {

struct EngineOptions {
  std::size_t max_batch = 32;     ///< largest coalesced batch
  std::size_t max_delay_us = 200; ///< how long a lone request waits for peers
  std::size_t workers = 1;        ///< engine threads (>= 1; 0 clamps to 1)
  /// Metrics tenant label: serve/* metrics register as
  /// "serve/<metric>{tenant=<tenant>}" so N engines (fleet shards) never sum
  /// or clobber each other. Empty keeps the historical unlabeled names —
  /// the single-engine default.
  std::string tenant;

  /// Throws common::CheckError naming the offending field. Called by the
  /// engine constructor; callers hand-building options can validate early.
  void validate() const;
};

/// The engine's live model: an immutable session plus the monotone
/// generation swap_session() bumps. A batch captures one WeightSnapshot
/// when it is coalesced and runs entirely on it.
struct WeightSnapshot {
  std::shared_ptr<const InferenceSession> session;
  std::uint64_t generation = 0;
};

/// Point-in-time engine state, for backpressure observation without
/// scraping metrics JSON.
struct EngineStats {
  std::size_t queued = 0;         ///< requests waiting for a worker
  std::size_t in_flight = 0;      ///< requests inside a running batch
  std::uint64_t submitted = 0;    ///< requests ever accepted
  std::uint64_t completed = 0;    ///< requests delivered (value or error)
  std::uint64_t batches = 0;      ///< batches run
  std::uint64_t swaps = 0;        ///< swap_session() calls
  std::uint64_t generation = 1;   ///< current snapshot generation
};

class BatchingEngine {
 public:
  BatchingEngine(std::shared_ptr<const InferenceSession> session,
                 EngineOptions options = {});
  /// Multi-tenant shard mode: no default session — every request must pin
  /// its own via submit(window, session). The default-session submit()
  /// throws until swap_session() installs one.
  explicit BatchingEngine(EngineOptions options);
  /// Stops intake, drains every queued request, joins the workers. Futures
  /// obtained from submit() always complete.
  ~BatchingEngine();
  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  /// Enqueue one window [F, T]. The future delivers the forecast [horizon]
  /// or rethrows the batch's failure. Throws if the engine is stopping.
  std::future<Tensor> submit(Tensor window);

  /// Enqueue one window pinned to `session` (fleet path: one shard engine
  /// multiplexes many models). Pinned requests ignore the live snapshot and
  /// hot-swaps entirely; workers coalesce runs of same-session, same-shape
  /// requests, so entities sharing a snapshot still batch together.
  std::future<Tensor> submit(Tensor window,
                             std::shared_ptr<const InferenceSession> session);

  /// Atomically install a new session as the next generation and return
  /// that generation. Batches already coalesced finish on the snapshot they
  /// captured; batches coalesced after the call use the new session.
  /// Throws if the engine is stopping.
  std::uint64_t swap_session(std::shared_ptr<const InferenceSession> session);

  /// Block until every request submitted before this call has been
  /// delivered (in-flight batches included, not just the queue). Safe under
  /// concurrent submit() — later requests are not waited for. Must not be
  /// called from an engine worker (the hot-swap path calls it from the
  /// retrain thread).
  void flush();

  /// Requests currently queued (not yet picked up by a worker).
  std::size_t pending() const;

  /// Queue depth, in-flight count, totals and the live generation.
  EngineStats stats() const;

  /// The live weight snapshot (shared ownership, safe across swaps).
  WeightSnapshot current() const;
  /// The live session; shared_ptr because a swap may retire it any time.
  std::shared_ptr<const InferenceSession> session() const;
  std::uint64_t generation() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Pending {
    Tensor window;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Pinned session (fleet path); null = resolve the live snapshot when
    /// the batch is coalesced, exactly the single-tenant semantics.
    std::shared_ptr<const InferenceSession> session;
  };

  BatchingEngine(std::shared_ptr<const InferenceSession> session,
                 EngineOptions options, bool allow_null_session);

  std::future<Tensor> enqueue(Tensor window,
                              std::shared_ptr<const InferenceSession> session);

  void worker_loop();
  /// Runs one coalesced batch on `session`; returns requests delivered.
  void run_batch(std::vector<Pending>& batch, const InferenceSession& session);

  EngineOptions options_;

  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& requests_;
  obs::Counter& batches_;
  obs::Counter& swaps_counter_;
  obs::Gauge& queue_depth_;
  obs::Histogram& batch_size_;
  obs::Histogram& queue_wait_;
  obs::Histogram& forward_time_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  WeightSnapshot live_;            ///< guarded by mutex_
  std::size_t in_flight_ = 0;      ///< guarded by mutex_
  std::uint64_t submitted_ = 0;    ///< guarded by mutex_
  std::uint64_t completed_ = 0;    ///< guarded by mutex_
  std::uint64_t batches_run_ = 0;  ///< guarded by mutex_
  std::uint64_t swaps_ = 0;        ///< guarded by mutex_
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rptcn::serve
