// BatchingEngine: micro-batching request queue in front of an
// InferenceSession.
//
// Concurrent single-window requests are coalesced into one batched forward
// over the N dimension (the im2col conv path and the fused LSTM gate GEMM
// both amortise with N), trading up to `max_delay_us` of queueing latency
// for throughput. Each submit() returns a future that delivers that
// request's row of the batched output — bit-identical to running the window
// alone, because the session pins per-layer kernel dispatch to its N=1
// decision.
//
// Threading model: submit() may be called from any thread. `workers` engine
// threads pop coalesced batches under one mutex; each batch forward runs
// inside an ActiveJobScope so concurrent batches gate nested OpenMP exactly
// like ThreadPool jobs do. A batch failure (e.g. a feature-count mismatch)
// is delivered to every future of that batch; other batches are unaffected.
// The destructor stops intake, drains every queued request, then joins.
//
// Observability: serve/requests + serve/batches counters, serve/batch_size,
// serve/queue_wait_seconds and serve/forward_seconds histograms, and a
// "serve/batch" trace span around each batched forward.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/session.h"

namespace rptcn::serve {

struct EngineOptions {
  std::size_t max_batch = 32;     ///< largest coalesced batch
  std::size_t max_delay_us = 200; ///< how long a lone request waits for peers
  std::size_t workers = 1;        ///< engine threads (>= 1; 0 clamps to 1)
};

class BatchingEngine {
 public:
  BatchingEngine(std::shared_ptr<const InferenceSession> session,
                 EngineOptions options = {});
  /// Stops intake, drains every queued request, joins the workers. Futures
  /// obtained from submit() always complete.
  ~BatchingEngine();
  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  /// Enqueue one window [F, T]. The future delivers the forecast [horizon]
  /// or rethrows the batch's failure. Throws if the engine is stopping.
  std::future<Tensor> submit(Tensor window);

  /// Requests currently queued (not yet picked up by a worker).
  std::size_t pending() const;

  const InferenceSession& session() const { return *session_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Pending {
    Tensor window;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void run_batch(std::vector<Pending>& batch);

  std::shared_ptr<const InferenceSession> session_;
  EngineOptions options_;

  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& requests_;
  obs::Counter& batches_;
  obs::Histogram& batch_size_;
  obs::Histogram& queue_wait_;
  obs::Histogram& forward_time_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rptcn::serve
