#include "serve/engine.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace rptcn::serve {

void EngineOptions::validate() const {
  RPTCN_CHECK(max_batch >= 1, "EngineOptions.max_batch must be >= 1, got "
                                  << max_batch);
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "EngineOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

BatchingEngine::BatchingEngine(std::shared_ptr<const InferenceSession> session,
                               EngineOptions options)
    : BatchingEngine(std::move(session), std::move(options),
                     /*allow_null_session=*/false) {}

BatchingEngine::BatchingEngine(EngineOptions options)
    : BatchingEngine(nullptr, std::move(options),
                     /*allow_null_session=*/true) {}

BatchingEngine::BatchingEngine(std::shared_ptr<const InferenceSession> session,
                               EngineOptions options, bool allow_null_session)
    : options_(std::move(options)),
      requests_(obs::metrics().counter("serve/requests", options_.tenant)),
      batches_(obs::metrics().counter("serve/batches", options_.tenant)),
      swaps_counter_(
          obs::metrics().counter("serve/swaps_total", options_.tenant)),
      queue_depth_(obs::metrics().gauge("serve/queue_depth", options_.tenant)),
      batch_size_(
          obs::metrics().histogram("serve/batch_size", options_.tenant)),
      queue_wait_(obs::metrics().histogram("serve/queue_wait_seconds",
                                           options_.tenant)),
      forward_time_(
          obs::metrics().histogram("serve/forward_seconds", options_.tenant)) {
  RPTCN_CHECK(allow_null_session || session != nullptr,
              "BatchingEngine needs a session");
  options_.validate();
  live_ = WeightSnapshot{std::move(session), 1};
  if (options_.workers == 0) options_.workers = 1;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

BatchingEngine::~BatchingEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<Tensor> BatchingEngine::submit(Tensor window) {
  return enqueue(std::move(window), nullptr);
}

std::future<Tensor> BatchingEngine::submit(
    Tensor window, std::shared_ptr<const InferenceSession> session) {
  RPTCN_CHECK(session != nullptr,
              "BatchingEngine::submit(window, session) needs a session");
  return enqueue(std::move(window), std::move(session));
}

std::future<Tensor> BatchingEngine::enqueue(
    Tensor window, std::shared_ptr<const InferenceSession> session) {
  RPTCN_CHECK(window.rank() == 2,
              "BatchingEngine::submit expects one window [F,T], got "
                  << window.shape_string());
  Pending p;
  p.window = std::move(window);
  p.enqueued = std::chrono::steady_clock::now();
  p.session = std::move(session);
  std::future<Tensor> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RPTCN_CHECK(!stop_, "BatchingEngine::submit after shutdown began");
    RPTCN_CHECK(p.session != nullptr || live_.session != nullptr,
                "BatchingEngine::submit without a live session: a shard-mode "
                "engine serves pinned sessions only (use submit(window, "
                "session) or swap_session first)");
    queue_.push_back(std::move(p));
    ++submitted_;
    queue_depth_.set(static_cast<double>(queue_.size()));
  }
  requests_.add(1);
  cv_.notify_one();
  return fut;
}

std::uint64_t BatchingEngine::swap_session(
    std::shared_ptr<const InferenceSession> session) {
  RPTCN_CHECK(session != nullptr, "swap_session needs a session");
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RPTCN_CHECK(!stop_, "BatchingEngine::swap_session after shutdown began");
    live_ = WeightSnapshot{std::move(session), live_.generation + 1};
    generation = live_.generation;
    ++swaps_;
  }
  swaps_counter_.add(1);
  return generation;
}

void BatchingEngine::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t target = submitted_;
  cv_.wait(lock, [this, target] { return completed_ >= target; });
}

std::size_t BatchingEngine::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

EngineStats BatchingEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats s;
  s.queued = queue_.size();
  s.in_flight = in_flight_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.batches = batches_run_;
  s.swaps = swaps_;
  s.generation = live_.generation;
  return s;
}

WeightSnapshot BatchingEngine::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

std::shared_ptr<const InferenceSession> BatchingEngine::session() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.session;
}

std::uint64_t BatchingEngine::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.generation;
}

void BatchingEngine::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    WeightSnapshot snapshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty.
      if (queue_.empty()) return;
      if (!stop_ && queue_.size() < options_.max_batch) {
        // Hold the head request up to max_delay_us while peers arrive.
        const auto deadline =
            queue_.front().enqueued +
            std::chrono::microseconds(options_.max_delay_us);
        cv_.wait_until(lock, deadline, [this] {
          return stop_ || queue_.size() >= options_.max_batch;
        });
        if (queue_.empty()) continue;  // another worker took everything
      }
      // Coalesce a run of same-session, same-shape windows from the front; a
      // shape or session change starts the next batch so every request still
      // gets served. Default-session requests (null) form their own runs and
      // resolve the live snapshot below — the single-tenant semantics.
      const std::vector<std::size_t> shape = queue_.front().window.shape();
      const InferenceSession* pinned = queue_.front().session.get();
      while (!queue_.empty() && batch.size() < options_.max_batch &&
             queue_.front().session.get() == pinned &&
             queue_.front().window.shape() == shape) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // The batch runs end-to-end on the generation it was coalesced under:
      // a concurrent swap_session() retires `live_` but this shared_ptr
      // keeps the old snapshot alive until the batch delivers. Pinned
      // batches captured their session at submit and ignore the live one.
      snapshot = live_;
      in_flight_ += batch.size();
      queue_depth_.set(static_cast<double>(queue_.size()));
    }
    const std::size_t delivered = batch.size();
    const InferenceSession& session = batch.front().session != nullptr
                                          ? *batch.front().session
                                          : *snapshot.session;
    run_batch(batch, session);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= delivered;
      completed_ += delivered;
      ++batches_run_;
    }
    // Wake flush() waiters (and any worker parked on the queue predicate —
    // it re-checks and sleeps again, which is cheap and rare).
    cv_.notify_all();
  }
}

void BatchingEngine::run_batch(std::vector<Pending>& batch,
                               const InferenceSession& session) {
  const auto picked_up = std::chrono::steady_clock::now();
  for (const Pending& p : batch)
    queue_wait_.record(
        std::chrono::duration<double>(picked_up - p.enqueued).count());
  try {
    const std::size_t bsz = batch.size();
    const std::size_t f = batch.front().window.dim(0);
    const std::size_t t = batch.front().window.dim(1);
    Tensor input({bsz, f, t});
    const std::size_t stride = f * t;
    for (std::size_t i = 0; i < bsz; ++i)
      std::copy_n(batch[i].window.raw(), stride, input.raw() + i * stride);

    Tensor out;
    {
      obs::TraceSpan span("serve/batch");
      obs::ScopedTimer timer(forward_time_);
      // Count as a coarse job so concurrent batch forwards collapse nested
      // OpenMP instead of oversubscribing the cores.
      ActiveJobScope job;
      out = session.run(input);
    }
    RPTCN_CHECK(out.rank() == 2 && out.dim(0) == bsz,
                "serving forward returned " << out.shape_string()
                                            << " for batch of " << bsz);
    const std::size_t horizon = out.dim(1);
    for (std::size_t i = 0; i < bsz; ++i) {
      Tensor row({horizon});
      std::copy_n(out.raw() + i * horizon, horizon, row.raw());
      batch[i].promise.set_value(std::move(row));
    }
    batches_.add(1);
    batch_size_.record(static_cast<double>(bsz));
  } catch (...) {
    // Deliver the failure to every request of this batch. Promises already
    // satisfied (scatter had started) are left as-is.
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : batch) {
      try {
        p.promise.set_exception(err);
      } catch (const std::future_error&) {
      }
    }
  }
}

}  // namespace rptcn::serve
