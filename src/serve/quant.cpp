#include "serve/quant.h"

#include <vector>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace rptcn::serve {

namespace {

QLinearSnap quantize_linear(const LinearSnap& s) {
  QLinearSnap q;
  q.w = quantize_rows_symmetric(s.w.raw(), s.w.dim(0), s.w.dim(1));
  q.b = s.b;
  return q;
}

QLstmSnap quantize_lstm(const LstmSnap& s) {
  QLstmSnap q;
  q.w = quantize_rows_symmetric(s.w.raw(), s.w.dim(0), s.w.dim(1));
  q.b = s.b;
  q.hidden = s.hidden;
  return q;
}

/// y[N, out] = dequant(int8_gemm(quant(x), qw)) + b. One dynamic symmetric
/// activation scale per call (whole batch), so a coalesced batch and a lone
/// row can round differently — the quantized path trades the float path's
/// batch invariance for throughput, which is why its accuracy is gated
/// rather than assumed.
Tensor qlinear_forward(const QuantizedMatrix& qw, const Tensor& b,
                       const Tensor& x) {
  const std::size_t n = x.dim(0), in = x.dim(1), out = qw.rows;
  RPTCN_CHECK(in == qw.cols, "quantized linear: input features "
                                 << in << " != weight cols " << qw.cols);
  const float a_scale = symmetric_scale(x.raw(), n * in);
  std::vector<std::int8_t> qa(n * in);
  quantize_with_scale(x.raw(), n * in, a_scale, qa.data());
  std::vector<std::int32_t> acc(n * out);
  gemm_s8_nt(n, out, in, qa.data(), qw.data.data(), acc.data());
  Tensor y({n, out});
  dequantize_bias(acc.data(), n, out, a_scale, qw.scales.data(),
                  b.empty() ? nullptr : b.raw(), y.raw());
  return y;
}

/// Mirror of graph's lstm_forward with the gate GEMM quantized per step;
/// gate nonlinearities and the cell update stay float (dispatched kernels).
Tensor qlstm_forward(const QLstmSnap& s, const Tensor& x) {
  const std::size_t n = x.dim(0), t_len = x.dim(2), hid = s.hidden;
  Tensor h = Tensor::zeros({n, hid});
  Tensor c = Tensor::zeros({n, hid});
  for (std::size_t t = 0; t < t_len; ++t) {
    const Tensor xt = ag::fwd::time_slice(x, t);    // [N, F]
    const Tensor xh = ag::fwd::concat_cols(xt, h);  // [N, F+H]
    const Tensor pre = qlinear_forward(s.w, s.b, xh);  // [N, 4H]
    const Tensor i = rptcn::sigmoid(ag::fwd::slice_cols(pre, 0, hid));
    const Tensor f = rptcn::sigmoid(ag::fwd::slice_cols(pre, hid, hid));
    const Tensor g = rptcn::tanh_t(ag::fwd::slice_cols(pre, 2 * hid, hid));
    const Tensor o = rptcn::sigmoid(ag::fwd::slice_cols(pre, 3 * hid, hid));
    c = rptcn::add(rptcn::mul(f, c), rptcn::mul(i, g));
    h = rptcn::mul(o, rptcn::tanh_t(c));
  }
  return h;
}

Tensor qhead_forward(const QLinearSnap& head, const Tensor& h) {
  return qlinear_forward(head.w, head.b, h);
}

/// Pinned-dispatch float conv forward, same as the float runner's.
Tensor conv_forward(const ConvSnap& s, const Tensor& x) {
  return ag::fwd::conv1d(x, s.w, s.b.empty() ? nullptr : &s.b, s.dilation,
                         s.left_pad, /*dispatch_n=*/1);
}

}  // namespace

QLstmNetSnap quantize(const LstmNetSnap& snap) {
  return {quantize_lstm(snap.lstm), quantize_linear(snap.head)};
}

QBiLstmNetSnap quantize(const BiLstmNetSnap& snap) {
  return {quantize_lstm(snap.fwd), quantize_lstm(snap.bwd),
          quantize_linear(snap.head)};
}

QCnnLstmSnap quantize(const CnnLstmSnap& snap) {
  return {snap.conv, quantize_lstm(snap.lstm), quantize_linear(snap.head)};
}

Tensor forward(const QLstmNetSnap& snap, const Tensor& x) {
  return qhead_forward(snap.head, qlstm_forward(snap.lstm, x));
}

Tensor forward(const QBiLstmNetSnap& snap, const Tensor& x) {
  const Tensor h_fwd = qlstm_forward(snap.fwd, x);
  const Tensor h_bwd = qlstm_forward(snap.bwd, ag::fwd::time_reverse(x));
  return qhead_forward(snap.head, ag::fwd::concat_cols(h_fwd, h_bwd));
}

Tensor forward(const QCnnLstmSnap& snap, const Tensor& x) {
  const Tensor h = rptcn::relu(conv_forward(snap.conv, x));
  return qhead_forward(snap.head, qlstm_forward(snap.lstm, h));
}

}  // namespace rptcn::serve
