// Forwarding header: weight snapshots moved to src/graph (the capture/plan
// layer consumes them directly, and serve sits above graph in the link
// order). Existing serve:: spellings keep working via these aliases.
#pragma once

#include "graph/snapshot.h"

namespace rptcn::serve {

using graph::BiLstmNetSnap;
using graph::BlockSnap;
using graph::CnnLstmSnap;
using graph::ConvSnap;
using graph::LinearSnap;
using graph::LstmNetSnap;
using graph::LstmSnap;
using graph::RptcnSnap;
using graph::forward;
using graph::snapshot;

}  // namespace rptcn::serve
