// Gradient-boosted regression trees in the XGBoost style: second-order
// (gradient + hessian) Newton boosting, exact greedy splits, L2 leaf
// regularisation, split gain threshold, row/column subsampling, shrinkage
// and early stopping on a validation set. This is the paper's "XGBoost"
// baseline, applied to flattened window features.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rptcn::baselines {

struct GbtOptions {
  std::size_t n_rounds = 120;
  float learning_rate = 0.1f;
  std::size_t max_depth = 4;
  float lambda = 1.0f;             ///< L2 on leaf weights
  float gamma = 0.0f;              ///< min split gain
  float min_child_weight = 1.0f;   ///< min hessian sum per leaf
  float subsample = 1.0f;          ///< row sampling per round
  float colsample = 1.0f;          ///< feature sampling per round
  std::size_t early_stopping_rounds = 10;  ///< 0 disables
  float base_score = 0.5f;
  std::uint64_t seed = 7;
};

/// One regression tree (array-of-nodes layout).
class RegressionTree {
 public:
  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    float threshold = 0.0f;
    float weight = 0.0f;  ///< leaf value
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  float predict(std::span<const float> x) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  friend class GradientBoostedTrees;
  std::vector<Node> nodes_;
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(const GbtOptions& options = {});

  /// Fit on features x [n, f] and targets y [n]; optional validation pair
  /// enables early stopping and populates valid_loss_history().
  void fit(const Tensor& x, std::span<const float> y,
           const Tensor* x_valid = nullptr,
           std::span<const float> y_valid = {});

  float predict_one(std::span<const float> x) const;
  std::vector<float> predict(const Tensor& x) const;

  /// Training / validation MSE after each boosting round (for Figs. 9/10).
  const std::vector<double>& train_loss_history() const { return train_loss_; }
  const std::vector<double>& valid_loss_history() const { return valid_loss_; }
  std::size_t rounds_used() const { return trees_.size(); }
  const GbtOptions& options() const { return options_; }

 private:
  struct SplitResult;
  std::size_t build_node(RegressionTree& tree,
                         const std::vector<std::size_t>& rows,
                         const std::vector<std::size_t>& features,
                         std::size_t depth);

  GbtOptions options_;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_loss_;
  std::vector<double> valid_loss_;
  // Fit-time scratch (valid only inside fit()).
  const Tensor* x_ = nullptr;
  std::vector<float> grad_;
  std::vector<float> hess_;
};

}  // namespace rptcn::baselines
