#include "baselines/gbt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace rptcn::baselines {

float RegressionTree::predict(std::span<const float> x) const {
  RPTCN_DCHECK(!nodes_.empty(), "empty tree");
  std::size_t i = 0;
  while (!nodes_[i].is_leaf) {
    const auto& n = nodes_[i];
    RPTCN_DCHECK(n.feature < x.size(), "feature index out of range");
    i = static_cast<std::size_t>(x[n.feature] < n.threshold ? n.left : n.right);
  }
  return nodes_[i].weight;
}

std::size_t RegressionTree::depth() const {
  // Depth via iterative traversal (trees are tiny).
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[i].is_leaf) {
      stack.emplace_back(static_cast<std::size_t>(nodes_[i].left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(nodes_[i].right), d + 1);
    }
  }
  return max_depth;
}

GradientBoostedTrees::GradientBoostedTrees(const GbtOptions& options)
    : options_(options) {
  RPTCN_CHECK(options.n_rounds > 0, "n_rounds must be positive");
  RPTCN_CHECK(options.learning_rate > 0.0f, "learning_rate must be positive");
  RPTCN_CHECK(options.max_depth >= 1, "max_depth must be >= 1");
  RPTCN_CHECK(options.subsample > 0.0f && options.subsample <= 1.0f,
              "subsample must be in (0,1]");
  RPTCN_CHECK(options.colsample > 0.0f && options.colsample <= 1.0f,
              "colsample must be in (0,1]");
}

struct GradientBoostedTrees::SplitResult {
  bool found = false;
  std::size_t feature = 0;
  float threshold = 0.0f;
  float gain = 0.0f;
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
};

std::size_t GradientBoostedTrees::build_node(
    RegressionTree& tree, const std::vector<std::size_t>& rows,
    const std::vector<std::size_t>& features, std::size_t depth) {
  const std::size_t node_index = tree.nodes_.size();
  tree.nodes_.emplace_back();

  double g_total = 0.0, h_total = 0.0;
  for (const auto r : rows) {
    g_total += grad_[r];
    h_total += hess_[r];
  }
  const float lambda = options_.lambda;
  const auto leaf_weight = [&](double g, double h) {
    return static_cast<float>(-g / (h + lambda));
  };
  const auto score = [&](double g, double h) { return g * g / (h + lambda); };

  SplitResult best;
  if (depth < options_.max_depth && rows.size() >= 2) {
    [[maybe_unused]] const std::size_t f_count = x_->dim(1);
    std::vector<std::pair<float, std::size_t>> sorted;
    sorted.reserve(rows.size());
    for (const std::size_t f : features) {
      RPTCN_DCHECK(f < f_count, "feature out of range");
      sorted.clear();
      for (const auto r : rows) sorted.emplace_back(x_->at(r, f), r);
      std::sort(sorted.begin(), sorted.end());

      double g_left = 0.0, h_left = 0.0;
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        g_left += grad_[sorted[i].second];
        h_left += hess_[sorted[i].second];
        if (sorted[i].first == sorted[i + 1].first) continue;  // no split here
        const double g_right = g_total - g_left;
        const double h_right = h_total - h_left;
        if (h_left < options_.min_child_weight ||
            h_right < options_.min_child_weight)
          continue;
        const float gain = static_cast<float>(
            0.5 * (score(g_left, h_left) + score(g_right, h_right) -
                   score(g_total, h_total)) -
            options_.gamma);
        if (gain > best.gain) {
          best.found = true;
          best.feature = f;
          best.threshold = 0.5f * (sorted[i].first + sorted[i + 1].first);
          best.gain = gain;
        }
      }
    }
    if (best.found) {
      for (const auto r : rows) {
        if (x_->at(r, best.feature) < best.threshold)
          best.left_rows.push_back(r);
        else
          best.right_rows.push_back(r);
      }
      // Guard against degenerate splits from threshold midpointing.
      if (best.left_rows.empty() || best.right_rows.empty()) best.found = false;
    }
  }

  if (!best.found) {
    tree.nodes_[node_index].is_leaf = true;
    tree.nodes_[node_index].weight = leaf_weight(g_total, h_total);
    return node_index;
  }

  const std::size_t left =
      build_node(tree, best.left_rows, features, depth + 1);
  const std::size_t right =
      build_node(tree, best.right_rows, features, depth + 1);
  auto& node = tree.nodes_[node_index];
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = static_cast<std::int32_t>(left);
  node.right = static_cast<std::int32_t>(right);
  return node_index;
}

void GradientBoostedTrees::fit(const Tensor& x, std::span<const float> y,
                               const Tensor* x_valid,
                               std::span<const float> y_valid) {
  RPTCN_CHECK(x.rank() == 2, "GBT features must be [n, f]");
  const std::size_t n = x.dim(0), f = x.dim(1);
  RPTCN_CHECK(y.size() == n, "target length mismatch");
  if (x_valid != nullptr) {
    RPTCN_CHECK(x_valid->rank() == 2 && x_valid->dim(1) == f,
                "validation feature mismatch");
    RPTCN_CHECK(y_valid.size() == x_valid->dim(0),
                "validation target mismatch");
  }

  trees_.clear();
  train_loss_.clear();
  valid_loss_.clear();
  x_ = &x;
  grad_.assign(n, 0.0f);
  hess_.assign(n, 1.0f);  // squared loss: constant hessian

  Rng rng(options_.seed);
  std::vector<float> pred(n, options_.base_score);
  std::vector<float> pred_valid;
  if (x_valid != nullptr)
    pred_valid.assign(x_valid->dim(0), options_.base_score);

  double best_valid = std::numeric_limits<double>::infinity();
  std::size_t rounds_since_best = 0;
  std::size_t best_round = 0;

  for (std::size_t round = 0; round < options_.n_rounds; ++round) {
    // Squared loss: g = pred - y, h = 1.
    for (std::size_t i = 0; i < n; ++i) grad_[i] = pred[i] - y[i];

    // Row subsampling.
    std::vector<std::size_t> rows;
    rows.reserve(n);
    if (options_.subsample < 1.0f) {
      for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(options_.subsample)) rows.push_back(i);
      if (rows.empty()) rows.push_back(rng.uniform_index(n));
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    // Column subsampling.
    std::vector<std::size_t> features;
    if (options_.colsample < 1.0f) {
      const auto perm = rng.permutation(f);
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(
                 options_.colsample * static_cast<float>(f))));
      features.assign(perm.begin(), perm.begin() + keep);
    } else {
      features.resize(f);
      std::iota(features.begin(), features.end(), std::size_t{0});
    }

    RegressionTree tree;
    build_node(tree, rows, features, 0);

    // Update predictions with shrinkage.
    for (std::size_t i = 0; i < n; ++i) {
      std::span<const float> xi(x.raw() + i * f, f);
      pred[i] += options_.learning_rate * tree.predict(xi);
    }
    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = static_cast<double>(pred[i]) - y[i];
      mse += e * e;
    }
    train_loss_.push_back(mse / static_cast<double>(n));

    trees_.push_back(std::move(tree));

    if (x_valid != nullptr) {
      const std::size_t nv = x_valid->dim(0);
      double vmse = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        std::span<const float> xi(x_valid->raw() + i * f, f);
        pred_valid[i] += options_.learning_rate * trees_.back().predict(xi);
        const double e = static_cast<double>(pred_valid[i]) - y_valid[i];
        vmse += e * e;
      }
      vmse /= static_cast<double>(nv);
      valid_loss_.push_back(vmse);
      if (vmse < best_valid) {
        best_valid = vmse;
        best_round = trees_.size();
        rounds_since_best = 0;
      } else if (options_.early_stopping_rounds > 0 &&
                 ++rounds_since_best >= options_.early_stopping_rounds) {
        trees_.resize(best_round);  // keep the best prefix
        break;
      }
    }
  }
  x_ = nullptr;
  grad_.clear();
  hess_.clear();
}

float GradientBoostedTrees::predict_one(std::span<const float> x) const {
  float p = options_.base_score;
  for (const auto& tree : trees_) p += options_.learning_rate * tree.predict(x);
  return p;
}

std::vector<float> GradientBoostedTrees::predict(const Tensor& x) const {
  RPTCN_CHECK(x.rank() == 2, "GBT features must be [n, f]");
  const std::size_t n = x.dim(0), f = x.dim(1);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = predict_one({x.raw() + i * f, f});
  return out;
}

}  // namespace rptcn::baselines
