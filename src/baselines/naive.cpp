#include "baselines/naive.h"

#include "common/check.h"

namespace rptcn::baselines {

std::vector<double> last_value_predictions(std::span<const double> series,
                                           std::size_t start) {
  RPTCN_CHECK(start >= 1 && start < series.size(), "bad start index");
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t)
    out.push_back(series[t - 1]);
  return out;
}

std::vector<double> seasonal_naive_predictions(std::span<const double> series,
                                               std::size_t start,
                                               std::size_t period) {
  RPTCN_CHECK(period >= 1, "period must be >= 1");
  RPTCN_CHECK(start >= period && start < series.size(), "bad start index");
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t)
    out.push_back(series[t - period]);
  return out;
}

std::vector<double> moving_average_predictions(std::span<const double> series,
                                               std::size_t start,
                                               std::size_t window) {
  RPTCN_CHECK(window >= 1, "window must be >= 1");
  RPTCN_CHECK(start >= window && start < series.size(), "bad start index");
  std::vector<double> out;
  out.reserve(series.size() - start);
  double acc = 0.0;
  for (std::size_t t = start - window; t < start; ++t) acc += series[t];
  for (std::size_t t = start; t < series.size(); ++t) {
    out.push_back(acc / static_cast<double>(window));
    acc += series[t] - series[t - window];
  }
  return out;
}

}  // namespace rptcn::baselines
