// Trivial reference predictors used as sanity floors in benches and tests:
// any learned model must beat (or match, for near-random-walk series) these.
#pragma once

#include <span>
#include <vector>

namespace rptcn::baselines {

/// Persistence forecast: yhat_t = y_{t-1} for t in [start, size).
std::vector<double> last_value_predictions(std::span<const double> series,
                                           std::size_t start);

/// Seasonal persistence: yhat_t = y_{t-period}.
std::vector<double> seasonal_naive_predictions(std::span<const double> series,
                                               std::size_t start,
                                               std::size_t period);

/// Rolling mean of the previous `window` values.
std::vector<double> moving_average_predictions(std::span<const double> series,
                                               std::size_t start,
                                               std::size_t window);

}  // namespace rptcn::baselines
