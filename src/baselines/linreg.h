// Double-precision ordinary least squares via ridge-stabilised normal
// equations + Cholesky. Small design matrices only (ARIMA estimation uses
// a few dozen columns), so the O(k^3) solve is negligible.
#pragma once

#include <span>
#include <vector>

namespace rptcn::baselines {

/// Solve min ||A x - b||^2 + ridge ||x||^2, A row-major [rows x cols].
/// Throws CheckError on dimension mismatch or a non-SPD system (which the
/// ridge term prevents for any ridge > 0).
std::vector<double> least_squares(std::span<const double> a, std::size_t rows,
                                  std::size_t cols, std::span<const double> b,
                                  double ridge = 1e-8);

/// Cholesky solve of an SPD system m x = rhs, m row-major [n x n].
/// Returns false if m is not positive definite (m is left modified).
bool cholesky_solve(std::vector<double>& m, std::vector<double>& rhs,
                    std::size_t n);

}  // namespace rptcn::baselines
