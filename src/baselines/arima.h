// ARIMA(p, d, q) baseline, estimated with the Hannan–Rissanen two-stage
// procedure:
//   stage 1: a long autoregression (OLS) approximates the innovations;
//   stage 2: OLS of the differenced series on its own lags and the lagged
//            innovation estimates gives (c, phi, theta).
// Forecasting is the standard ARMA recursion on the d-times differenced
// series, integrated back to levels. This mirrors the paper's strongest
// univariate baseline ("ARIMA mainly considers the difference between
// adjacent time intervals").
#pragma once

#include <span>
#include <vector>

namespace rptcn::baselines {

struct ArimaOptions {
  std::size_t p = 2;        ///< AR order
  std::size_t d = 1;        ///< differencing order
  std::size_t q = 1;        ///< MA order
  std::size_t long_ar = 20; ///< stage-1 AR order (>= p + q)
  double ridge = 1e-8;      ///< OLS stabiliser
};

class Arima {
 public:
  explicit Arima(const ArimaOptions& options = {});

  /// Estimate (c, phi, theta) from a training series (levels, not diffs).
  void fit(std::span<const double> series);
  bool fitted() const { return fitted_; }

  /// h-step-ahead forecast continuing from the end of `history` (levels).
  /// Future innovations are set to their expectation (zero).
  std::vector<double> forecast(std::span<const double> history,
                               std::size_t steps) const;

  /// Rolling one-step-ahead predictions for series[start .. size):
  /// the prediction at index t conditions on series[0..t). This is how the
  /// accuracy benches evaluate every model on the test split.
  std::vector<double> one_step_predictions(std::span<const double> series,
                                           std::size_t start) const;

  const std::vector<double>& ar_coefficients() const { return phi_; }
  const std::vector<double>& ma_coefficients() const { return theta_; }
  double intercept() const { return intercept_; }
  const ArimaOptions& options() const { return options_; }

 private:
  /// Apply d-th order differencing.
  static std::vector<double> difference(std::span<const double> series,
                                        std::size_t d);
  /// Innovations of the fitted ARMA over a differenced series.
  std::vector<double> innovations(std::span<const double> w) const;

  ArimaOptions options_;
  bool fitted_ = false;
  double intercept_ = 0.0;
  std::vector<double> phi_;    ///< AR coefficients (lag 1..p)
  std::vector<double> theta_;  ///< MA coefficients (lag 1..q)
};

/// Grid-search (p, d, q) over small orders by AIC-like penalised in-sample
/// MSE on the differenced scale; returns the best options.
ArimaOptions select_arima_order(std::span<const double> series,
                                std::size_t max_p = 3, std::size_t max_d = 1,
                                std::size_t max_q = 2);

}  // namespace rptcn::baselines
