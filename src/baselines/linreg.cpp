#include "baselines/linreg.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::baselines {

bool cholesky_solve(std::vector<double>& m, std::vector<double>& rhs,
                    std::size_t n) {
  RPTCN_CHECK(m.size() == n * n && rhs.size() == n, "cholesky size mismatch");
  // In-place lower Cholesky factorisation.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = m[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= m[i * n + k] * m[j * n + k];
      if (i == j) {
        if (s <= 0.0) return false;
        m[i * n + j] = std::sqrt(s);
      } else {
        m[i * n + j] = s / m[j * n + j];
      }
    }
  }
  // Forward substitution L y = rhs.
  for (std::size_t i = 0; i < n; ++i) {
    double s = rhs[i];
    for (std::size_t k = 0; k < i; ++k) s -= m[i * n + k] * rhs[k];
    rhs[i] = s / m[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= m[k * n + ii] * rhs[k];
    rhs[ii] = s / m[ii * n + ii];
  }
  return true;
}

std::vector<double> least_squares(std::span<const double> a, std::size_t rows,
                                  std::size_t cols, std::span<const double> b,
                                  double ridge) {
  RPTCN_CHECK(a.size() == rows * cols, "design matrix size mismatch");
  RPTCN_CHECK(b.size() == rows, "target size mismatch");
  RPTCN_CHECK(rows >= cols, "least_squares needs rows >= cols");
  RPTCN_CHECK(ridge >= 0.0, "ridge must be non-negative");

  // Normal equations: (A^T A + ridge I) x = A^T b.
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> atb(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    for (std::size_t i = 0; i < cols; ++i) {
      atb[i] += row[i] * b[r];
      for (std::size_t j = i; j < cols; ++j) ata[i * cols + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < cols; ++i) {
    ata[i * cols + i] += ridge;
    for (std::size_t j = 0; j < i; ++j) ata[i * cols + j] = ata[j * cols + i];
  }
  const bool ok = cholesky_solve(ata, atb, cols);
  RPTCN_CHECK(ok, "normal equations not positive definite; increase ridge");
  return atb;
}

}  // namespace rptcn::baselines
