#include "baselines/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/linreg.h"
#include "common/check.h"

namespace rptcn::baselines {

Arima::Arima(const ArimaOptions& options) : options_(options) {
  RPTCN_CHECK(options.long_ar >= options.p + options.q,
              "long_ar must be >= p + q");
}

std::vector<double> Arima::difference(std::span<const double> series,
                                      std::size_t d) {
  std::vector<double> w(series.begin(), series.end());
  for (std::size_t round = 0; round < d; ++round) {
    RPTCN_CHECK(w.size() >= 2, "series too short to difference");
    for (std::size_t i = 0; i + 1 < w.size(); ++i) w[i] = w[i + 1] - w[i];
    w.pop_back();
  }
  return w;
}

void Arima::fit(std::span<const double> series) {
  const std::size_t p = options_.p, q = options_.q;
  std::vector<double> w = difference(series, options_.d);
  const std::size_t n = w.size();
  const std::size_t long_ar =
      std::min(options_.long_ar, std::max<std::size_t>(p + q, n / 4));
  RPTCN_CHECK(n > long_ar + p + q + 10,
              "series too short for ARIMA estimation: " << n << " points");

  // Stage 1: long AR by OLS -> innovation estimates.
  std::vector<double> ehat(n, 0.0);
  {
    const std::size_t rows = n - long_ar;
    const std::size_t cols = long_ar + 1;
    std::vector<double> design(rows * cols);
    std::vector<double> target(rows);
    for (std::size_t t = long_ar; t < n; ++t) {
      double* row = design.data() + (t - long_ar) * cols;
      row[0] = 1.0;
      for (std::size_t i = 1; i <= long_ar; ++i) row[i] = w[t - i];
      target[t - long_ar] = w[t];
    }
    const auto coef =
        least_squares(design, rows, cols, target, options_.ridge);
    for (std::size_t t = long_ar; t < n; ++t) {
      double pred = coef[0];
      for (std::size_t i = 1; i <= long_ar; ++i) pred += coef[i] * w[t - i];
      ehat[t] = w[t] - pred;
    }
  }

  // Stage 2: OLS of w_t on lags of w and lags of ehat.
  const std::size_t t0 = long_ar + std::max(p, q);
  const std::size_t rows = n - t0;
  const std::size_t cols = 1 + p + q;
  std::vector<double> design(rows * cols);
  std::vector<double> target(rows);
  for (std::size_t t = t0; t < n; ++t) {
    double* row = design.data() + (t - t0) * cols;
    row[0] = 1.0;
    for (std::size_t i = 1; i <= p; ++i) row[i] = w[t - i];
    for (std::size_t j = 1; j <= q; ++j) row[p + j] = ehat[t - j];
    target[t - t0] = w[t];
  }
  const auto coef = least_squares(design, rows, cols, target, options_.ridge);
  intercept_ = coef[0];
  phi_.assign(coef.begin() + 1, coef.begin() + 1 + p);
  theta_.assign(coef.begin() + 1 + p, coef.end());
  fitted_ = true;
}

std::vector<double> Arima::innovations(std::span<const double> w) const {
  const std::size_t p = options_.p, q = options_.q;
  std::vector<double> e(w.size(), 0.0);
  for (std::size_t t = 0; t < w.size(); ++t) {
    double pred = intercept_;
    for (std::size_t i = 1; i <= p; ++i)
      if (t >= i) pred += phi_[i - 1] * w[t - i];
    for (std::size_t j = 1; j <= q; ++j)
      if (t >= j) pred += theta_[j - 1] * e[t - j];
    e[t] = w[t] - pred;
  }
  return e;
}

std::vector<double> Arima::forecast(std::span<const double> history,
                                    std::size_t steps) const {
  RPTCN_CHECK(fitted_, "Arima::forecast before fit");
  RPTCN_CHECK(history.size() > options_.d + std::max(options_.p, options_.q),
              "history too short");
  std::vector<double> w = difference(history, options_.d);
  std::vector<double> e = innovations(w);

  // Last value of each difference order, for integration.
  std::vector<double> levels(options_.d);
  {
    std::vector<double> cur(history.begin(), history.end());
    for (std::size_t k = 0; k < options_.d; ++k) {
      levels[k] = cur.back();
      for (std::size_t i = 0; i + 1 < cur.size(); ++i) cur[i] = cur[i + 1] - cur[i];
      cur.pop_back();
    }
  }

  std::vector<double> out;
  out.reserve(steps);
  for (std::size_t h = 0; h < steps; ++h) {
    double what = intercept_;
    for (std::size_t i = 1; i <= options_.p; ++i)
      if (w.size() >= i) what += phi_[i - 1] * w[w.size() - i];
    for (std::size_t j = 1; j <= options_.q; ++j)
      if (e.size() >= j) what += theta_[j - 1] * e[e.size() - j];
    w.push_back(what);
    e.push_back(0.0);  // expected future innovation

    // Integrate Δ^d -> levels.
    double val = what;
    for (std::size_t k = options_.d; k-- > 0;) {
      val = levels[k] + val;
      levels[k] = val;
    }
    out.push_back(val);
  }
  return out;
}

std::vector<double> Arima::one_step_predictions(std::span<const double> series,
                                                std::size_t start) const {
  RPTCN_CHECK(fitted_, "Arima::one_step_predictions before fit");
  const std::size_t d = options_.d;
  RPTCN_CHECK(start > d + std::max(options_.p, options_.q),
              "start index leaves no history");
  RPTCN_CHECK(start < series.size(), "start beyond series");

  const std::vector<double> w = difference(series, d);
  const std::vector<double> e = innovations(w);

  // Difference stacks for the integration term: diffs[k] = Δ^k series.
  std::vector<std::vector<double>> diffs(d + 1);
  diffs[0].assign(series.begin(), series.end());
  for (std::size_t k = 1; k <= d; ++k) diffs[k] = difference(series, k);

  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t) {
    const std::size_t j = t - d;  // index into the differenced series
    double what = intercept_;
    for (std::size_t i = 1; i <= options_.p; ++i)
      if (j >= i) what += phi_[i - 1] * w[j - i];
    for (std::size_t jj = 1; jj <= options_.q; ++jj)
      if (j >= jj) what += theta_[jj - 1] * e[j - jj];
    // yhat_t = what + sum_{k=0}^{d-1} (Δ^k y)_{t-1}.
    double yhat = what;
    for (std::size_t k = 0; k < d; ++k) yhat += diffs[k][t - 1 - k];
    out.push_back(yhat);
  }
  return out;
}

ArimaOptions select_arima_order(std::span<const double> series,
                                std::size_t max_p, std::size_t max_d,
                                std::size_t max_q) {
  ArimaOptions best;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= max_d; ++d) {
    for (std::size_t p = 0; p <= max_p; ++p) {
      for (std::size_t q = 0; q <= max_q; ++q) {
        if (p + q == 0) continue;
        ArimaOptions opt;
        opt.p = p;
        opt.d = d;
        opt.q = q;
        try {
          Arima model(opt);
          model.fit(series);
          // Penalised one-step in-sample MSE (AIC-flavoured).
          const std::size_t start = series.size() / 4 + d + p + q + 1;
          const auto preds = model.one_step_predictions(series, start);
          double mse = 0.0;
          for (std::size_t i = 0; i < preds.size(); ++i) {
            const double err = preds[i] - series[start + i];
            mse += err * err;
          }
          mse /= static_cast<double>(preds.size());
          const double n = static_cast<double>(preds.size());
          const double score =
              n * std::log(std::max(mse, 1e-300)) +
              2.0 * static_cast<double>(p + q + 1);
          if (score < best_score) {
            best_score = score;
            best = opt;
          }
        } catch (const CheckError&) {
          // Degenerate order for this series; skip.
        }
      }
    }
  }
  return best;
}

}  // namespace rptcn::baselines
