// Rolling retrain: background re-fit on the trailing window, then atomic
// hot-swap into the live serving engine.
//
// The retrainer owns a one-thread common::ThreadPool. request() copies the
// caller's trailing history frame and normalizer state into the job and
// returns immediately — the ingest path never waits on training. The job
// builds a supervised dataset (build_dataset, the same
// transform -> window -> chronological-split recipe as the batch pipeline),
// fits a fresh registry forecaster with the opt:: trainer (EpochObserver
// hooks attach as everywhere else), snapshots it into an InferenceSession,
// writes a per-generation weight checkpoint, and swap_session()s the result
// into the BatchingEngine followed by flush() — after the swap is reported,
// every new submit is answered by the new weights, while batches that were
// already coalesced finished on their old generation.
//
// Failure containment: a fit that throws marks the outcome failed and
// leaves the engine serving the previous generation. A checkpoint save that
// fails (kIoError/kShapeMismatch) aborts the swap and propagates the
// CheckpointStatus through RetrainOutcome — the live model and the on-disk
// state never diverge. kUnsupported (ARIMA/XGBoost) still swaps: those
// models have no weight checkpoints and are cheap to refit.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "data/windowing.h"
#include "models/registry.h"
#include "serve/engine.h"
#include "stream/normalizer.h"

namespace rptcn::stream {

struct RetrainOptions {
  std::string model_name = "LSTM";   ///< any models::make_forecaster name
  models::ModelConfig model;         ///< architecture + training recipe
  std::size_t history = 512;         ///< trailing ticks to fit on
  data::WindowOptions window;        ///< supervised window/horizon/stride
  double train_frac = 0.7;           ///< chronological split of the windows
  double valid_frac = 0.25;          ///< (remainder is an unused test tail)
  std::size_t min_ticks_between = 64;  ///< cooldown between triggers
  std::string checkpoint_dir;        ///< per-generation weights ("" = none)
  /// Quality gate: a fit whose best validation loss (normalised units)
  /// exceeds this is retried with a perturbed weight seed, and if every
  /// attempt fails the gate the swap is refused — the incumbent keeps
  /// serving and the drift detectors re-trigger if it is genuinely stale.
  /// Fixed-seed training occasionally early-stops in a bad basin on one
  /// trailing window (an order of magnitude above its neighbours' loss);
  /// shipping such a generation costs far more than one extra fit. 0 = off.
  double max_valid_loss = 0.0;
  std::size_t fit_attempts = 2;      ///< total tries while the gate fails
  /// Metrics tenant label for the stream/retrain* series and the generation
  /// gauge (empty keeps the historical unlabeled names).
  std::string tenant;
  /// Serve each fitted generation through the int8 quantized snapshot
  /// (serve::SessionOptions::quantized). LSTM-family models only; other
  /// models silently keep the float path (the session reports the truth via
  /// quantized()).
  bool quantized_serving = false;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

struct RetrainOutcome {
  std::uint64_t generation = 0;      ///< engine generation after the swap
  bool swapped = false;
  models::CheckpointStatus checkpoint = models::CheckpointStatus::kUnsupported;
  std::string checkpoint_path;       ///< set when a checkpoint was written
  std::string reason;                ///< what triggered the retrain
  std::string error;                 ///< non-empty when fit threw
  double fit_seconds = 0.0;          ///< total across gate-retry attempts
  double valid_loss = 0.0;           ///< best validation loss of the fit
  std::size_t train_samples = 0;
  std::size_t attempts = 1;          ///< fits run (> 1 when the gate retried)
  bool quality_rejected = false;     ///< every attempt failed max_valid_loss
};

/// A fitted generation. The session co-owns the forecaster when it
/// delegates (ARIMA/XGBoost), so holding the session alone is always
/// lifetime-safe; the forecaster rides along here for checkpointing.
struct FittedGeneration {
  std::shared_ptr<models::Forecaster> forecaster;
  std::shared_ptr<const serve::InferenceSession> session;
  RetrainOutcome outcome;
};

/// Write `g`'s weights to `<checkpoint_dir>/gen_<outcome.generation>.ckpt`,
/// recording status and path in `g.outcome`. No-op when checkpointing is
/// off or the fit failed.
void save_checkpoint(FittedGeneration& g, const RetrainOptions& options);

/// The retrainer's dataset recipe, exposed so tests (and the bootstrap fit)
/// can reproduce bit-for-bit what a generation was trained on: transform
/// `frame` (target = column 0) with `normalizer`, window it, split
/// chronologically. Also the shape donor for Forecaster::restore.
models::ForecastDataset build_dataset(const data::TimeSeriesFrame& frame,
                                      const OnlineNormalizer& normalizer,
                                      const RetrainOptions& options);

/// Synchronous fit of one generation (the bootstrap path and the body of
/// every background retrain). Throws nothing: a failed fit is reported in
/// outcome.error with forecaster/session left null.
FittedGeneration fit_generation(const data::TimeSeriesFrame& frame,
                                const OnlineNormalizer& normalizer,
                                const RetrainOptions& options,
                                std::uint64_t next_generation,
                                std::string reason);

/// fit_generation with the max_valid_loss quality gate: retries with a
/// perturbed weight seed while the gate fails (up to fit_attempts fits) and
/// returns the lowest-valid-loss attempt, outcome.quality_rejected set when
/// even that one failed the gate. With the gate disabled this is exactly
/// one fit_generation call. Under the gate only the winning attempt is
/// checkpointed, and only when it passed — gen_<N>.ckpt always holds the
/// weights outcome.checkpoint_path points at, never a losing retry's, and
/// a rejected generation leaves no checkpoint behind (callers that install
/// one anyway, like the bootstrap, save_checkpoint it themselves).
FittedGeneration fit_generation_gated(const data::TimeSeriesFrame& frame,
                                      const OnlineNormalizer& normalizer,
                                      const RetrainOptions& options,
                                      std::uint64_t next_generation,
                                      const std::string& reason);

class RollingRetrainer {
 public:
  /// The engine must outlive the retrainer.
  RollingRetrainer(serve::BatchingEngine& engine, RetrainOptions options);
  /// Waits for an in-flight retrain to finish (swap included).
  ~RollingRetrainer();
  RollingRetrainer(const RollingRetrainer&) = delete;
  RollingRetrainer& operator=(const RollingRetrainer&) = delete;

  /// Schedule a background retrain on `history` (trailing raw ticks, target
  /// = column 0) under `normalizer`'s current state. Returns false — and
  /// does nothing — while a retrain is in flight or the cooldown since the
  /// last accepted trigger has not elapsed (`tick` is the caller's tick
  /// counter, the cooldown clock).
  bool request(data::TimeSeriesFrame history, OnlineNormalizer normalizer,
               std::string reason, std::size_t tick);

  /// A retrain is running (or queued) right now.
  bool busy() const;
  /// Block until the in-flight retrain (if any) completed and swapped.
  void wait_idle();

  /// Outcome of the most recently *finished* retrain (default before any).
  RetrainOutcome last() const;
  std::uint64_t completed() const;
  std::uint64_t failures() const;

  const RetrainOptions& options() const { return options_; }

 private:
  void run_job(data::TimeSeriesFrame history, OnlineNormalizer normalizer,
               std::string reason);

  serve::BatchingEngine& engine_;
  RetrainOptions options_;

  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& retrains_counter_;
  obs::Counter& failures_counter_;
  obs::Counter& swap_aborts_counter_;
  obs::Histogram& retrain_seconds_;
  obs::Gauge& generation_gauge_;

  mutable std::mutex mutex_;
  std::future<void> inflight_;
  bool has_trigger_ = false;
  std::size_t last_trigger_tick_ = 0;
  RetrainOutcome last_outcome_;
  std::uint64_t completed_ = 0;
  std::uint64_t failures_ = 0;

  ThreadPool pool_;  ///< one worker; declared last so jobs see live members
};

}  // namespace rptcn::stream
