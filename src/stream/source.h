// Live ingestion: tick providers and the StreamSource that pulls them into
// per-indicator ring buffers.
//
// A TickProvider yields one eight-indicator sample per call — either
// replayed from a recorded frame (ReplayProvider) or generated live by the
// per-container workload model (ModelProvider). StreamSource::poll() pulls
// one tick, drops incomplete (NaN) ticks with exactly the semantics of the
// batch data::clean_drop_incomplete pass, folds the complete ones into an
// OnlineNormalizer, and appends the raw values to fixed-capacity rings.
// The ingest path is O(features) per tick, allocation-free in steady state,
// and never touches a lock — retraining happens on another thread against a
// *copy* of the trailing history (history()).
//
// Consistency with the batch path: replaying a prefix through a kMinMax
// StreamSource leaves the normalizer in exactly the state of
// MinMaxScaler::fit on the cleaned prefix, and latest_window() produces the
// same float values data::make_windows would cut from the batch-normalised
// frame (proven bit-for-bit in tests/test_stream.cpp).
#pragma once

#include <memory>
#include <optional>

#include "obs/metrics.h"
#include "stream/channel.h"
#include "stream/normalizer.h"
#include "stream/ring_buffer.h"
#include "tensor/tensor.h"
#include "trace/cluster.h"
#include "trace/workload_model.h"

namespace rptcn::stream {

class TickProvider {
 public:
  virtual ~TickProvider() = default;
  /// Next sample, or nullopt once the stream is exhausted.
  virtual std::optional<trace::IndicatorSample> next() = 0;
};

/// Replays a recorded frame (e.g. one ClusterSimulator container trace)
/// tick by tick. The frame must carry all eight Table-I indicator columns.
class ReplayProvider final : public TickProvider {
 public:
  explicit ReplayProvider(data::TimeSeriesFrame frame);
  std::optional<trace::IndicatorSample> next() override;

 private:
  data::TimeSeriesFrame frame_;
  std::vector<const std::vector<double>*> columns_;  ///< enum order
  std::size_t t_ = 0;
};

/// Generates ticks live from one trace::WorkloadModel under fixed machine
/// contention — the "simulator keeps emitting" end of the loop.
class ModelProvider final : public TickProvider {
 public:
  /// `limit` = 0 means unbounded.
  ModelProvider(const trace::WorkloadParams& params, std::uint64_t seed,
                double contention = 0.3, std::size_t limit = 0);
  std::optional<trace::IndicatorSample> next() override;

  const trace::WorkloadModel& model() const { return model_; }

 private:
  trace::WorkloadModel model_;
  double contention_;
  std::size_t limit_;
  std::size_t emitted_ = 0;
};

/// One regime flip inside a generated trace: the tick index of the first
/// sample emitted under the new parameters, plus the scripted magnitude.
/// Scenario benches align their scoring windows (and retrain cadences) to
/// these instead of hard-coding tick numbers.
struct MutationEvent {
  std::size_t tick = 0;           ///< first tick of the new regime (0-based)
  double base_level_delta = 0.0;  ///< new base_level minus old base_level
};

/// A generated trace together with its mutation schedule. The frame is the
/// eight-indicator Table-I series; `mutations` holds one event per regime
/// flip, in tick order (empty when the trace never flips).
struct MutatingTrace {
  data::TimeSeriesFrame frame;
  std::vector<MutationEvent> mutations;
};

/// One leg of a scripted regime schedule for make_regime_trace.
struct RegimeSegment {
  trace::WorkloadParams params;
  std::size_t steps = 0;  ///< zero-step segments are skipped (no flip)
};

/// Synthetic single-container trace with an abrupt regime mutation:
/// `params_a` drives the first `steps_before` ticks, then a fresh model
/// under `params_b` takes over for `steps_after` — a true distribution
/// change at a known tick, the scenario the drift detectors exist for.
/// The returned schedule records the flip (empty when steps_after == 0).
MutatingTrace make_mutating_trace(const trace::WorkloadParams& params_a,
                                  const trace::WorkloadParams& params_b,
                                  std::size_t steps_before,
                                  std::size_t steps_after,
                                  std::uint64_t seed,
                                  double contention = 0.3);

/// Generalised scripted schedule: each segment runs a fresh WorkloadModel
/// (per-segment derived seed) for its step count; every boundary between
/// two non-empty segments is recorded as a MutationEvent — a drift storm
/// with several flips at known ticks.
MutatingTrace make_regime_trace(const std::vector<RegimeSegment>& segments,
                                std::uint64_t seed, double contention = 0.3);

struct SourceOptions {
  /// Indicator columns to keep, target first. Empty = all eight in Table-I
  /// order (target cpu_util_percent).
  std::vector<std::string> features;
  std::size_t capacity = 4096;  ///< ring depth (bounds history())
  NormalizerOptions normalizer;
  /// Metrics tenant label for stream/ticks_* and stream/ingest_seconds
  /// (empty keeps the historical unlabeled names).
  std::string tenant;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

class StreamSource {
 public:
  StreamSource(std::unique_ptr<TickProvider> provider,
               SourceOptions options = {});

  /// Pull one tick. Returns false once the provider is exhausted. An
  /// incomplete tick (NaN in any kept feature) is consumed but dropped,
  /// mirroring data::clean_drop_incomplete.
  bool poll();
  /// poll() up to `max_ticks` times; returns ticks consumed (incl. dropped).
  std::size_t ingest(std::size_t max_ticks);

  bool exhausted() const { return exhausted_; }
  /// Complete ticks accepted into the rings.
  std::size_t ticks() const { return channel_.ticks(); }
  /// Incomplete ticks dropped.
  std::size_t dropped() const { return channel_.dropped(); }
  /// Provider ticks consumed (accepted + dropped) — the clock forecast
  /// due-dating runs on, so forecasts aimed at a dropped tick expire
  /// instead of drifting onto the next complete one.
  std::size_t provider_ticks() const { return ticks() + dropped(); }
  /// True once `window` ticks are retained.
  bool ready(std::size_t window) const { return channel_.ready(window); }

  std::size_t features() const { return channel_.features(); }
  const std::vector<std::string>& names() const { return channel_.names(); }

  /// Newest raw / normalised value of feature `f` (target is f = 0).
  double latest_raw(std::size_t f) const { return channel_.latest_raw(f); }
  double latest_norm(std::size_t f) const { return channel_.latest_norm(f); }

  /// Trailing `window` ticks, normalised under the *current* normalizer
  /// state, as a [F, window] float tensor ready for InferenceSession::run.
  Tensor latest_window(std::size_t window) const {
    return channel_.latest_window(window);
  }

  /// Copy of the trailing `count` raw ticks as a frame (feature order, the
  /// retrainer's input). Requires count <= retained ticks.
  data::TimeSeriesFrame history(std::size_t count) const {
    return channel_.history(count);
  }

  const OnlineNormalizer& normalizer() const { return channel_.normalizer(); }
  /// Pin the scaler state (see OnlineNormalizer::freeze). Raw ingestion into
  /// the rings continues; only normalisation bounds stop following the data.
  void freeze_normalizer() { channel_.freeze_normalizer(); }

  /// The push-based per-entity core (rings + normalizer) the source pulls
  /// into — shared with the fleet layer, which owns one per entity.
  const IngestChannel& channel() const { return channel_; }

 private:
  std::unique_ptr<TickProvider> provider_;
  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& ticks_counter_;
  obs::Counter& dropped_counter_;
  obs::Histogram& ingest_hist_;
  std::vector<std::size_t> feature_index_;  ///< indicator enum index per kept column
  IngestChannel channel_;
  std::vector<double> row_;                 ///< scratch, avoids per-tick alloc
  bool exhausted_ = false;
};

}  // namespace rptcn::stream
