#include "stream/retrain.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"

namespace rptcn::stream {

void RetrainOptions::validate() const {
  RPTCN_CHECK(history > window.window + window.horizon,
              "RetrainOptions.history must exceed window + horizon");
  RPTCN_CHECK(train_frac > 0.0 && valid_frac >= 0.0 &&
                  train_frac + valid_frac <= 1.0,
              "RetrainOptions.train_frac/valid_frac must satisfy "
              "0 < train_frac, 0 <= valid_frac, train_frac + valid_frac <= 1");
  RPTCN_CHECK(fit_attempts >= 1, "RetrainOptions.fit_attempts must be >= 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "RetrainOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

models::ForecastDataset build_dataset(const data::TimeSeriesFrame& frame,
                                      const OnlineNormalizer& normalizer,
                                      const RetrainOptions& options) {
  RPTCN_CHECK(frame.indicators() > 0, "build_dataset on an empty frame");
  const data::TimeSeriesFrame normalized = normalizer.transform(frame);
  const std::string& target = frame.name(0);

  const auto all = data::make_windows(normalized, target, options.window);
  auto split =
      data::chrono_split(all, options.train_frac, options.valid_frac);

  models::ForecastDataset ds;
  ds.train = std::move(split.train);
  ds.valid = std::move(split.valid);
  ds.test = std::move(split.test);
  ds.window = options.window.window;
  ds.horizon = options.window.horizon;
  ds.target_channel = 0;
  ds.target_series = normalized.column(target);
  ds.train_len = ds.train.samples() + options.window.window;
  ds.valid_len = ds.valid.samples();
  return ds;
}

void save_checkpoint(FittedGeneration& g, const RetrainOptions& options) {
  if (options.checkpoint_dir.empty() || g.forecaster == nullptr) return;
  const std::string path = options.checkpoint_dir + "/gen_" +
                           std::to_string(g.outcome.generation) + ".ckpt";
  g.outcome.checkpoint = g.forecaster->save(path);
  if (g.outcome.checkpoint == models::CheckpointStatus::kOk)
    g.outcome.checkpoint_path = path;
}

FittedGeneration fit_generation(const data::TimeSeriesFrame& frame,
                                const OnlineNormalizer& normalizer,
                                const RetrainOptions& options,
                                std::uint64_t next_generation,
                                std::string reason) {
  FittedGeneration g;
  g.outcome.reason = std::move(reason);
  g.outcome.generation = next_generation;
  Stopwatch watch;
  try {
    obs::TraceSpan span("stream/retrain");
    const models::ForecastDataset dataset =
        build_dataset(frame, normalizer, options);
    g.outcome.train_samples = dataset.train.samples();

    std::shared_ptr<models::Forecaster> forecaster =
        models::make_forecaster(options.model_name, options.model);
    forecaster->fit(dataset);
    const auto& valid_curve = forecaster->curves().valid_loss;
    if (!valid_curve.empty())
      g.outcome.valid_loss =
          *std::min_element(valid_curve.begin(), valid_curve.end());

    // The session co-owns the forecaster while it delegates, so the live
    // snapshot can never outlive the model backing it.
    g.session = std::make_shared<serve::InferenceSession>(
        forecaster, serve::SessionOptions{options.quantized_serving});
    g.forecaster = std::move(forecaster);

    save_checkpoint(g, options);
  } catch (const std::exception& e) {
    g.outcome.error = e.what();
    g.session.reset();
    g.forecaster.reset();
  }
  g.outcome.fit_seconds = watch.elapsed_seconds();
  return g;
}

FittedGeneration fit_generation_gated(const data::TimeSeriesFrame& frame,
                                      const OnlineNormalizer& normalizer,
                                      const RetrainOptions& options,
                                      std::uint64_t next_generation,
                                      const std::string& reason) {
  if (options.max_valid_loss <= 0.0)
    return fit_generation(frame, normalizer, options, next_generation, reason);

  // Attempts fit without touching the per-generation checkpoint path: only
  // the winner is saved, below, so a losing retry can never overwrite a
  // better attempt's weights and gen_<N>.ckpt always matches
  // checkpoint_path's claim.
  RetrainOptions attempt_options = options;
  attempt_options.checkpoint_dir.clear();
  FittedGeneration best = fit_generation(frame, normalizer, attempt_options,
                                         next_generation, reason);

  const std::size_t attempts = std::max<std::size_t>(options.fit_attempts, 1);
  double total_seconds = best.outcome.fit_seconds;
  std::size_t tried = 1;
  for (std::size_t attempt = 1;
       attempt < attempts &&
       (best.session == nullptr ||
        best.outcome.valid_loss > options.max_valid_loss);
       ++attempt) {
    RetrainOptions retry = attempt_options;
    retry.model.nn.seed += attempt;  // a different weight init basin
    FittedGeneration g =
        fit_generation(frame, normalizer, retry, next_generation, reason);
    total_seconds += g.outcome.fit_seconds;
    ++tried;
    if (g.session != nullptr &&
        (best.session == nullptr ||
         g.outcome.valid_loss < best.outcome.valid_loss))
      best = std::move(g);
  }
  best.outcome.fit_seconds = total_seconds;
  best.outcome.attempts = tried;
  best.outcome.quality_rejected =
      best.session != nullptr &&
      best.outcome.valid_loss > options.max_valid_loss;
  // A rejected generation is never installed by the retrainer, so it leaves
  // no gen_<N>.ckpt behind; installers that keep it anyway (bootstrap)
  // checkpoint it themselves.
  if (!best.outcome.quality_rejected) save_checkpoint(best, options);
  return best;
}

RollingRetrainer::RollingRetrainer(serve::BatchingEngine& engine,
                                   RetrainOptions options)
    : engine_(engine),
      options_(std::move(options)),
      retrains_counter_(
          obs::metrics().counter("stream/retrains_total", options_.tenant)),
      failures_counter_(obs::metrics().counter("stream/retrain_failures_total",
                                               options_.tenant)),
      swap_aborts_counter_(
          obs::metrics().counter("stream/swap_aborts_total", options_.tenant)),
      retrain_seconds_(
          obs::metrics().histogram("stream/retrain_seconds", options_.tenant)),
      generation_gauge_(
          obs::metrics().gauge("stream/generation", options_.tenant)),
      pool_(1) {
  options_.validate();
}

RollingRetrainer::~RollingRetrainer() {
  // pool_ is declared last, so its destructor (which drains the queued job)
  // runs before any other member goes away; nothing else to do here.
}

bool RollingRetrainer::request(data::TimeSeriesFrame history,
                               OnlineNormalizer normalizer, std::string reason,
                               std::size_t tick) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_.valid() &&
      inflight_.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready)
    return false;
  if (has_trigger_ && tick - last_trigger_tick_ < options_.min_ticks_between)
    return false;
  has_trigger_ = true;
  last_trigger_tick_ = tick;
  inflight_ = pool_.submit([this, frame = std::move(history),
                            norm = std::move(normalizer),
                            why = std::move(reason)]() mutable {
    run_job(std::move(frame), std::move(norm), std::move(why));
  });
  return true;
}

bool RollingRetrainer::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_.valid() && inflight_.wait_for(std::chrono::seconds(0)) !=
                                  std::future_status::ready;
}

void RollingRetrainer::wait_idle() {
  std::future<void> waiting;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!inflight_.valid()) return;
    waiting = std::move(inflight_);
  }
  waiting.get();
}

RetrainOutcome RollingRetrainer::last() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_outcome_;
}

std::uint64_t RollingRetrainer::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::uint64_t RollingRetrainer::failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

void RollingRetrainer::run_job(data::TimeSeriesFrame history,
                               OnlineNormalizer normalizer,
                               std::string reason) {
  FittedGeneration g = fit_generation_gated(history, normalizer, options_,
                                            engine_.generation() + 1, reason);
  retrain_seconds_.record(g.outcome.fit_seconds);
  retrains_counter_.add(1);

  if (g.session == nullptr) {
    failures_counter_.add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    ++failures_;
    last_outcome_ = g.outcome;
    return;
  }

  // Quality gate: every attempt validated worse than max_valid_loss. The
  // incumbent keeps serving — if it is genuinely stale the detectors fire
  // again and the next trailing window gets a fresh chance.
  if (g.outcome.quality_rejected) {
    swap_aborts_counter_.add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    last_outcome_ = g.outcome;
    return;
  }

  // A checkpoint that should exist but could not be written aborts the
  // swap: the live model must never get ahead of its restorable state.
  const bool checkpoint_failed =
      !options_.checkpoint_dir.empty() &&
      g.outcome.checkpoint != models::CheckpointStatus::kOk &&
      g.outcome.checkpoint != models::CheckpointStatus::kUnsupported;
  if (checkpoint_failed) {
    swap_aborts_counter_.add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    last_outcome_ = g.outcome;
    return;
  }

  {
    obs::TraceSpan span("stream/swap");
    g.outcome.generation = engine_.swap_session(g.session);
    // Fence: once flush() returns, every request submitted before the swap
    // has been delivered — readers finished on the old generation, whose
    // session (and, for delegated models, the forecaster it co-owns) is
    // then released by the last shared_ptr holder.
    engine_.flush();
  }
  g.outcome.swapped = true;
  generation_gauge_.set(static_cast<double>(g.outcome.generation));
  // The retired generation's planned executors strand their worst-case
  // scratch in this thread's pool buckets (training tapes, capture arenas).
  // Shrink the cache to half its bound so long-running pipelines do not
  // accumulate one dead high-water mark per swap.
  pool::trim(pool::kMaxCachedBytes / 2);

  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  last_outcome_ = g.outcome;
}

}  // namespace rptcn::stream
