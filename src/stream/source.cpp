#include "stream/source.h"

#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rptcn::stream {

namespace {

/// Indicator enum index for a Table-I column name.
std::size_t indicator_index(const std::string& name) {
  const auto& all = trace::indicator_names();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i] == name) return i;
  RPTCN_CHECK(false, "not a Table-I indicator: " << name);
  return 0;  // unreachable
}

}  // namespace

// ---------------------------------------------------------------------------
// Providers
// ---------------------------------------------------------------------------

ReplayProvider::ReplayProvider(data::TimeSeriesFrame frame)
    : frame_(std::move(frame)) {
  columns_.reserve(trace::kIndicatorCount);
  for (const std::string& name : trace::indicator_names()) {
    RPTCN_CHECK(frame_.has(name),
                "ReplayProvider frame is missing indicator: " << name);
    columns_.push_back(&frame_.column(name));
  }
}

std::optional<trace::IndicatorSample> ReplayProvider::next() {
  if (t_ >= frame_.length()) return std::nullopt;
  trace::IndicatorSample sample;
  for (std::size_t i = 0; i < columns_.size(); ++i)
    sample.values[i] = (*columns_[i])[t_];
  ++t_;
  return sample;
}

ModelProvider::ModelProvider(const trace::WorkloadParams& params,
                             std::uint64_t seed, double contention,
                             std::size_t limit)
    : model_(params, seed), contention_(contention), limit_(limit) {}

std::optional<trace::IndicatorSample> ModelProvider::next() {
  if (limit_ != 0 && emitted_ >= limit_) return std::nullopt;
  ++emitted_;
  return model_.step(contention_);
}

data::TimeSeriesFrame make_mutating_trace(const trace::WorkloadParams& params_a,
                                          const trace::WorkloadParams& params_b,
                                          std::size_t steps_before,
                                          std::size_t steps_after,
                                          std::uint64_t seed,
                                          double contention) {
  std::vector<std::vector<double>> cols(trace::kIndicatorCount);
  for (auto& c : cols) c.reserve(steps_before + steps_after);
  const auto append = [&](trace::WorkloadModel& model, std::size_t steps) {
    for (std::size_t t = 0; t < steps; ++t) {
      const trace::IndicatorSample s = model.step(contention);
      for (std::size_t i = 0; i < trace::kIndicatorCount; ++i)
        cols[i].push_back(s.values[i]);
    }
  };
  trace::WorkloadModel before(params_a, seed);
  append(before, steps_before);
  trace::WorkloadModel after(params_b, seed ^ 0x9e3779b97f4a7c15ULL);
  append(after, steps_after);

  data::TimeSeriesFrame frame;
  const auto& names = trace::indicator_names();
  for (std::size_t i = 0; i < trace::kIndicatorCount; ++i)
    frame.add(names[i], std::move(cols[i]));
  return frame;
}

// ---------------------------------------------------------------------------
// StreamSource
// ---------------------------------------------------------------------------

StreamSource::StreamSource(std::unique_ptr<TickProvider> provider,
                           SourceOptions options)
    : provider_(std::move(provider)),
      ticks_counter_(obs::metrics().counter("stream/ticks_total")),
      dropped_counter_(obs::metrics().counter("stream/ticks_dropped")),
      ingest_hist_(obs::metrics().histogram("stream/ingest_seconds")) {
  RPTCN_CHECK(provider_ != nullptr, "StreamSource needs a provider");
  RPTCN_CHECK(options.capacity > 0, "StreamSource needs capacity >= 1");
  names_ = options.features;
  if (names_.empty()) {
    const auto& all = trace::indicator_names();
    names_.assign(all.begin(), all.end());
  }
  feature_index_.reserve(names_.size());
  for (const std::string& name : names_)
    feature_index_.push_back(indicator_index(name));
  normalizer_ = OnlineNormalizer(names_, options.normalizer);
  rings_.reserve(names_.size());
  for (std::size_t f = 0; f < names_.size(); ++f)
    rings_.emplace_back(options.capacity);
  row_.resize(names_.size());
}

bool StreamSource::poll() {
  if (exhausted_) return false;
  obs::ScopedTimer timer(ingest_hist_);

  std::optional<trace::IndicatorSample> sample = provider_->next();
  if (!sample.has_value()) {
    exhausted_ = true;
    return false;
  }
  bool complete = true;
  for (std::size_t f = 0; f < names_.size(); ++f) {
    row_[f] = sample->values[feature_index_[f]];
    if (std::isnan(row_[f])) complete = false;
  }
  if (!complete) {
    // Same rule as data::clean_drop_incomplete: the whole tick vanishes.
    ++dropped_;
    dropped_counter_.add(1);
    return true;
  }
  normalizer_.observe(row_);
  for (std::size_t f = 0; f < names_.size(); ++f) rings_[f].push(row_[f]);
  ++ticks_;
  ticks_counter_.add(1);
  return true;
}

std::size_t StreamSource::ingest(std::size_t max_ticks) {
  std::size_t consumed = 0;
  while (consumed < max_ticks && poll()) ++consumed;
  return consumed;
}

bool StreamSource::ready(std::size_t window) const {
  return !rings_.empty() && rings_.front().size() >= window;
}

double StreamSource::latest_raw(std::size_t f) const {
  RPTCN_CHECK(f < rings_.size(), "latest_raw: feature index out of range");
  return rings_[f].back();
}

double StreamSource::latest_norm(std::size_t f) const {
  return normalizer_.normalize(f, latest_raw(f));
}

Tensor StreamSource::latest_window(std::size_t window) const {
  RPTCN_CHECK(ready(window), "latest_window(" << window << ") but only "
                                              << rings_.front().size()
                                              << " ticks retained");
  Tensor out({names_.size(), window});
  for (std::size_t f = 0; f < names_.size(); ++f) {
    const RingBuffer<double>& ring = rings_[f];
    const std::size_t first = ring.size() - window;
    float* dst = out.raw() + f * window;
    for (std::size_t t = 0; t < window; ++t)
      dst[t] = static_cast<float>(normalizer_.normalize(f, ring[first + t]));
  }
  return out;
}

data::TimeSeriesFrame StreamSource::history(std::size_t count) const {
  RPTCN_CHECK(!rings_.empty() && count <= rings_.front().size(),
              "history(" << count << ") but only "
                         << (rings_.empty() ? 0 : rings_.front().size())
                         << " ticks retained");
  data::TimeSeriesFrame out;
  for (std::size_t f = 0; f < names_.size(); ++f)
    out.add(names_[f], rings_[f].tail(count));
  return out;
}

}  // namespace rptcn::stream
