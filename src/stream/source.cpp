#include "stream/source.h"

#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rptcn::stream {

namespace {

/// Indicator enum index for a Table-I column name.
std::size_t indicator_index(const std::string& name) {
  const auto& all = trace::indicator_names();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i] == name) return i;
  RPTCN_CHECK(false, "not a Table-I indicator: " << name);
  return 0;  // unreachable
}

/// Kept feature names: the explicit list, or all eight in Table-I order.
std::vector<std::string> resolve_names(const SourceOptions& options) {
  if (!options.features.empty()) return options.features;
  const auto& all = trace::indicator_names();
  return {all.begin(), all.end()};
}

ChannelOptions channel_options(const SourceOptions& options) {
  ChannelOptions c;
  c.capacity = options.capacity;
  c.normalizer = options.normalizer;
  return c;
}

/// Validation hook for the member-initializer list (members initialize
/// before the constructor body could call validate()).
const SourceOptions& validated(const SourceOptions& options) {
  options.validate();
  return options;
}

}  // namespace

void SourceOptions::validate() const {
  RPTCN_CHECK(capacity > 0, "SourceOptions.capacity must be >= 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "SourceOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

// ---------------------------------------------------------------------------
// Providers
// ---------------------------------------------------------------------------

ReplayProvider::ReplayProvider(data::TimeSeriesFrame frame)
    : frame_(std::move(frame)) {
  columns_.reserve(trace::kIndicatorCount);
  for (const std::string& name : trace::indicator_names()) {
    RPTCN_CHECK(frame_.has(name),
                "ReplayProvider frame is missing indicator: " << name);
    columns_.push_back(&frame_.column(name));
  }
}

std::optional<trace::IndicatorSample> ReplayProvider::next() {
  if (t_ >= frame_.length()) return std::nullopt;
  trace::IndicatorSample sample;
  for (std::size_t i = 0; i < columns_.size(); ++i)
    sample.values[i] = (*columns_[i])[t_];
  ++t_;
  return sample;
}

ModelProvider::ModelProvider(const trace::WorkloadParams& params,
                             std::uint64_t seed, double contention,
                             std::size_t limit)
    : model_(params, seed), contention_(contention), limit_(limit) {}

std::optional<trace::IndicatorSample> ModelProvider::next() {
  if (limit_ != 0 && emitted_ >= limit_) return std::nullopt;
  ++emitted_;
  return model_.step(contention_);
}

MutatingTrace make_mutating_trace(const trace::WorkloadParams& params_a,
                                  const trace::WorkloadParams& params_b,
                                  std::size_t steps_before,
                                  std::size_t steps_after,
                                  std::uint64_t seed,
                                  double contention) {
  return make_regime_trace(
      {{params_a, steps_before}, {params_b, steps_after}}, seed, contention);
}

MutatingTrace make_regime_trace(const std::vector<RegimeSegment>& segments,
                                std::uint64_t seed, double contention) {
  std::size_t total = 0;
  for (const RegimeSegment& s : segments) total += s.steps;
  std::vector<std::vector<double>> cols(trace::kIndicatorCount);
  for (auto& c : cols) c.reserve(total);

  MutatingTrace out;
  std::size_t tick = 0;
  bool first_live_segment = true;
  double prev_base = 0.0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const RegimeSegment& segment = segments[k];
    // Per-segment seed: seed ^ (k * golden-ratio). Indexing counts skipped
    // (zero-step) segments too, so the two-regime helper keeps its
    // historical bit pattern (segment 0 = seed, segment 1 = seed ^ golden),
    // and every segment of an A-B-A storm still gets a distinct stream.
    const std::uint64_t this_seed =
        seed ^ (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ULL);
    if (segment.steps == 0) continue;
    if (!first_live_segment)
      out.mutations.push_back(
          {tick, segment.params.base_level - prev_base});
    first_live_segment = false;
    prev_base = segment.params.base_level;
    trace::WorkloadModel model(segment.params, this_seed);
    for (std::size_t t = 0; t < segment.steps; ++t) {
      const trace::IndicatorSample s = model.step(contention);
      for (std::size_t i = 0; i < trace::kIndicatorCount; ++i)
        cols[i].push_back(s.values[i]);
      ++tick;
    }
  }

  const auto& names = trace::indicator_names();
  for (std::size_t i = 0; i < trace::kIndicatorCount; ++i)
    out.frame.add(names[i], std::move(cols[i]));
  return out;
}

// ---------------------------------------------------------------------------
// StreamSource
// ---------------------------------------------------------------------------

StreamSource::StreamSource(std::unique_ptr<TickProvider> provider,
                           SourceOptions options)
    : provider_(std::move(provider)),
      ticks_counter_(obs::metrics().counter("stream/ticks_total",
                                            validated(options).tenant)),
      dropped_counter_(
          obs::metrics().counter("stream/ticks_dropped", options.tenant)),
      ingest_hist_(
          obs::metrics().histogram("stream/ingest_seconds", options.tenant)),
      channel_(resolve_names(options), channel_options(options)) {
  RPTCN_CHECK(provider_ != nullptr, "StreamSource needs a provider");
  feature_index_.reserve(channel_.features());
  for (const std::string& name : channel_.names())
    feature_index_.push_back(indicator_index(name));
  row_.resize(channel_.features());
}

bool StreamSource::poll() {
  if (exhausted_) return false;
  obs::ScopedTimer timer(ingest_hist_);

  std::optional<trace::IndicatorSample> sample = provider_->next();
  if (!sample.has_value()) {
    exhausted_ = true;
    return false;
  }
  for (std::size_t f = 0; f < row_.size(); ++f)
    row_[f] = sample->values[feature_index_[f]];
  if (channel_.ingest(row_))
    ticks_counter_.add(1);
  else
    dropped_counter_.add(1);
  return true;
}

std::size_t StreamSource::ingest(std::size_t max_ticks) {
  std::size_t consumed = 0;
  while (consumed < max_ticks && poll()) ++consumed;
  return consumed;
}

}  // namespace rptcn::stream
