// Online, checkpointable per-indicator normalisation for the streaming
// ingest path.
//
// Two modes:
//  * kMinMax — running per-indicator min/max. After observing a replayed
//    prefix this is *exactly* the batch path: the retained bounds are
//    bit-identical to data::MinMaxScaler::fit on the same prefix and
//    normalize() applies eq. 1 with the same double arithmetic
//    ((v - min) / (max - min), constant columns -> 0), so the online and
//    batch features agree bit-for-bit (tests/test_stream.cpp proves it).
//  * kEwma — exponentially weighted mean/variance, (v - mean)/sqrt(var+eps).
//    Forgets old regimes, at the price of losing batch parity; meant for
//    streams whose level drifts without bound.
//
// The full state round-trips through a text checkpoint (save/restore with
// models::CheckpointStatus results), so a restarted streamer resumes with
// the identical normalisation it left off with.
#pragma once

#include <string>
#include <vector>

#include "data/timeseries.h"
#include "models/forecaster.h"

namespace rptcn::stream {

enum class NormalizerKind { kMinMax, kEwma };

const char* normalizer_kind_name(NormalizerKind kind);

struct NormalizerOptions {
  NormalizerKind kind = NormalizerKind::kMinMax;
  double ewma_alpha = 0.02;  ///< kEwma update weight of the newest tick
  double epsilon = 1e-6;     ///< kEwma variance floor
};

class OnlineNormalizer {
 public:
  OnlineNormalizer() = default;
  explicit OnlineNormalizer(std::vector<std::string> names,
                            NormalizerOptions options = {});

  /// Fold one complete tick (one value per bound indicator) into the state.
  /// A no-op while frozen.
  void observe(const std::vector<double>& row);

  /// Stop folding observations: the scaler state is pinned to what has been
  /// seen so far. This is the deployment mode of a batch-fitted scaler — a
  /// frozen model ships with frozen normalisation, so later out-of-range
  /// inputs map outside [0,1] exactly as they would in production instead
  /// of being silently re-scaled into the model's training range.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Normalise one value of indicator `i` under the *current* state.
  double normalize(std::size_t i, double v) const;

  /// Normalise a whole frame (columns must match the bound names in order)
  /// under the current state — the streaming twin of MinMaxScaler::transform.
  data::TimeSeriesFrame transform(const data::TimeSeriesFrame& frame) const;

  /// Map a normalised target value back to raw units (inverse of eq. 1 for
  /// kMinMax, mean + v*sqrt(var+eps) for kEwma).
  double denormalize(std::size_t i, double v) const;

  const std::vector<std::string>& names() const { return names_; }
  std::size_t indicators() const { return names_.size(); }
  /// Complete ticks observed.
  std::size_t count() const { return count_; }
  NormalizerKind kind() const { return options_.kind; }

  // Per-indicator state accessors (parity tests compare these bit-for-bit
  // against a batch-fitted MinMaxScaler).
  double min_of(std::size_t i) const;
  double max_of(std::size_t i) const;
  double mean_of(std::size_t i) const;
  double var_of(std::size_t i) const;

  /// Write the full state as a text checkpoint.
  models::CheckpointStatus save(const std::string& path) const;
  /// Load a checkpoint. If this normalizer is already bound to names, the
  /// checkpoint must list the same names in the same order
  /// (kShapeMismatch otherwise); a malformed or missing file is kIoError.
  /// On any failure the current state is left untouched.
  models::CheckpointStatus restore(const std::string& path);

 private:
  struct ColumnState {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double var = 0.0;
  };

  std::vector<std::string> names_;
  NormalizerOptions options_;
  std::vector<ColumnState> cols_;
  std::size_t count_ = 0;
  bool frozen_ = false;  ///< deployment-mode flag; not part of checkpoints
};

}  // namespace rptcn::stream
