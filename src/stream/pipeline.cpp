#include "stream/pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace rptcn::stream {
namespace {

std::size_t effective_warmup(const OnlinePipelineOptions& options) {
  return options.warmup != 0 ? options.warmup : options.retrain.history;
}

/// One tenant field namespaces the whole loop: sub-options with an empty
/// tenant inherit the pipeline's.
OnlinePipelineOptions with_tenant(OnlinePipelineOptions options) {
  if (!options.tenant.empty()) {
    if (options.source.tenant.empty()) options.source.tenant = options.tenant;
    if (options.drift.tenant.empty()) options.drift.tenant = options.tenant;
    if (options.retrain.tenant.empty())
      options.retrain.tenant = options.tenant;
    if (options.engine.tenant.empty()) options.engine.tenant = options.tenant;
  }
  return options;
}

}  // namespace

void OnlinePipelineOptions::validate() const {
  source.validate();
  drift.validate();
  retrain.validate();
  engine.validate();
  RPTCN_CHECK(effective_warmup(*this) >
                  retrain.window.window + retrain.window.horizon,
              "PipelineOptions.warmup must exceed window + horizon so the "
              "bootstrap fit has at least one supervised sample");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "PipelineOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

OnlinePipeline::OnlinePipeline(std::unique_ptr<TickProvider> provider,
                               OnlinePipelineOptions options)
    : options_(with_tenant(std::move(options))),
      source_(std::move(provider), options_.source),
      drift_(source_.names(), options_.drift),
      staleness_gauge_(
          obs::metrics().gauge("stream/staleness_ticks", options_.tenant)) {
  options_.validate();
  norm_row_.resize(source_.features(), 0.0);
}

OnlinePipeline::~OnlinePipeline() {
  // Members die in reverse declaration order: the retrainer first (its pool
  // drains the in-flight job, which may still swap into the engine), then
  // the engine, which drains queued requests — safe even for delegated
  // (ARIMA/XGBoost) models because every session co-owns its delegate
  // forecaster. Nothing to do.
}

std::optional<TickOutcome> OnlinePipeline::step() {
  if (source_.exhausted()) return std::nullopt;

  TickOutcome out;
  const std::size_t before = source_.ticks();
  Stopwatch watch;
  const bool polled = source_.poll();
  out.ingest_seconds = watch.elapsed_seconds();
  if (!polled) return std::nullopt;

  out.tick = source_.ticks();
  out.dropped = source_.ticks() == before;
  if (out.dropped) return out;

  out.actual_norm = source_.latest_norm(0);
  out.actual_raw = source_.latest_raw(0);

  // A swap may have landed since the last tick: reset the detectors so the
  // new generation is judged against its own residual regime.
  if (engine_) {
    const std::uint64_t gen = engine_->generation();
    if (gen != last_seen_generation_) {
      last_seen_generation_ = gen;
      last_swap_tick_ = out.tick;
      drift_.reset();
    }
  }

  harvest_due(out);

  if (engine_ && options_.drift.monitor_inputs) {
    for (std::size_t f = 0; f < source_.features(); ++f)
      norm_row_[f] = source_.latest_norm(f);
    if (drift_.observe_inputs(norm_row_)) out.drift = true;
  }

  if (!engine_ && out.tick >= effective_warmup(options_)) {
    bootstrap();
    out.bootstrapped = true;
    out.tick = source_.ticks();
  }

  maybe_forecast(out);

  if (engine_) {
    const bool cadence_due =
        options_.retrain_cadence != 0 &&
        out.tick - last_swap_tick_ >= options_.retrain_cadence;
    if ((options_.retrain_on_drift && out.drift) || cadence_due) {
      if (!retrainer_)
        retrainer_ =
            std::make_unique<RollingRetrainer>(*engine_, options_.retrain);
      const std::size_t span =
          std::min(options_.retrain.history, source_.ticks());
      const std::string reason =
          out.drift ? drift_.last_reason() : std::string("cadence");
      out.retrain_requested = retrainer_->request(
          source_.history(span), source_.normalizer(), reason, out.tick);
    }
    staleness_gauge_.set(static_cast<double>(out.tick - last_swap_tick_));
  }
  return out;
}

std::size_t OnlinePipeline::run(std::size_t max_ticks) {
  std::size_t consumed = 0;
  while (max_ticks == 0 || consumed < max_ticks) {
    if (!step()) break;
    ++consumed;
  }
  return consumed;
}

std::size_t OnlinePipeline::staleness_ticks() const {
  return source_.ticks() - last_swap_tick_;
}

void OnlinePipeline::bootstrap() {
  const std::size_t span = std::min(options_.retrain.history, source_.ticks());
  // Gated fit, best attempt kept even if the gate fails: a bootstrap must
  // produce some model, and the retrainer replaces a mediocre one later.
  FittedGeneration g =
      fit_generation_gated(source_.history(span), source_.normalizer(),
                           options_.retrain, /*next_generation=*/1,
                           "bootstrap");
  RPTCN_CHECK(g.session != nullptr,
              "bootstrap fit failed: " << g.outcome.error);
  // A gate-rejected bootstrap is installed anyway, so checkpoint it here
  // (the gated fit skips rejected attempts): every serving generation has
  // a restorable gen_<N>.ckpt.
  if (g.outcome.quality_rejected) save_checkpoint(g, options_.retrain);
  bootstrap_ = g.outcome;
  engine_ = std::make_unique<serve::BatchingEngine>(g.session, options_.engine);
  last_seen_generation_ = engine_->generation();
  last_swap_tick_ = source_.ticks();
  if (options_.freeze_normalizer_at_bootstrap) source_.freeze_normalizer();
}

void OnlinePipeline::maybe_forecast(TickOutcome& out) {
  if (!engine_) return;
  const std::size_t window = options_.retrain.window.window;
  if (!source_.ready(window)) return;
  PendingForecast p;
  p.future = engine_->submit(source_.latest_window(window));
  // One-step residual uses the first horizon step; due on the next
  // *provider* tick, so if that tick is dropped the forecast is discarded
  // rather than scored against a later complete tick.
  p.due_provider_tick = source_.provider_ticks() + 1;
  p.generation = engine_->generation();
  pending_.push_back(std::move(p));
  out.predicted = true;
}

void OnlinePipeline::harvest_due(TickOutcome& out) {
  const std::size_t now = source_.provider_ticks();
  while (!pending_.empty() && pending_.front().due_provider_tick <= now) {
    PendingForecast p = std::move(pending_.front());
    pending_.pop_front();
    // The tick this forecast targeted was dropped (incomplete): there is no
    // ground truth to score it against, so it is discarded — the residual
    // stream stays strictly one-step.
    if (p.due_provider_tick < now) continue;
    try {
      const Tensor forecast = p.future.get();
      out.predicted_norm = static_cast<double>(forecast.raw()[0]);
      out.residual = std::abs(out.actual_norm - out.predicted_norm);
      out.predicted_raw =
          source_.normalizer().denormalize(0, out.predicted_norm);
      out.residual_raw = std::abs(out.actual_raw - out.predicted_raw);
      out.residual_ready = true;
      out.generation = p.generation;
      // A residual produced by a predecessor generation must not seed the
      // freshly reset detectors with the old model's error regime; it is
      // still reported in the outcome, just not fed to drift.
      if (p.generation == last_seen_generation_ &&
          drift_.observe_residual(out.residual))
        out.drift = true;
    } catch (const std::exception&) {
      // A failed batch already delivered its error to every future; the
      // stream keeps going and the residual for this tick is simply missing.
    }
  }
}

}  // namespace rptcn::stream
