#include "stream/drift.h"

#include <algorithm>

#include "common/check.h"

namespace rptcn::stream {

// ---------------------------------------------------------------------------
// PageHinkley
// ---------------------------------------------------------------------------

PageHinkley::PageHinkley(PageHinkleyOptions options) : options_(options) {
  RPTCN_CHECK(options_.lambda > 0.0, "PageHinkley lambda must be positive");
}

bool PageHinkley::update(double v) {
  ++n_;
  mean_ += (v - mean_) / static_cast<double>(n_);
  mt_ += v - mean_ - options_.delta;
  min_mt_ = std::min(min_mt_, mt_);
  // Captured before the fire-reset so last_statistic() exposes the value
  // that crossed lambda (assigned after reset(), which zeroes it).
  const double stat = statistic();
  const bool fire = n_ >= options_.min_samples && stat > options_.lambda;
  if (fire) reset();
  last_statistic_ = stat;
  return fire;
}

void PageHinkley::reset() {
  n_ = 0;
  mean_ = 0.0;
  mt_ = 0.0;
  min_mt_ = 0.0;
  last_statistic_ = 0.0;
}

// ---------------------------------------------------------------------------
// WindowedErrorMonitor
// ---------------------------------------------------------------------------

WindowedErrorMonitor::WindowedErrorMonitor(WindowedErrorOptions options)
    : options_(options), errors_(std::max<std::size_t>(options.long_window, 1)) {
  RPTCN_CHECK(options_.short_window > 0 &&
                  options_.long_window >= options_.short_window,
              "WindowedErrorMonitor needs 0 < short_window <= long_window");
  RPTCN_CHECK(options_.ratio_threshold > 1.0,
              "ratio_threshold must exceed 1");
}

bool WindowedErrorMonitor::update(double abs_error) {
  errors_.push(abs_error);
  // Captured before any fire-reset empties the window, so last_ratio()
  // exposes the value that crossed the threshold.
  const double current_ratio = ratio();
  bool fire = false;
  bool level = false;
  if (options_.level_threshold > 0.0 &&
      short_mean() > options_.level_threshold) {
    fire = true;
    level = true;
  } else if (errors_.total() >= options_.min_samples &&
             errors_.size() >= options_.long_window &&
             current_ratio > options_.ratio_threshold) {
    fire = true;
  }
  if (fire) {
    reset();
    level_fired_ = level;
  }
  last_ratio_ = current_ratio;
  return fire;
}

double WindowedErrorMonitor::short_mean() const {
  if (errors_.size() < options_.short_window) return 0.0;
  double sum = 0.0;
  for (std::size_t i = errors_.size() - options_.short_window;
       i < errors_.size(); ++i)
    sum += errors_[i];
  return sum / static_cast<double>(options_.short_window);
}

double WindowedErrorMonitor::ratio() const {
  if (errors_.size() < options_.long_window) return 0.0;
  double long_sum = 0.0;
  for (std::size_t i = 0; i < errors_.size(); ++i) long_sum += errors_[i];
  double short_sum = 0.0;
  for (std::size_t i = errors_.size() - options_.short_window;
       i < errors_.size(); ++i)
    short_sum += errors_[i];
  const double long_mean = long_sum / static_cast<double>(errors_.size());
  const double short_mean =
      short_sum / static_cast<double>(options_.short_window);
  if (long_mean <= 0.0) return 0.0;
  return short_mean / long_mean;
}

void WindowedErrorMonitor::reset() {
  errors_ = RingBuffer<double>(errors_.capacity());
  level_fired_ = false;
  last_ratio_ = 0.0;
}

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

void DriftOptions::validate() const {
  RPTCN_CHECK(residual_ph.lambda > 0.0,
              "DriftOptions.residual_ph.lambda must be positive");
  RPTCN_CHECK(input_ph.lambda > 0.0,
              "DriftOptions.input_ph.lambda must be positive");
  RPTCN_CHECK(windowed.short_window > 0 &&
                  windowed.long_window >= windowed.short_window,
              "DriftOptions.windowed needs 0 < short_window <= long_window");
  RPTCN_CHECK(windowed.ratio_threshold > 1.0,
              "DriftOptions.windowed.ratio_threshold must exceed 1");
  RPTCN_CHECK(tenant.find_first_of("{}=") == std::string::npos,
              "DriftOptions.tenant must not contain '{', '}' or '=': \""
                  << tenant << "\"");
}

DriftMonitor::DriftMonitor(std::vector<std::string> features,
                           DriftOptions options)
    : features_(std::move(features)),
      options_(options),
      residual_ph_(options.residual_ph),
      windowed_(options.windowed),
      drift_events_(
          obs::metrics().counter("stream/drift_events", options.tenant)),
      input_events_(
          obs::metrics().counter("stream/drift_input_events", options.tenant)),
      residual_stat_(
          obs::metrics().gauge("stream/drift_residual_stat", options.tenant)),
      error_ratio_(
          obs::metrics().gauge("stream/drift_error_ratio", options.tenant)) {
  options_.validate();
  RPTCN_CHECK(!features_.empty(), "DriftMonitor needs at least one feature");
  input_ph_.reserve(features_.size());
  for (std::size_t i = 0; i < features_.size(); ++i)
    input_ph_.emplace_back(options.input_ph);
}

bool DriftMonitor::observe_inputs(const std::vector<double>& row) {
  if (!options_.monitor_inputs) return false;
  RPTCN_CHECK(row.size() == features_.size(),
              "DriftMonitor::observe_inputs got " << row.size()
                                                  << " values for "
                                                  << features_.size()
                                                  << " features");
  bool drift = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (input_ph_[i].update(row[i]) && !drift) {
      drift = true;
      input_events_.add(1);
      fired("input:" + features_[i]);
    }
  }
  return drift;
}

bool DriftMonitor::observe_residual(double abs_residual) {
  const bool ph = residual_ph_.update(abs_residual);
  const bool ratio = windowed_.update(abs_residual);
  // Post-update, pre-reset values: on the tick a detector fires the gauges
  // show the statistic that crossed its threshold, not the reset zero.
  residual_stat_.set(residual_ph_.last_statistic());
  error_ratio_.set(windowed_.last_ratio());
  if (ph) fired("residual-ph");
  else if (ratio)
    fired(windowed_.level_fired() ? "error-level" : "error-ratio");
  return ph || ratio;
}

void DriftMonitor::reset() {
  residual_ph_.reset();
  windowed_.reset();
  for (PageHinkley& ph : input_ph_) ph.reset();
}

void DriftMonitor::fired(std::string reason) {
  ++events_;
  drift_events_.add(1);
  last_reason_ = std::move(reason);
}

}  // namespace rptcn::stream
