// Fixed-capacity ring buffer: the per-indicator storage behind the
// streaming ingest path. push() overwrites the oldest retained element once
// the ring is full, so ingestion is O(1) and allocation-free after
// construction regardless of how long the stream runs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace rptcn::stream {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    RPTCN_CHECK(capacity > 0, "RingBuffer needs capacity >= 1");
  }

  void push(T v) {
    data_[head_] = v;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
    ++total_;
  }

  std::size_t capacity() const { return data_.size(); }
  /// Elements currently retained (<= capacity).
  std::size_t size() const { return size_; }
  /// Elements ever pushed (monotone).
  std::size_t total() const { return total_; }
  bool empty() const { return size_ == 0; }

  /// i = 0 is the oldest retained element, i = size()-1 the newest.
  T operator[](std::size_t i) const {
    RPTCN_DCHECK(i < size_, "RingBuffer index out of range");
    return data_[(head_ + data_.size() - size_ + i) % data_.size()];
  }

  T back() const {
    RPTCN_CHECK(size_ > 0, "RingBuffer::back on empty ring");
    return (*this)[size_ - 1];
  }

  /// Last `n` retained elements, oldest first. Requires n <= size().
  std::vector<T> tail(std::size_t n) const {
    RPTCN_CHECK(n <= size_, "RingBuffer::tail(" << n << ") but only " << size_
                                                << " retained");
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = size_ - n; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;   ///< next write slot
  std::size_t size_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rptcn::stream
