// OnlinePipeline — the closed loop from trace to serving:
//
//   tick -> StreamSource (ring buffers + online normalizer)
//        -> one-step forecast through the live serve::BatchingEngine
//        -> residual -> DriftMonitor
//        -> on drift (or cadence): RollingRetrainer re-fit + hot-swap
//
// step() advances exactly one tick and never blocks on training: the only
// waits on the ingest thread are the engine future for the forecast that
// fell due this tick (bounded by max_delay_us + one batch forward) and
// nothing else — retraining runs on the retrainer's own thread and installs
// itself via swap_session. The first model is bootstrapped synchronously
// once `warmup` ticks have arrived; before that the pipeline only ingests.
//
//   OnlinePipelineOptions opt;                 // model, windows, thresholds
//   OnlinePipeline loop(std::move(provider), opt);
//   while (auto tick = loop.step()) {
//     if (tick->residual_ready) consume(tick->residual);
//   }
//
// Observability: stream/staleness_ticks gauge (ticks since the serving
// generation changed) on top of everything the parts export themselves.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "serve/engine.h"
#include "stream/drift.h"
#include "stream/retrain.h"
#include "stream/source.h"

namespace rptcn::stream {

struct OnlinePipelineOptions {
  SourceOptions source;
  DriftOptions drift;
  RetrainOptions retrain;
  serve::EngineOptions engine;
  /// Ticks ingested before the synchronous bootstrap fit; 0 means
  /// retrain.history (fit as soon as a full trailing window exists).
  std::size_t warmup = 0;
  /// False freezes the bootstrap snapshot: drift is still measured but
  /// never acted on — the "static model" baseline the streaming bench
  /// compares against.
  bool retrain_on_drift = true;
  /// Retrain every N accepted ticks regardless of drift (0 = off).
  std::size_t retrain_cadence = 0;
  /// Pin the normalizer once the bootstrap model is fitted — the honest
  /// frozen-deployment baseline. An online min-max scaler keeps re-mapping
  /// whatever range the stream visits into [0,1], which silently
  /// domain-adapts even a never-retrained model's inputs; a real batch
  /// deployment ships scaler and weights frozen together, and that is the
  /// baseline an adaptive pipeline must be compared against.
  bool freeze_normalizer_at_bootstrap = false;
  /// Metrics tenant label. The pipeline copies it into every sub-option
  /// (source/drift/retrain/engine) whose own tenant is empty, so one field
  /// namespaces the whole loop — N pipelines side by side never collide on
  /// stream/* or serve/* metric names.
  std::string tenant;

  /// Throws common::CheckError naming the offending field (recurses into
  /// the sub-option validators).
  void validate() const;
};

/// The construction-API name: serve/stream/fleet constructors all take
/// <X>Options aggregates, and fleet code spells this one PipelineOptions.
using PipelineOptions = OnlinePipelineOptions;

/// What one step() observed.
struct TickOutcome {
  std::size_t tick = 0;           ///< accepted-tick index (1-based)
  double ingest_seconds = 0.0;    ///< time spent in StreamSource::poll
  bool dropped = false;           ///< tick was incomplete and discarded
  bool predicted = false;         ///< a forecast was issued this tick
  bool residual_ready = false;    ///< a forecast fell due this tick
  double actual_norm = 0.0;       ///< normalised target at this tick
  double predicted_norm = 0.0;    ///< forecast for this tick (if due)
  double residual = 0.0;          ///< |actual - predicted| (if due)
  double actual_raw = 0.0;        ///< raw target at this tick
  double predicted_raw = 0.0;     ///< forecast denormalised to raw units
  double residual_raw = 0.0;      ///< |actual_raw - predicted_raw| (if due);
                                  ///< unit-stable across normalizer policies
  std::uint64_t generation = 0;   ///< generation that made the due forecast
  bool drift = false;             ///< a detector fired this tick
  bool retrain_requested = false; ///< a background retrain was accepted
  bool bootstrapped = false;      ///< the bootstrap fit happened this tick
};

class OnlinePipeline {
 public:
  OnlinePipeline(std::unique_ptr<TickProvider> provider,
                 OnlinePipelineOptions options);
  /// Drains the retrainer, then the engine.
  ~OnlinePipeline();
  OnlinePipeline(const OnlinePipeline&) = delete;
  OnlinePipeline& operator=(const OnlinePipeline&) = delete;

  /// Advance one tick; nullopt once the source is exhausted.
  std::optional<TickOutcome> step();

  /// Run until exhausted (or `max_ticks` consumed; 0 = unbounded); returns
  /// ticks consumed.
  std::size_t run(std::size_t max_ticks = 0);

  bool bootstrapped() const { return engine_ != nullptr; }
  const StreamSource& source() const { return source_; }
  /// Null before bootstrap.
  serve::BatchingEngine* engine() { return engine_.get(); }
  const serve::BatchingEngine* engine() const { return engine_.get(); }
  RollingRetrainer* retrainer() { return retrainer_.get(); }
  const RollingRetrainer* retrainer() const { return retrainer_.get(); }
  const DriftMonitor& drift() const { return drift_; }

  /// Outcome of the bootstrap fit (valid once bootstrapped()).
  const RetrainOutcome& bootstrap_outcome() const { return bootstrap_; }
  /// Ticks since the serving generation last changed.
  std::size_t staleness_ticks() const;

  const OnlinePipelineOptions& options() const { return options_; }

 private:
  void bootstrap();
  void maybe_forecast(TickOutcome& out);
  void harvest_due(TickOutcome& out);

  OnlinePipelineOptions options_;
  StreamSource source_;
  DriftMonitor drift_;
  obs::Gauge& staleness_gauge_;

  // The engine is declared before the retrainer, so the retrainer (whose
  // in-flight job may still swap into the engine) is destroyed first.
  // Session lifetime needs no ordering help: engine and pending futures
  // hold sessions by shared_ptr, and a session co-owns its delegated
  // forecaster.
  std::unique_ptr<serve::BatchingEngine> engine_;
  std::unique_ptr<RollingRetrainer> retrainer_;
  RetrainOutcome bootstrap_;

  struct PendingForecast {
    std::future<Tensor> future;
    // Due-dating runs on the provider-tick clock (accepted + dropped), so a
    // forecast whose target tick was dropped is discarded instead of being
    // scored against a later complete tick.
    std::size_t due_provider_tick = 0;
    std::uint64_t generation = 0;
  };
  std::deque<PendingForecast> pending_;

  std::vector<double> norm_row_;        ///< scratch for drift input rows
  std::uint64_t last_seen_generation_ = 0;
  std::size_t last_swap_tick_ = 0;
};

}  // namespace rptcn::stream
