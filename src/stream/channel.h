// IngestChannel: the per-entity streaming state extracted from
// StreamSource — per-indicator ring buffers plus the online normalizer,
// fed by *pushed* rows instead of a pulled TickProvider.
//
// StreamSource (pull: provider -> channel) and the fleet layer (push:
// thousands of entities multiplexed over a worker pool) share this class,
// so the drop-incomplete semantics, normalisation and window extraction are
// one implementation with one parity proof. ingest() is O(features),
// allocation-free in steady state and lock-free — callers that share a
// channel across threads serialize access themselves (the fleet's
// per-entity mailbox does; StreamSource is single-threaded by contract).
#pragma once

#include <string>
#include <vector>

#include "data/timeseries.h"
#include "stream/normalizer.h"
#include "stream/ring_buffer.h"
#include "tensor/tensor.h"

namespace rptcn::stream {

struct ChannelOptions {
  std::size_t capacity = 4096;  ///< ring depth (bounds history())
  NormalizerOptions normalizer;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

class IngestChannel {
 public:
  /// `names` are the kept feature columns, target first; every pushed row
  /// must carry exactly one value per name, in order.
  explicit IngestChannel(std::vector<std::string> names,
                         ChannelOptions options = {});

  /// Fold one tick into the channel. A row containing any NaN is dropped
  /// whole — exactly data::clean_drop_incomplete — and false is returned;
  /// a complete row updates the normalizer then the rings.
  bool ingest(const std::vector<double>& row);

  /// Complete ticks accepted into the rings.
  std::size_t ticks() const { return ticks_; }
  /// Incomplete ticks dropped.
  std::size_t dropped() const { return dropped_; }
  /// True once `window` ticks are retained.
  bool ready(std::size_t window) const;

  std::size_t features() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Newest raw / normalised value of feature `f` (target is f = 0).
  double latest_raw(std::size_t f) const;
  double latest_norm(std::size_t f) const;

  /// Trailing `window` ticks, normalised under the *current* normalizer
  /// state, as a [F, window] float tensor ready for InferenceSession::run.
  Tensor latest_window(std::size_t window) const;

  /// Copy of the trailing `count` raw ticks as a frame (feature order, the
  /// retrainer's input). Requires count <= retained ticks.
  data::TimeSeriesFrame history(std::size_t count) const;

  const OnlineNormalizer& normalizer() const { return normalizer_; }
  /// Pin the scaler state (see OnlineNormalizer::freeze). Raw ingestion into
  /// the rings continues; only normalisation bounds stop following the data.
  void freeze_normalizer() { normalizer_.freeze(); }

 private:
  std::vector<std::string> names_;
  OnlineNormalizer normalizer_;
  std::vector<RingBuffer<double>> rings_;  ///< raw values, one per feature
  std::size_t ticks_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace rptcn::stream
