// Concept-drift detection over the live stream.
//
// Two complementary detectors, both O(1) per observation:
//  * PageHinkley — the classic sequential change-point test: accumulate
//    m_t = sum(v_i - mean_i - delta) and fire when m_t rises more than
//    `lambda` above its running minimum. Run over one-step-ahead absolute
//    residuals it detects "the model got worse"; run over a normalised
//    input it detects "the distribution moved" even before the model decays.
//  * WindowedErrorMonitor — ratio of the trailing short-window mean error
//    to a longer reference window; robust to slow residual creep that
//    Page-Hinkley's mean tracks away.
//
// DriftMonitor bundles one residual Page-Hinkley + one windowed monitor for
// the model error and one Page-Hinkley per input indicator, and exports
// stream/drift_* metrics through obs:: so a metrics snapshot shows what
// fired and how close the statistics sit to their thresholds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/ring_buffer.h"

namespace rptcn::stream {

struct PageHinkleyOptions {
  double delta = 0.005;          ///< slack absorbing normal fluctuation
  double lambda = 0.1;           ///< fire when m - min(m) exceeds this
  std::size_t min_samples = 30;  ///< warmup before the test may fire
};

class PageHinkley {
 public:
  explicit PageHinkley(PageHinkleyOptions options = {});

  /// Fold one observation; true when drift fires (the detector then resets
  /// itself so the next regime is judged fresh).
  bool update(double v);

  /// Current test statistic m - min(m) (compare against lambda).
  double statistic() const { return mt_ - min_mt_; }
  /// Statistic as computed by the most recent update(), surviving the
  /// fire-reset — on the tick the detector fires this is the value that
  /// crossed lambda, while statistic() already reads 0.
  double last_statistic() const { return last_statistic_; }
  std::size_t samples() const { return n_; }
  void reset();

 private:
  PageHinkleyOptions options_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double mt_ = 0.0;
  double min_mt_ = 0.0;
  double last_statistic_ = 0.0;
};

struct WindowedErrorOptions {
  std::size_t short_window = 32;   ///< trailing window under test
  std::size_t long_window = 128;   ///< reference window (>= short_window)
  double ratio_threshold = 2.0;    ///< fire when short/long exceeds this
  /// Absolute trigger: fire when the short-window mean error exceeds this,
  /// regardless of the ratio (0 disables). The ratio test is blind to a
  /// model that is *consistently* bad — e.g. a freshly swapped generation
  /// that is wrong from its first prediction leaves the reference window
  /// just as bad as the trailing one — and Page-Hinkley tracks its own
  /// mean, so a constant-high residual looks stationary to both. The level
  /// test needs only short_window samples, so it fires soon after a bad
  /// swap instead of waiting out the long-window warmup.
  double level_threshold = 0.0;
  std::size_t min_samples = 64;    ///< warmup before the ratio may fire
};

class WindowedErrorMonitor {
 public:
  explicit WindowedErrorMonitor(WindowedErrorOptions options = {});

  /// Fold one absolute error; true when the ratio or level test fires (the
  /// monitor then resets so the next model is judged fresh).
  bool update(double abs_error);

  /// Trailing short-window mean over long-window mean (0 while warming up).
  double ratio() const;
  /// Ratio as computed by the most recent update(), surviving the
  /// fire-reset — on a fire this is the value that crossed the threshold,
  /// while ratio() already reads 0 from the emptied window.
  double last_ratio() const { return last_ratio_; }
  /// Mean of the trailing short window (0 until short_window samples seen).
  double short_mean() const;
  /// The most recent fire came from the level test, not the ratio test.
  bool level_fired() const { return level_fired_; }
  void reset();

 private:
  WindowedErrorOptions options_;
  RingBuffer<double> errors_;
  bool level_fired_ = false;
  double last_ratio_ = 0.0;
};

struct DriftOptions {
  PageHinkleyOptions residual_ph;   ///< over one-step absolute residuals
  WindowedErrorOptions windowed;    ///< over the same residuals
  PageHinkleyOptions input_ph;      ///< per input indicator, over values
  bool monitor_inputs = true;
  /// Metrics tenant label for the stream/drift_* series; without it N
  /// monitors (one per fleet entity) would sum their event counters and
  /// clobber each other's statistic gauges. Empty keeps the historical
  /// unlabeled names.
  std::string tenant;

  /// Throws common::CheckError naming the offending field.
  void validate() const;
};

/// Per-indicator drift aggregation + obs:: export:
///   counters  stream/drift_events, stream/drift_input_events
///   gauges    stream/drift_residual_stat, stream/drift_error_ratio
class DriftMonitor {
 public:
  DriftMonitor(std::vector<std::string> features, DriftOptions options = {});

  /// Feed one normalised input row (one value per feature). True when any
  /// per-indicator Page-Hinkley fires.
  bool observe_inputs(const std::vector<double>& row);

  /// Feed one one-step absolute residual. True when the residual
  /// Page-Hinkley or the windowed ratio fires.
  bool observe_residual(double abs_residual);

  /// Forget all detector state (call after a hot-swap so the fresh model is
  /// judged against its own residual regime, not its predecessor's).
  void reset();

  std::uint64_t events() const { return events_; }
  /// "residual-ph", "error-ratio" or "input:<name>"; empty before any fire.
  const std::string& last_reason() const { return last_reason_; }

  const PageHinkley& residual_detector() const { return residual_ph_; }
  const WindowedErrorMonitor& windowed_monitor() const { return windowed_; }

 private:
  void fired(std::string reason);

  std::vector<std::string> features_;
  DriftOptions options_;
  PageHinkley residual_ph_;
  WindowedErrorMonitor windowed_;
  std::vector<PageHinkley> input_ph_;
  std::uint64_t events_ = 0;
  std::string last_reason_;

  // Registry handles are process-lifetime stable; resolved once here.
  obs::Counter& drift_events_;
  obs::Counter& input_events_;
  obs::Gauge& residual_stat_;
  obs::Gauge& error_ratio_;
};

}  // namespace rptcn::stream
