#include "stream/channel.h"

#include <cmath>

#include "common/check.h"

namespace rptcn::stream {

void ChannelOptions::validate() const {
  RPTCN_CHECK(capacity > 0, "ChannelOptions.capacity must be >= 1");
}

IngestChannel::IngestChannel(std::vector<std::string> names,
                             ChannelOptions options)
    : names_(std::move(names)) {
  options.validate();
  RPTCN_CHECK(!names_.empty(), "IngestChannel needs at least one feature");
  normalizer_ = OnlineNormalizer(names_, options.normalizer);
  rings_.reserve(names_.size());
  for (std::size_t f = 0; f < names_.size(); ++f)
    rings_.emplace_back(options.capacity);
}

bool IngestChannel::ingest(const std::vector<double>& row) {
  RPTCN_CHECK(row.size() == names_.size(),
              "IngestChannel::ingest got " << row.size() << " values for "
                                           << names_.size() << " features");
  for (const double v : row) {
    if (std::isnan(v)) {
      // Same rule as data::clean_drop_incomplete: the whole tick vanishes.
      ++dropped_;
      return false;
    }
  }
  normalizer_.observe(row);
  for (std::size_t f = 0; f < names_.size(); ++f) rings_[f].push(row[f]);
  ++ticks_;
  return true;
}

bool IngestChannel::ready(std::size_t window) const {
  return !rings_.empty() && rings_.front().size() >= window;
}

double IngestChannel::latest_raw(std::size_t f) const {
  RPTCN_CHECK(f < rings_.size(), "latest_raw: feature index out of range");
  return rings_[f].back();
}

double IngestChannel::latest_norm(std::size_t f) const {
  return normalizer_.normalize(f, latest_raw(f));
}

Tensor IngestChannel::latest_window(std::size_t window) const {
  RPTCN_CHECK(ready(window), "latest_window(" << window << ") but only "
                                              << rings_.front().size()
                                              << " ticks retained");
  Tensor out({names_.size(), window});
  for (std::size_t f = 0; f < names_.size(); ++f) {
    const RingBuffer<double>& ring = rings_[f];
    const std::size_t first = ring.size() - window;
    float* dst = out.raw() + f * window;
    for (std::size_t t = 0; t < window; ++t)
      dst[t] = static_cast<float>(normalizer_.normalize(f, ring[first + t]));
  }
  return out;
}

data::TimeSeriesFrame IngestChannel::history(std::size_t count) const {
  RPTCN_CHECK(!rings_.empty() && count <= rings_.front().size(),
              "history(" << count << ") but only "
                         << (rings_.empty() ? 0 : rings_.front().size())
                         << " ticks retained");
  data::TimeSeriesFrame out;
  for (std::size_t f = 0; f < names_.size(); ++f)
    out.add(names_[f], rings_[f].tail(count));
  return out;
}

}  // namespace rptcn::stream
