#include "stream/normalizer.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace rptcn::stream {

namespace {
constexpr const char* kMagic = "rptcn.stream.normalizer.v1";
}

const char* normalizer_kind_name(NormalizerKind kind) {
  switch (kind) {
    case NormalizerKind::kMinMax:
      return "minmax";
    case NormalizerKind::kEwma:
      return "ewma";
  }
  return "minmax";  // unreachable
}

OnlineNormalizer::OnlineNormalizer(std::vector<std::string> names,
                                   NormalizerOptions options)
    : names_(std::move(names)), options_(options), cols_(names_.size()) {
  RPTCN_CHECK(!names_.empty(), "OnlineNormalizer needs at least one indicator");
}

void OnlineNormalizer::observe(const std::vector<double>& row) {
  if (frozen_) return;
  RPTCN_CHECK(row.size() == names_.size(),
              "OnlineNormalizer::observe got " << row.size() << " values for "
                                               << names_.size()
                                               << " indicators");
  for (std::size_t i = 0; i < row.size(); ++i) {
    RPTCN_CHECK(!std::isnan(row[i]),
                "OnlineNormalizer::observe on NaN — drop incomplete ticks "
                "upstream (StreamSource does)");
    ColumnState& c = cols_[i];
    if (count_ == 0) {
      c.min = c.max = c.mean = row[i];
      c.var = 0.0;
    } else {
      // Running min/max: exactly MinMaxScaler::fit_range folded one tick at
      // a time (std::min/std::max over the prefix, same arithmetic).
      c.min = std::min(c.min, row[i]);
      c.max = std::max(c.max, row[i]);
      const double alpha = options_.ewma_alpha;
      const double delta = row[i] - c.mean;
      c.mean += alpha * delta;
      c.var = (1.0 - alpha) * (c.var + alpha * delta * delta);
    }
  }
  ++count_;
}

double OnlineNormalizer::normalize(std::size_t i, double v) const {
  RPTCN_CHECK(i < cols_.size(), "normalize: indicator index out of range");
  RPTCN_CHECK(count_ > 0, "OnlineNormalizer used before any tick");
  const ColumnState& c = cols_[i];
  if (options_.kind == NormalizerKind::kMinMax) {
    // Bit-for-bit the arithmetic of MinMaxScaler::transform (eq. 1).
    const double range = c.max - c.min;
    if (range == 0.0) return 0.0;
    return (v - c.min) / range;
  }
  return (v - c.mean) / std::sqrt(c.var + options_.epsilon);
}

data::TimeSeriesFrame OnlineNormalizer::transform(
    const data::TimeSeriesFrame& frame) const {
  RPTCN_CHECK(frame.indicators() == names_.size(),
              "transform: frame has " << frame.indicators()
                                      << " columns, normalizer is bound to "
                                      << names_.size());
  data::TimeSeriesFrame out;
  for (std::size_t c = 0; c < frame.indicators(); ++c) {
    RPTCN_CHECK(frame.name(c) == names_[c],
                "transform: column " << c << " is \"" << frame.name(c)
                                     << "\", normalizer expects \""
                                     << names_[c] << "\"");
    std::vector<double> vals = frame.column(c);
    for (double& v : vals) v = normalize(c, v);
    out.add(frame.name(c), std::move(vals));
  }
  return out;
}

double OnlineNormalizer::denormalize(std::size_t i, double v) const {
  RPTCN_CHECK(i < cols_.size(), "denormalize: indicator index out of range");
  RPTCN_CHECK(count_ > 0, "OnlineNormalizer used before any tick");
  const ColumnState& c = cols_[i];
  if (options_.kind == NormalizerKind::kMinMax)
    return c.min + v * (c.max - c.min);
  return c.mean + v * std::sqrt(c.var + options_.epsilon);
}

double OnlineNormalizer::min_of(std::size_t i) const {
  RPTCN_CHECK(i < cols_.size(), "min_of: index out of range");
  return cols_[i].min;
}
double OnlineNormalizer::max_of(std::size_t i) const {
  RPTCN_CHECK(i < cols_.size(), "max_of: index out of range");
  return cols_[i].max;
}
double OnlineNormalizer::mean_of(std::size_t i) const {
  RPTCN_CHECK(i < cols_.size(), "mean_of: index out of range");
  return cols_[i].mean;
}
double OnlineNormalizer::var_of(std::size_t i) const {
  RPTCN_CHECK(i < cols_.size(), "var_of: index out of range");
  return cols_[i].var;
}

models::CheckpointStatus OnlineNormalizer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return models::CheckpointStatus::kIoError;
  out << kMagic << "\n"
      << "kind " << normalizer_kind_name(options_.kind) << "\n"
      << std::setprecision(17) << "ewma_alpha " << options_.ewma_alpha << "\n"
      << "epsilon " << options_.epsilon << "\n"
      << "count " << count_ << "\n"
      << "cols " << names_.size() << "\n";
  for (std::size_t i = 0; i < names_.size(); ++i)
    out << names_[i] << " " << cols_[i].min << " " << cols_[i].max << " "
        << cols_[i].mean << " " << cols_[i].var << "\n";
  return out.good() ? models::CheckpointStatus::kOk
                    : models::CheckpointStatus::kIoError;
}

models::CheckpointStatus OnlineNormalizer::restore(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return models::CheckpointStatus::kIoError;

  std::string magic;
  if (!std::getline(in, magic) || magic != kMagic)
    return models::CheckpointStatus::kIoError;

  std::string key, kind_name;
  NormalizerOptions opts;
  std::size_t count = 0, ncols = 0;
  if (!(in >> key >> kind_name) || key != "kind")
    return models::CheckpointStatus::kIoError;
  if (kind_name == normalizer_kind_name(NormalizerKind::kMinMax))
    opts.kind = NormalizerKind::kMinMax;
  else if (kind_name == normalizer_kind_name(NormalizerKind::kEwma))
    opts.kind = NormalizerKind::kEwma;
  else
    return models::CheckpointStatus::kIoError;
  if (!(in >> key >> opts.ewma_alpha) || key != "ewma_alpha")
    return models::CheckpointStatus::kIoError;
  if (!(in >> key >> opts.epsilon) || key != "epsilon")
    return models::CheckpointStatus::kIoError;
  if (!(in >> key >> count) || key != "count")
    return models::CheckpointStatus::kIoError;
  if (!(in >> key >> ncols) || key != "cols" || ncols == 0)
    return models::CheckpointStatus::kIoError;

  std::vector<std::string> names(ncols);
  std::vector<ColumnState> cols(ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    if (!(in >> names[i] >> cols[i].min >> cols[i].max >> cols[i].mean >>
          cols[i].var))
      return models::CheckpointStatus::kIoError;
  }
  if (!names_.empty() && names != names_)
    return models::CheckpointStatus::kShapeMismatch;

  names_ = std::move(names);
  options_ = opts;
  cols_ = std::move(cols);
  count_ = count;
  return models::CheckpointStatus::kOk;
}

}  // namespace rptcn::stream
