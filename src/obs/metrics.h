// Process-wide metrics registry: counters, gauges and log-scale histograms.
//
// Design goals (DESIGN.md "Observability"):
//  * The hot-path cost of a disabled registry is one relaxed atomic load and
//    a branch — never a mutex, never an allocation. Instrumentation is safe
//    to leave in kernels and training loops unconditionally.
//  * When enabled, updates are lock-free: every metric is split into
//    kShards cache-line-padded shards and a thread only ever touches the
//    shard its thread-id hashes to, so experiment jobs running on the worker
//    pool (core/parallel_runner) update metrics without contending. Shards
//    are merged on snapshot(), which is the only mutex-taking path besides
//    first-time metric registration.
//  * Handles returned by the registry are stable for the process lifetime
//    (the registry is never destroyed), so call sites may cache references
//    in function-local statics.
//
// Enablement: off by default; turned on for the whole process when the
// RPTCN_METRICS_OUT environment variable names an output file (a JSON
// snapshot is then written at process exit — see obs/export.h) or when a
// test calls set_enabled(true).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rptcn::obs {

/// Global observability switch (one relaxed atomic load).
bool enabled();
void set_enabled(bool on);

inline constexpr std::size_t kShards = 16;  ///< per-metric thread shards

// Histograms use fixed log-scale (base-2) buckets: bucket i spans
// (2^(kHistogramMinExp+i-1), 2^(kHistogramMinExp+i)], i.e. upper bound
// bucket_le(i) = 2^(kHistogramMinExp+i). Bucket 0 also absorbs everything
// <= its bound (including non-positive values); the last bucket is
// open-ended. With kMinExp = -30 the bounds run from ~0.93 ns to ~8.6 Gs
// when recording seconds — wide enough for both kernel timings and flop
// ratios without per-histogram configuration.
inline constexpr std::size_t kHistogramBuckets = 64;
inline constexpr int kHistogramMinExp = -30;

/// Upper bound of bucket `i` (inclusive).
double bucket_le(std::size_t i);
/// Index of the bucket a value falls into (clamped to the open-ended ends).
std::size_t bucket_index(double v);

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Lock-free add to this thread's shard; no-op while disabled.
  void add(std::uint64_t n);
  /// Sum over shards. Exact once writers are quiescent, approximate under
  /// concurrent writes (like any sharded counter).
  std::uint64_t value() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// Last-writer-wins store; no-op while disabled.
  void set(double v);
  /// Monotone maximum (e.g. peak pool saturation); no-op while disabled.
  void set_max(double v);
  double value() const;

  void reset();

 private:
  std::atomic<double> v_{0.0};
};

/// Merged view of one histogram at a point in time.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
};

class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free record into this thread's shard; no-op while disabled.
  void record(double v);
  HistogramSnapshot snapshot() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets];
    std::atomic<std::uint64_t> count;
    std::atomic<double> sum;
    std::atomic<double> min;
    std::atomic<double> max;
    Shard() { clear(); }
    void clear();
  };
  Shard shards_[kShards];
};

/// Point-in-time view of every registered metric, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// -- Per-tenant label dimension ----------------------------------------------
//
// Multi-tenant subsystems (the fleet layer's sharded engines, per-entity
// drift monitors) register the same logical metric once per tenant. A
// tenant-qualified series is stored under "<name>{tenant=<tenant>}"; the
// empty tenant resolves to the plain name, so every pre-fleet call site
// keeps its historical metric name and existing dashboards/tests are
// untouched. rollup_tenants() collapses the label for fleet-wide views.

/// "<name>{tenant=<tenant>}", or `name` unchanged when tenant is empty.
/// Tenant values must not contain '{', '}' or '='.
std::string tenant_metric_name(const std::string& name,
                               const std::string& tenant);
/// Inverse of tenant_metric_name: the base name ("serve/queue_depth" from
/// "serve/queue_depth{tenant=shard3}"); unlabeled names pass through.
std::string base_metric_name(const std::string& labeled);
/// The tenant of a labeled name; "" for unlabeled names.
std::string metric_tenant(const std::string& labeled);

/// Collapse the tenant dimension of a snapshot: every "<base>{tenant=...}"
/// series merges into its base name together with any unlabeled series of
/// the same base. Counters and histograms sum (min/max merge); gauges sum,
/// which reads as the fleet total for depth/level-style gauges — per-tenant
/// values stay available in the unrolled snapshot.
MetricsSnapshot rollup_tenants(const MetricsSnapshot& snap);

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Mutex-guarded, so call sites should cache the
  /// returned reference (it stays valid for the process lifetime).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Tenant-labeled variants: find-or-create "<name>{tenant=<tenant>}" (the
  /// plain name when tenant is empty). Same stability guarantees.
  Counter& counter(const std::string& name, const std::string& tenant);
  Gauge& gauge(const std::string& name, const std::string& tenant);
  Histogram& histogram(const std::string& name, const std::string& tenant);

  MetricsSnapshot snapshot() const;

  /// Zero every metric's value. Registered handles stay valid. Meant for
  /// tests; callers must ensure writers are quiescent.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry (never destroyed, safe to use from atexit).
MetricsRegistry& metrics();

}  // namespace rptcn::obs
