#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/export.h"

namespace rptcn::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Process-wide enablement comes from the environment so that any binary —
// bench, example, test — grows a metrics snapshot with zero code changes:
//   RPTCN_METRICS_OUT=metrics.json ./table2_accuracy
// The initializer lives in this translation unit because every instrumented
// call site references enabled(), which guarantees the object file (and
// with it this initializer) is linked into the binary.
[[maybe_unused]] const bool g_env_init = [] {
  if (std::getenv("RPTCN_METRICS_OUT") != nullptr) {
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit([] { write_snapshot_if_configured(); });
  }
  return true;
}();

/// Stable per-thread shard slot: threads get round-robin indices, so up to
/// kShards concurrent threads never share a cache line.
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double bucket_le(std::size_t i) {
  return std::ldexp(1.0, kHistogramMinExp + static_cast<int>(i));
}

std::size_t bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive (and NaN) land in bucket 0
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // Smallest k with v <= 2^k: exp-1 when v is an exact power of two.
  const int k = (m == 0.5) ? exp - 1 : exp;
  const long idx = static_cast<long>(k) - kHistogramMinExp;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kHistogramBuckets)) return kHistogramBuckets - 1;
  return static_cast<std::size_t>(idx);
}

// -- Counter ------------------------------------------------------------------

void Counter::add(std::uint64_t n) {
  if (!enabled()) return;
  shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// -- Gauge --------------------------------------------------------------------

void Gauge::set(double v) {
  if (!enabled()) return;
  v_.store(v, std::memory_order_relaxed);
}

void Gauge::set_max(double v) {
  if (!enabled()) return;
  atomic_max(v_, v);
}

double Gauge::value() const { return v_.load(std::memory_order_relaxed); }

void Gauge::reset() { v_.store(0.0, std::memory_order_relaxed); }

// -- Histogram ----------------------------------------------------------------

void Histogram::Shard::clear() {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0.0, std::memory_order_relaxed);
  min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
}

Histogram::Histogram() = default;

void Histogram::record(double v) {
  if (!enabled()) return;
  Shard& s = shards_[shard_index()];
  s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(s.sum, v);
  atomic_min(s.min, v);
  atomic_max(s.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kHistogramBuckets, 0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    lo = std::min(lo, s.min.load(std::memory_order_relaxed));
    hi = std::max(hi, s.max.load(std::memory_order_relaxed));
  }
  if (snap.count > 0) {
    snap.min = lo;
    snap.max = hi;
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& s : shards_) s.clear();
}

// -- Per-tenant label dimension ----------------------------------------------

std::string tenant_metric_name(const std::string& name,
                               const std::string& tenant) {
  if (tenant.empty()) return name;
  return name + "{tenant=" + tenant + "}";
}

std::string base_metric_name(const std::string& labeled) {
  const std::size_t brace = labeled.find("{tenant=");
  if (brace == std::string::npos || labeled.back() != '}') return labeled;
  return labeled.substr(0, brace);
}

std::string metric_tenant(const std::string& labeled) {
  const std::size_t brace = labeled.find("{tenant=");
  if (brace == std::string::npos || labeled.back() != '}') return {};
  const std::size_t start = brace + 8;  // past "{tenant="
  return labeled.substr(start, labeled.size() - start - 1);
}

namespace {

void merge_histograms(HistogramSnapshot& into, const HistogramSnapshot& from) {
  if (into.buckets.empty()) into.buckets.assign(kHistogramBuckets, 0);
  for (std::size_t i = 0; i < from.buckets.size() && i < into.buckets.size();
       ++i)
    into.buckets[i] += from.buckets[i];
  if (from.count > 0) {
    into.min = into.count > 0 ? std::min(into.min, from.min) : from.min;
    into.max = into.count > 0 ? std::max(into.max, from.max) : from.max;
  }
  into.count += from.count;
  into.sum += from.sum;
}

}  // namespace

MetricsSnapshot rollup_tenants(const MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const auto& [name, v] : snap.counters)
    counters[base_metric_name(name)] += v;
  for (const auto& [name, v] : snap.gauges)
    gauges[base_metric_name(name)] += v;
  for (const auto& [name, h] : snap.histograms)
    merge_histograms(histograms[base_metric_name(name)], h);
  MetricsSnapshot out;
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.assign(gauges.begin(), gauges.end());
  out.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) out.histograms.emplace_back(name, std::move(h));
  return out;
}

// -- MetricsRegistry ----------------------------------------------------------

MetricsRegistry::MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& tenant) {
  return counter(tenant_metric_name(name, tenant));
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& tenant) {
  return gauge(tenant_metric_name(name, tenant));
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& tenant) {
  return histogram(tenant_metric_name(name, tenant));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.emplace_back(name, h->snapshot());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  // Deliberately leaked: handles cached by instrumented call sites and the
  // atexit exporter must outlive every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace rptcn::obs
