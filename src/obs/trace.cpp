#include "obs/trace.h"

#include <mutex>
#include <utility>

namespace rptcn::obs {

namespace {

/// Innermost open span of the current thread (nesting is lexical, so a raw
/// pointer suffices: a parent strictly outlives its children).
thread_local SpanNode* t_current = nullptr;

struct SpanForest {
  std::mutex mutex;
  std::vector<std::unique_ptr<SpanNode>> roots;
};

SpanForest& forest() {
  // Leaked like the metrics registry: the atexit exporter must be able to
  // drain the forest after static destructors have started running.
  static SpanForest* f = new SpanForest();
  return *f;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

TraceSpan::TraceSpan(std::string name) {
  if (!enabled()) return;
  auto node = std::make_unique<SpanNode>();
  node->name = std::move(name);
  node_ = node.get();
  parent_ = t_current;
  if (parent_ != nullptr)
    parent_->children.push_back(std::move(node));
  else
    owned_ = std::move(node);
  t_current = node_;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  node_->seconds = seconds_since(start_);
  t_current = parent_;
  if (owned_ != nullptr) {
    SpanForest& f = forest();
    std::lock_guard<std::mutex> lock(f.mutex);
    f.roots.push_back(std::move(owned_));
  }
}

ScopedTimer::ScopedTimer(Histogram& hist) {
  if (!enabled()) return;
  hist_ = &hist;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->record(seconds_since(start_));
}

std::vector<std::unique_ptr<SpanNode>> take_finished_spans() {
  SpanForest& f = forest();
  std::lock_guard<std::mutex> lock(f.mutex);
  return std::exchange(f.roots, {});
}

}  // namespace rptcn::obs
