#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rptcn::obs {

namespace {

void append_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_span(std::ostream& out, const SpanNode& span, int indent) {
  const std::string pad(indent, ' ');
  out << pad << "{ \"name\": ";
  append_escaped(out, span.name);
  out << ", \"seconds\": " << span.seconds;
  if (!span.children.empty()) {
    out << ",\n" << pad << "  \"children\": [\n";
    for (std::size_t i = 0; i < span.children.size(); ++i) {
      append_span(out, *span.children[i], indent + 4);
      out << (i + 1 < span.children.size() ? ",\n" : "\n");
    }
    out << pad << "  ]";
  }
  out << " }";
}

void append_histogram(std::ostream& out, const HistogramSnapshot& h) {
  out << "{ \"count\": " << h.count << ", \"sum\": " << h.sum
      << ", \"min\": " << h.min << ", \"max\": " << h.max
      << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "{ \"le\": " << bucket_le(i) << ", \"count\": " << h.buckets[i]
        << " }";
  }
  out << "] }";
}

}  // namespace

std::string snapshot_json() {
  const MetricsSnapshot snap = metrics().snapshot();
  const auto spans = take_finished_spans();

  std::ostringstream out;
  out.precision(17);  // doubles survive a JSON round trip exactly
  out << "{\n  \"schema\": \"rptcn.metrics.v1\",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    append_escaped(out, snap.counters[i].first);
    out << ": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    append_escaped(out, snap.gauges[i].first);
    out << ": " << snap.gauges[i].second;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    append_escaped(out, snap.histograms[i].first);
    out << ": ";
    append_histogram(out, snap.histograms[i].second);
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "},\n";

  out << "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    append_span(out, *spans[i], 4);
  }
  out << (spans.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

void write_snapshot(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "[obs] cannot open metrics output: " << path << "\n";
    return;
  }
  out << snapshot_json();
  std::cerr << "[obs] wrote metrics snapshot to " << path << "\n";
}

std::string configured_output_path() {
  const char* env = std::getenv("RPTCN_METRICS_OUT");
  return env == nullptr ? std::string() : std::string(env);
}

void write_snapshot_if_configured() {
  const std::string path = configured_output_path();
  if (!path.empty()) write_snapshot(path);
}

}  // namespace rptcn::obs
