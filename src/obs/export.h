// Structured JSON export of the metrics registry and span forest — the same
// machine-readable family as BENCH_kernels.json, so snapshots are diffable
// across commits and greppable in CI artifacts.
//
//   RPTCN_METRICS_OUT=metrics.json ./table2_accuracy
//
// enables instrumentation for the whole process and writes the snapshot at
// exit (an atexit hook registered by the obs library). snapshot_json() can
// also be called directly for mid-run exports.
//
// Document shape:
//   {
//     "schema": "rptcn.metrics.v1",
//     "counters":   { "kernel/gemm_flops": 123, ... },
//     "gauges":     { "runner/workers": 8.0, ... },
//     "histograms": { "runner/job_seconds":
//                       { "count": 4, "sum": 1.2, "min": ..., "max": ...,
//                         "buckets": [ { "le": 0.25, "count": 3 }, ... ] },
//                     ... },
//     "spans":      [ { "name": "pipeline/fit", "seconds": 1.2,
//                       "children": [ ... ] }, ... ]
//   }
// Histogram buckets are log-2 scale (obs/metrics.h); only non-empty buckets
// are emitted, and the last bucket is open-ended above its bound.
#pragma once

#include <string>

namespace rptcn::obs {

/// Serialize the registry plus the span forest. Drains the finished-span
/// forest (spans appear in exactly one snapshot).
std::string snapshot_json();

/// Write snapshot_json() to `path`; failures go to stderr (this runs from
/// atexit, where throwing is not an option).
void write_snapshot(const std::string& path);

/// Value of RPTCN_METRICS_OUT, or empty when unset.
std::string configured_output_path();

/// write_snapshot(configured_output_path()) if the variable is set.
void write_snapshot_if_configured();

}  // namespace rptcn::obs
