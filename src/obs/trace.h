// RAII trace spans and scoped timers.
//
// TraceSpan instances nest lexically into a per-thread span tree: the first
// span opened on a thread becomes a root, spans opened inside it become its
// children. On destruction a span records its wall time; completed roots are
// moved into a process-wide forest that the JSON exporter (obs/export.h)
// drains. Pipeline stages, training runs and parallel-runner jobs each open
// a span, so a run's snapshot shows where the wall-clock went, per thread
// and per job.
//
// ScopedTimer is the aggregate sibling: it records its scope's wall time
// into a Histogram instead of building tree nodes — use it where the same
// scope runs thousands of times and a distribution is more useful than a
// per-instance node.
//
// Both are no-ops (a branch, no allocation) while obs::enabled() is false.
// Spans on different threads never share mutable state; moving a finished
// root into the global forest takes a mutex, but that happens once per
// root span (per job), not per nested span.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rptcn::obs {

/// One node of the span forest: a named scope, its wall time and children
/// in the order they were opened.
struct SpanNode {
  std::string name;
  double seconds = 0.0;
  std::vector<std::unique_ptr<SpanNode>> children;
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SpanNode* node_ = nullptr;    ///< null when tracing was disabled at open
  SpanNode* parent_ = nullptr;  ///< enclosing span on this thread, if any
  std::unique_ptr<SpanNode> owned_;  ///< set for root spans until finished
  std::chrono::steady_clock::time_point start_;
};

class ScopedTimer {
 public:
  /// Records elapsed seconds into `hist` on destruction.
  explicit ScopedTimer(Histogram& hist);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;  ///< null when disabled at construction
  std::chrono::steady_clock::time_point start_;
};

/// Move every finished root span out of the process-wide forest (oldest
/// first). The exporter calls this once at snapshot time; tests use it for
/// isolation. Spans still open stay attached to their threads.
std::vector<std::unique_ptr<SpanNode>> take_finished_spans();

}  // namespace rptcn::obs
