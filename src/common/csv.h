// Minimal column-oriented CSV I/O.
//
// The library works with numeric time-series tables only, so the format is
// deliberately simple: a header row of column names, then rows of decimal
// numbers. Missing values may be spelled as an empty field or "nan" and are
// loaded as quiet NaN (the data-cleaning stage handles them).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rptcn {

/// A numeric table, stored column-major.
struct CsvTable {
  std::vector<std::string> columns;          ///< column names, in file order
  std::vector<std::vector<double>> data;     ///< data[c][row]

  std::size_t rows() const { return data.empty() ? 0 : data.front().size(); }
  std::size_t cols() const { return columns.size(); }

  /// Index of a named column; throws CheckError if absent.
  std::size_t column_index(const std::string& name) const;
};

/// Parse a CSV stream. Throws CheckError on ragged rows.
CsvTable read_csv(std::istream& in);
/// Load a CSV file. Throws CheckError if the file cannot be opened.
CsvTable read_csv_file(const std::string& path);

/// Serialize a table (fixed 6-decimal precision; NaN spelled "nan").
void write_csv(std::ostream& out, const CsvTable& table);
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace rptcn
