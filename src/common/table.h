// ASCII table printer used by the benches to reproduce the paper's tables
// as readable console output (and by EXPERIMENTS.md generation).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rptcn {

/// Column-aligned ASCII table with a header row and optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> row);
  /// Append a horizontal separator at the current position.
  void add_separator();

  void set_title(std::string title) { title_ = std::move(title); }

  /// Render to a stream with single-space padding and `|` separators.
  void print(std::ostream& out) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace rptcn
