#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace rptcn {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    RPTCN_CHECK(false, "flag --" << name << " expects an integer, got '"
                                 << it->second << "'");
  }
  return fallback;  // unreachable
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    RPTCN_CHECK(false, "flag --" << name << " expects a number, got '"
                                 << it->second << "'");
  }
  return fallback;  // unreachable
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string v = to_lower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> Flags::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const auto& k : known)
      if (k == name) found = true;
    if (!found) out.push_back(name);
  }
  return out;
}

}  // namespace rptcn
