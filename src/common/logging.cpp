#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace rptcn {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serialises sink writes so lines from pool workers never interleave.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << "[rptcn " << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace rptcn
