#include "common/logging.h"

#include <iostream>

namespace rptcn {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  std::cerr << "[rptcn " << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace rptcn
