#include "common/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace rptcn {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i)
    if (columns[i] == name) return i;
  RPTCN_CHECK(false, "no such CSV column: " << name);
  return 0;  // unreachable
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  RPTCN_CHECK(static_cast<bool>(std::getline(in, line)), "CSV stream is empty");
  for (auto& name : split(trim(line), ','))
    table.columns.emplace_back(trim(name));
  table.data.assign(table.columns.size(), {});

  std::size_t row = 0;
  while (std::getline(in, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto fields = split(trimmed, ',');
    RPTCN_CHECK(fields.size() == table.columns.size(),
                "ragged CSV row " << row << ": got " << fields.size()
                                  << " fields, expected " << table.columns.size());
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const auto f = trim(fields[c]);
      if (f.empty() || to_lower(f) == "nan") {
        table.data[c].push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        try {
          table.data[c].push_back(std::stod(std::string(f)));
        } catch (const std::exception&) {
          RPTCN_CHECK(false, "unparseable CSV value '" << f << "' at row " << row
                                                       << " col " << c);
        }
      }
    }
    ++row;
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  RPTCN_CHECK(in.good(), "cannot open CSV file: " << path);
  return read_csv(in);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  for (std::size_t c = 0; c < table.columns.size(); ++c) {
    if (c) out << ',';
    out << table.columns[c];
  }
  out << '\n';
  const std::size_t n = table.rows();
  for (std::size_t c = 0; c < table.data.size(); ++c)
    RPTCN_CHECK(table.data[c].size() == n, "CSV columns have unequal lengths");
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < table.data.size(); ++c) {
      if (c) out << ',';
      const double v = table.data[c][r];
      if (std::isnan(v))
        out << "nan";
      else
        out << format_double(v, 6);
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  RPTCN_CHECK(out.good(), "cannot open CSV file for writing: " << path);
  write_csv(out, table);
}

}  // namespace rptcn
