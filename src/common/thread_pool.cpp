#include "common/thread_pool.h"

#include <atomic>

namespace rptcn {

namespace {
// Global count of tasks currently executing on any ThreadPool. Relaxed
// ordering is sufficient: the count only steers the OpenMP `if` clauses and
// a stale read merely picks a different (still correct) thread count.
std::atomic<std::size_t> g_active_jobs{0};
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::active_jobs() {
  return g_active_jobs.load(std::memory_order_relaxed);
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so submitted futures always
      // complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    // RAII keeps the count balanced even if a raw enqueued callable throws
    // (submit() wraps tasks in packaged_task, which never does, but the
    // worker must not depend on that).
    ActiveJobScope scope;
    task();  // packaged_task: exceptions land in the future
  }
}

bool kernel_parallelism_allowed() {
  return g_active_jobs.load(std::memory_order_relaxed) <= 1;
}

ActiveJobScope::ActiveJobScope() {
  g_active_jobs.fetch_add(1, std::memory_order_relaxed);
}

ActiveJobScope::~ActiveJobScope() {
  g_active_jobs.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace rptcn
