// Fixed-size worker pool for coarse-grained job parallelism.
//
// The pool is the level-1 lever of the execution model: independent
// experiment jobs (one training run each) execute on worker threads while
// the level-2 lever — OpenMP inside the numeric kernels — is gated down to
// a single thread whenever the pool is saturated, so the two levels never
// oversubscribe the machine (see DESIGN.md "Threading model").
//
// Guarantees:
//  * submit() returns a std::future; exceptions thrown by the task are
//    captured and rethrown from future::get() on the caller's thread.
//  * The destructor drains every queued task before joining (no dropped
//    work), so futures obtained from submit() never dangle.
//  * active_jobs() counts tasks currently executing on any pool, globally;
//    kernel_parallelism_allowed() is false while two or more run at once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace rptcn {

class ThreadPool {
 public:
  /// Spawn `workers` threads (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedule `fn` on the pool. The returned future delivers the result or
  /// rethrows the task's exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Tasks currently executing across every live pool (not queued ones).
  static std::size_t active_jobs();

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// True when the OpenMP kernels may fan out: no pool is saturated with
/// concurrent jobs. Used in `#pragma omp parallel for if(...)` clauses so
/// inner-kernel threading collapses to 1 while coarse-grained jobs own the
/// cores.
bool kernel_parallelism_allowed();

/// RAII participant in the global active-job count. ThreadPool workers hold
/// one around each task; threads outside the pool that run kernel-heavy work
/// concurrently (e.g. the serving engine's batch forwards) hold one too, so
/// kernel_parallelism_allowed() sees every coarse-grained job regardless of
/// which pool — or no pool — runs it. Exception-safe by construction.
class ActiveJobScope {
 public:
  ActiveJobScope();
  ~ActiveJobScope();
  ActiveJobScope(const ActiveJobScope&) = delete;
  ActiveJobScope& operator=(const ActiveJobScope&) = delete;
};

}  // namespace rptcn
