// Small string helpers used by the CSV reader and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rptcn {

/// Split on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// True if s begins with prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-precision decimal formatting (no locale surprises).
std::string format_double(double v, int precision);

}  // namespace rptcn
