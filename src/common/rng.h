// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (trace synthesis, weight init,
// dropout, batch shuffling, subsampling in GBT) draws from an explicitly
// seeded Rng so runs are reproducible bit-for-bit. The engine is
// xoshiro256** seeded through SplitMix64, which is fast, has a 256-bit state
// and passes BigCrush — more than adequate for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rptcn {

/// SplitMix64 step; used to expand a 64-bit seed into engine state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** random engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw (UniformRandomBitGenerator interface).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);
  /// Exponential with the given rate (lambda).
  double exponential(double rate);
  /// Categorical draw: index i with probability weights[i]/sum(weights).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for parallel streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rptcn
