#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rptcn {

double mean(std::span<const double> xs) {
  RPTCN_CHECK(!xs.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  RPTCN_CHECK(!xs.empty(), "variance of empty span");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double covariance(std::span<const double> xs, std::span<const double> ys) {
  RPTCN_CHECK(xs.size() == ys.size(), "covariance size mismatch");
  RPTCN_CHECK(!xs.empty(), "covariance of empty span");
  const double mx = mean(xs);
  const double my = mean(ys);
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) s += (xs[i] - mx) * (ys[i] - my);
  return s / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const double sx = stddev(xs);
  const double sy = stddev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(xs, ys) / (sx * sy);
}

double quantile(std::span<const double> xs, double q) {
  RPTCN_CHECK(!xs.empty(), "quantile of empty span");
  RPTCN_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min_value(std::span<const double> xs) {
  RPTCN_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  RPTCN_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

BoxplotStats boxplot(std::span<const double> xs) {
  BoxplotStats b;
  b.min = min_value(xs);
  b.q1 = quantile(xs, 0.25);
  b.median = median(xs);
  b.q3 = quantile(xs, 0.75);
  b.max = max_value(xs);
  b.mean = mean(xs);
  return b;
}

void RunningStats::push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RPTCN_CHECK(hi > lo, "histogram range must be non-empty");
  RPTCN_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::push(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  RPTCN_CHECK(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_high(i) <= x) {
      acc += counts_[i];
    } else if (bin_low(i) < x) {
      // partial bin: assume uniform within bin
      const double frac = (x - bin_low(i)) / (bin_high(i) - bin_low(i));
      acc += static_cast<std::size_t>(frac * static_cast<double>(counts_[i]));
    }
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::vector<double> diff(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  std::vector<double> d(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) d[i] = xs[i + 1] - xs[i];
  return d;
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  RPTCN_CHECK(xs.size() > lag, "autocorrelation lag exceeds series length");
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - m) * (xs[i] - m);
    if (i + lag < xs.size()) num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace rptcn
