// Error-handling primitives.
//
// RPTCN_CHECK(cond, msg): precondition check that throws rptcn::CheckError.
// Used at public API boundaries; internal invariants use RPTCN_DCHECK which
// compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rptcn {

/// Exception thrown when a RPTCN_CHECK fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_error(const char* cond, const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace rptcn

// Always-on check: throws rptcn::CheckError with location info.
#define RPTCN_CHECK(cond, ...)                                                \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::std::ostringstream rptcn_check_oss_;                                  \
      rptcn_check_oss_ __VA_OPT__(<< __VA_ARGS__);                            \
      ::rptcn::detail::throw_check_error(#cond, __FILE__, __LINE__,           \
                                         rptcn_check_oss_.str());             \
    }                                                                         \
  } while (false)

// Debug-only check (active unless NDEBUG).
#ifdef NDEBUG
#define RPTCN_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#else
#define RPTCN_DCHECK(cond, ...) RPTCN_CHECK(cond, __VA_ARGS__)
#endif
