// Minimal command-line flag parsing for the examples and the CLI tool.
// Accepts "--key value", "--key=value" and bare boolean "--key".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rptcn {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  /// Flags present on the command line that were never queried — typo guard.
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rptcn
