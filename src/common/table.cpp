#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rptcn {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RPTCN_CHECK(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  RPTCN_CHECK(row.size() == header_.size(),
              "row width " << row.size() << " != header width " << header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

void AsciiTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_sep = [&] {
    out << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell;
      for (std::size_t i = cell.size(); i < widths[c] + 1; ++i) out << ' ';
      out << '|';
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty())
      print_sep();
    else
      print_row(row);
  }
  print_sep();
}

std::string AsciiTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace rptcn
