#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace rptcn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RPTCN_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection-free for our purposes: modulo bias is negligible
  // for n << 2^64, but use rejection to be exact.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RPTCN_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  RPTCN_CHECK(rate > 0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / rate;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  RPTCN_CHECK(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    RPTCN_CHECK(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  RPTCN_CHECK(total > 0.0, "categorical weights must not all be zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall through to last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() {
  // Derive a child seed from two fresh draws; keeps streams decorrelated.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 29));
}

}  // namespace rptcn
