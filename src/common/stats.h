// Descriptive statistics over double sequences.
//
// All statistical accumulation in the library happens in double even when
// the underlying data is float32 — correlation screening and trace
// characterisation need the extra precision.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rptcn {

/// Arithmetic mean. Requires a non-empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by n). Requires a non-empty span.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Population covariance of two equal-length spans.
double covariance(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient (eq. 2 of the paper).
/// Returns 0 when either series is constant (correlation undefined).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Linearly interpolated quantile, q in [0, 1]. Sorts a copy.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Min / max of a non-empty span.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Five-number summary plus mean, as used to print the paper's boxplots
/// (Fig. 2) in text form.
struct BoxplotStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};
BoxplotStats boxplot(std::span<const double> xs);

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void push(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi]; values outside clamp into edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void push(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Fraction of samples at or below x (empirical CDF on bin granularity).
  double cdf(double x) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// First-difference of a series: d[i] = xs[i+1] - xs[i].
std::vector<double> diff(std::span<const double> xs);

/// Lag-k autocorrelation of a series (biased estimator, standard for ACF).
double autocorrelation(std::span<const double> xs, std::size_t lag);

}  // namespace rptcn
