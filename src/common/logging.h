// Minimal leveled logging to stderr.
//
// The library itself logs sparingly (training progress, experiment phases);
// benches and examples raise the level for narration. Thread-safe: the level
// is an atomic and sink writes are serialised by a mutex, so experiment jobs
// running on the worker pool may log without interleaving lines. Logging
// from inside OpenMP kernel regions is still avoided (it would serialise the
// hot loops).
#pragma once

#include <sstream>
#include <string>

namespace rptcn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_message(LogLevel level, const std::string& msg);
}

}  // namespace rptcn

#define RPTCN_LOG(level, ...)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::rptcn::log_level())) {                   \
      ::std::ostringstream rptcn_log_oss_;                          \
      rptcn_log_oss_ << __VA_ARGS__;                                \
      ::rptcn::detail::log_message(level, rptcn_log_oss_.str());    \
    }                                                               \
  } while (false)

#define RPTCN_DEBUG(...) RPTCN_LOG(::rptcn::LogLevel::kDebug, __VA_ARGS__)
#define RPTCN_INFO(...) RPTCN_LOG(::rptcn::LogLevel::kInfo, __VA_ARGS__)
#define RPTCN_WARN(...) RPTCN_LOG(::rptcn::LogLevel::kWarn, __VA_ARGS__)
#define RPTCN_ERROR(...) RPTCN_LOG(::rptcn::LogLevel::kError, __VA_ARGS__)
