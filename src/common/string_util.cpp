#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace rptcn {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

}  // namespace rptcn
