#include "common/check.h"

namespace rptcn::detail {

void throw_check_error(const char* cond, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream oss;
  oss << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace rptcn::detail
