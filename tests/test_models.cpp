#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "models/arima_forecaster.h"
#include "models/gbt_forecaster.h"
#include "models/registry.h"

namespace rptcn::models {
namespace {

/// A learnable multivariate dataset: target is a smooth AR process, one
/// auxiliary channel is a noisy copy (predictive), built straight into the
/// ForecastDataset layout (window 12, horizon 1).
ForecastDataset make_dataset(std::size_t length = 500,
                             std::uint64_t seed = 31) {
  Rng rng(seed);
  std::vector<double> target{0.5};
  for (std::size_t i = 1; i < length; ++i) {
    const double next = 0.5 + 0.85 * (target.back() - 0.5) +
                        0.03 * std::sin(static_cast<double>(i) * 0.2) +
                        rng.normal(0.0, 0.02);
    target.push_back(std::clamp(next, 0.0, 1.0));
  }
  data::TimeSeriesFrame frame;
  std::vector<double> aux(length);
  for (std::size_t i = 0; i < length; ++i)
    aux[i] = target[i] + rng.normal(0.0, 0.05);
  frame.add("cpu", target);
  frame.add("aux", std::move(aux));

  data::WindowOptions wopt;
  wopt.window = 12;
  wopt.horizon = 1;
  const auto all = data::make_windows(frame, "cpu", wopt);
  auto split = data::chrono_split(all);

  ForecastDataset ds;
  ds.train = std::move(split.train);
  ds.valid = std::move(split.valid);
  ds.test = std::move(split.test);
  ds.window = wopt.window;
  ds.horizon = wopt.horizon;
  ds.target_channel = 0;
  ds.target_series = target;
  ds.train_len = ds.train.samples() + wopt.window;
  ds.valid_len = ds.valid.samples();
  return ds;
}

NnTrainConfig fast_nn() {
  NnTrainConfig cfg;
  cfg.max_epochs = 12;
  cfg.patience = 12;
  cfg.learning_rate = 2e-3f;
  cfg.seed = 5;
  return cfg;
}

ModelConfig fast_config() {
  ModelConfig cfg;
  cfg.nn = fast_nn();
  cfg.rptcn.tcn.channels = {8, 8};
  cfg.rptcn.fc_dim = 8;
  cfg.lstm.hidden = 12;
  cfg.cnn_lstm.conv_channels = 6;
  cfg.cnn_lstm.hidden = 12;
  cfg.gbt.n_rounds = 40;
  return cfg;
}

double variance_of_targets(const Tensor& targets) {
  double s = 0.0, s2 = 0.0;
  for (float v : targets.data()) {
    s += v;
    s2 += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(targets.size());
  const double m = s / n;
  return s2 / n - m * m;
}

TEST(Registry, KnowsAllModels) {
  const auto& names = forecaster_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    const auto f = make_forecaster(name, fast_config());
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->name(), name);
  }
}

TEST(Registry, AcceptsCaseInsensitiveNames) {
  EXPECT_EQ(make_forecaster("rptcn", fast_config())->name(), "RPTCN");
  EXPECT_EQ(make_forecaster("Rptcn", fast_config())->name(), "RPTCN");
  EXPECT_EQ(make_forecaster("cnn-lstm", fast_config())->name(), "CNN-LSTM");
  EXPECT_EQ(make_forecaster("xgboost", fast_config())->name(), "XGBoost");
}

TEST(Registry, RejectsUnknownName) {
  EXPECT_THROW(make_forecaster("Prophet", fast_config()), CheckError);
  // The error must list every registered name so typos are self-diagnosing.
  try {
    make_forecaster("Prophet", fast_config());
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown forecaster: Prophet"), std::string::npos);
    for (const auto& name : forecaster_names())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(Accuracy, MatchesManualComputation) {
  const Tensor pred = Tensor::from({2, 1}, {1.0f, 3.0f});
  const Tensor truth = Tensor::from({2, 1}, {0.0f, 1.0f});
  const auto acc = evaluate_accuracy(pred, truth);
  EXPECT_NEAR(acc.mse, 2.5, 1e-9);
  EXPECT_NEAR(acc.mae, 1.5, 1e-9);
  EXPECT_THROW(evaluate_accuracy(pred, Tensor({3, 1})), CheckError);
}

// Parameterized over every registered model: fit+predict contract.
class ForecasterContract : public ::testing::TestWithParam<std::string> {};

TEST_P(ForecasterContract, FitPredictShapesAndSanity) {
  const auto ds = make_dataset();
  auto model = make_forecaster(GetParam(), fast_config());
  model->fit(ds);
  const Tensor preds = model->predict(ds.test.inputs);
  ASSERT_EQ(preds.shape(), ds.test.targets.shape());
  for (float v : preds.data()) ASSERT_TRUE(std::isfinite(v));
  // Every model must beat the constant-mean predictor on this easy series.
  const auto acc = evaluate_accuracy(preds, ds.test.targets);
  EXPECT_LT(acc.mse, variance_of_targets(ds.test.targets))
      << GetParam() << " failed to beat the mean predictor";
}

TEST_P(ForecasterContract, PredictBeforeFitThrows) {
  auto model = make_forecaster(GetParam(), fast_config());
  Tensor inputs({2, 2, 12});
  EXPECT_THROW(model->predict(inputs), CheckError);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ForecasterContract,
                         ::testing::Values("ARIMA", "LSTM", "CNN-LSTM",
                                           "XGBoost", "RPTCN", "TCN",
                                           "BiLSTM"));

TEST(NnForecasters, CurvesRecorded) {
  const auto ds = make_dataset();
  auto model = make_forecaster("RPTCN", fast_config());
  model->fit(ds);
  EXPECT_FALSE(model->curves().train_loss.empty());
  EXPECT_EQ(model->curves().train_loss.size(),
            model->curves().valid_loss.size());
}

TEST(NnForecasters, DeterministicGivenSeed) {
  const auto ds = make_dataset();
  const auto run = [&ds] {
    auto model = make_forecaster("RPTCN", fast_config());
    model->fit(ds);
    return evaluate_accuracy(model->predict(ds.test.inputs), ds.test.targets);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.mse, b.mse);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
}

TEST(GbtForecasterTest, MultiHorizonDirectStrategy) {
  auto ds = make_dataset();
  // Rebuild with horizon 3.
  data::TimeSeriesFrame frame;
  frame.add("cpu", ds.target_series);
  data::WindowOptions wopt;
  wopt.window = 12;
  wopt.horizon = 3;
  const auto all = data::make_windows(frame, "cpu", wopt);
  auto split = data::chrono_split(all);
  ForecastDataset ds3;
  ds3.train = std::move(split.train);
  ds3.valid = std::move(split.valid);
  ds3.test = std::move(split.test);
  ds3.window = 12;
  ds3.horizon = 3;
  ds3.target_series = ds.target_series;
  ds3.train_len = ds3.train.samples() + 12;

  GbtForecaster model(fast_config().gbt);
  model.fit(ds3);
  const Tensor preds = model.predict(ds3.test.inputs);
  EXPECT_EQ(preds.shape(), (std::vector<std::size_t>{ds3.test.samples(), 3u}));
}

TEST(ArimaForecasterTest, UsesWindowHistoryForForecast) {
  const auto ds = make_dataset();
  ArimaForecaster model;
  model.fit(ds);
  const Tensor preds = model.predict(ds.test.inputs);
  EXPECT_EQ(preds.shape(), ds.test.targets.shape());
  // ARIMA on a mean-reverting AR(1) should track closely.
  const auto acc = evaluate_accuracy(preds, ds.test.targets);
  EXPECT_LT(acc.mse, variance_of_targets(ds.test.targets) * 0.5);
}

TEST(ArimaForecasterTest, RequiresTargetSeries) {
  auto ds = make_dataset();
  ds.target_series.clear();
  ArimaForecaster model;
  EXPECT_THROW(model.fit(ds), CheckError);
}

TEST(ArimaForecasterTest, AutoOrderVariantFits) {
  const auto ds = make_dataset(400, 99);
  ArimaForecaster model({}, /*auto_order=*/true);
  model.fit(ds);
  const Tensor preds = model.predict(ds.test.inputs);
  for (float v : preds.data()) ASSERT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace rptcn::models
