// Serving engine tests: inference/training parity (batched tape-free
// forward bit-identical to the unbatched autograd forward for every
// registry forecaster), InferenceSession contract checks, and
// BatchingEngine behaviour (coalescing, future delivery, failure fan-out,
// drain-on-shutdown, concurrent submitters).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "models/nn_forecasters.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "tensor/buffer_pool.h"

namespace rptcn::serve {
namespace {

/// Same learnable multivariate series as the model tests: smooth AR target
/// plus one noisy-copy auxiliary channel, window 12, horizon 1.
models::ForecastDataset make_dataset(std::size_t length = 420,
                                     std::uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<double> target{0.5};
  for (std::size_t i = 1; i < length; ++i) {
    const double next = 0.5 + 0.85 * (target.back() - 0.5) +
                        0.03 * std::sin(static_cast<double>(i) * 0.2) +
                        rng.normal(0.0, 0.02);
    target.push_back(std::clamp(next, 0.0, 1.0));
  }
  data::TimeSeriesFrame frame;
  std::vector<double> aux(length);
  for (std::size_t i = 0; i < length; ++i)
    aux[i] = target[i] + rng.normal(0.0, 0.05);
  frame.add("cpu", target);
  frame.add("aux", std::move(aux));

  data::WindowOptions wopt;
  wopt.window = 12;
  wopt.horizon = 1;
  const auto all = data::make_windows(frame, "cpu", wopt);
  auto split = data::chrono_split(all);

  models::ForecastDataset ds;
  ds.train = std::move(split.train);
  ds.valid = std::move(split.valid);
  ds.test = std::move(split.test);
  ds.window = wopt.window;
  ds.horizon = wopt.horizon;
  ds.target_channel = 0;
  ds.target_series = target;
  ds.train_len = ds.train.samples() + wopt.window;
  ds.valid_len = ds.valid.samples();
  return ds;
}

/// Tiny configuration: parity needs fitted weights, not accuracy.
models::ModelConfig tiny_config() {
  models::ModelConfig cfg;
  cfg.nn.max_epochs = 2;
  cfg.nn.patience = 2;
  cfg.nn.seed = 9;
  cfg.rptcn.tcn.channels = {6, 6};
  cfg.rptcn.fc_dim = 6;
  cfg.lstm.hidden = 8;
  cfg.cnn_lstm.conv_channels = 4;
  cfg.cnn_lstm.hidden = 8;
  cfg.gbt.n_rounds = 12;
  return cfg;
}

/// The bit-parity reference: the unbatched (N=1) autograd forward in eval
/// mode. Forecaster::predict is NOT usable here — predict_net batches
/// windows at the training batch size, which is exactly the effect this
/// suite must distinguish from.
Tensor reference_forward(models::Forecaster& model, const Tensor& x1) {
  NoGradScope no_grad;
  if (auto* rptcn = dynamic_cast<models::RptcnForecaster*>(&model)) {
    rptcn->net()->set_training(false);
    return rptcn->net()->forward(Variable(x1)).value();
  }
  if (auto* tcn = dynamic_cast<models::TcnForecaster*>(&model)) {
    tcn->net()->set_training(false);
    return tcn->net()->forward(Variable(x1)).value();
  }
  if (auto* lstm = dynamic_cast<models::LstmForecaster*>(&model)) {
    lstm->net()->set_training(false);
    return lstm->net()->forward(Variable(x1)).value();
  }
  if (auto* bilstm = dynamic_cast<models::BiLstmForecaster*>(&model)) {
    bilstm->net()->set_training(false);
    return bilstm->net()->forward(Variable(x1)).value();
  }
  if (auto* cnnlstm = dynamic_cast<models::CnnLstmForecaster*>(&model)) {
    cnnlstm->net()->set_training(false);
    return cnnlstm->net()->forward(Variable(x1)).value();
  }
  // ARIMA / XGBoost predict per sample, so predict() IS the N=1 path.
  return model.predict(x1);
}

void expect_bit_identical(const models::ForecastDataset& ds,
                          models::Forecaster& model,
                          const InferenceSession& session) {
  const std::size_t n = std::min<std::size_t>(6, ds.test.samples());
  const std::size_t f = ds.test.inputs.dim(1);
  const std::size_t t = ds.test.inputs.dim(2);
  Tensor batch({n, f, t});
  std::copy_n(ds.test.inputs.raw(), n * f * t, batch.raw());

  const Tensor out = session.run(batch);
  ASSERT_EQ(out.rank(), 2u);
  ASSERT_EQ(out.dim(0), n);

  for (std::size_t i = 0; i < n; ++i) {
    Tensor one({1, f, t});
    std::copy_n(batch.raw() + i * f * t, f * t, one.raw());
    const Tensor ref = reference_forward(model, one);
    ASSERT_EQ(ref.rank(), 2u);
    ASSERT_EQ(ref.dim(1), out.dim(1));
    for (std::size_t h = 0; h < out.dim(1); ++h)
      EXPECT_EQ(out.at(i, h), ref.at(0, h))
          << model.name() << " window " << i << " step " << h
          << ": batched serving drifted from the autograd forward";
  }
}

class ServeParity : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeParity, BatchedRunBitMatchesUnbatchedForward) {
  const auto ds = make_dataset();
  auto model = models::make_forecaster(GetParam(), tiny_config());
  model->fit(ds);
  InferenceSession session(*model);
  expect_bit_identical(ds, *model, session);
}

TEST_P(ServeParity, HoldsWithBufferPoolDisabled) {
  struct PoolOff {
    PoolOff() { pool::set_enabled(false); }
    ~PoolOff() { pool::set_enabled(true); }
  } guard;
  const auto ds = make_dataset();
  auto model = models::make_forecaster(GetParam(), tiny_config());
  model->fit(ds);
  InferenceSession session(*model);
  expect_bit_identical(ds, *model, session);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServeParity,
                         ::testing::Values("ARIMA", "LSTM", "CNN-LSTM",
                                           "XGBoost", "RPTCN", "TCN",
                                           "BiLSTM"));

TEST(ServeSession, DelegatedSessionCoOwnsItsForecaster) {
  const auto ds = make_dataset();
  std::shared_ptr<models::Forecaster> model =
      models::make_forecaster("ARIMA", tiny_config());
  model->fit(ds);

  Tensor one({1, ds.test.inputs.dim(1), ds.test.inputs.dim(2)});
  std::copy_n(ds.test.inputs.raw(), one.size(), one.raw());

  auto session = std::make_shared<InferenceSession>(model);
  const Tensor before = session->run(one);
  // Dropping the caller's reference must not free the delegate: the session
  // shares ownership, so teardown order can never dangle it.
  model.reset();
  const Tensor after = session->run(one);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t h = 0; h < before.size(); ++h)
    EXPECT_EQ(after.raw()[h], before.raw()[h]);
}

TEST(ServeSession, RequiresFittedNet) {
  auto model = models::make_forecaster("RPTCN", tiny_config());
  EXPECT_THROW(InferenceSession{*model}, CheckError);
}

TEST(ServeSession, ReportsModelMetadata) {
  const auto ds = make_dataset();
  auto model = models::make_forecaster("RPTCN", tiny_config());
  model->fit(ds);
  InferenceSession session(*model);
  EXPECT_EQ(session.model_name(), "RPTCN");
  EXPECT_EQ(session.horizon(), ds.horizon);
  EXPECT_EQ(session.input_features(), 2u);
}

TEST(ServeSession, ValidatesInputShape) {
  nn::RptcnOptions opt;
  opt.input_features = 3;
  opt.horizon = 2;
  opt.tcn.channels = {4, 4};
  opt.fc_dim = 4;
  nn::RptcnNet net(opt);
  InferenceSession session(net);
  EXPECT_THROW(session.run(Tensor({3, 8})), CheckError);       // rank 2
  EXPECT_THROW(session.run(Tensor({1, 5, 8})), CheckError);    // wrong F
  const Tensor out = session.run(Tensor({2, 3, 8}));
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 2u);
}

TEST(ServeSession, ConcurrentRunsAgree) {
  nn::RptcnOptions opt;
  opt.input_features = 2;
  opt.tcn.channels = {4, 4};
  opt.fc_dim = 4;
  opt.seed = 3;
  nn::RptcnNet net(opt);
  InferenceSession session(net);

  Rng rng(21);
  Tensor input({4, 2, 16});
  for (float& v : input.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const Tensor expected = session.run(input);

  std::vector<std::thread> threads;
  std::vector<Tensor> results(8);
  for (std::size_t i = 0; i < results.size(); ++i)
    threads.emplace_back(
        [&, i] { results[i] = session.run(input); });
  for (auto& th : threads) th.join();
  for (const Tensor& r : results)
    for (std::size_t j = 0; j < expected.size(); ++j)
      ASSERT_EQ(r.data()[j], expected.data()[j]);
}

// ---------------------------------------------------------------------------
// BatchingEngine
// ---------------------------------------------------------------------------

nn::RptcnOptions engine_net_options() {
  nn::RptcnOptions opt;
  opt.input_features = 3;
  opt.horizon = 2;
  opt.tcn.channels = {6, 6};
  opt.fc_dim = 6;
  opt.seed = 13;
  return opt;
}

Tensor random_window(Rng& rng, std::size_t f = 3, std::size_t t = 16) {
  Tensor w({f, t});
  for (float& v : w.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return w;
}

/// The engine must deliver exactly the row the session computes for the
/// window alone.
void expect_row_matches(const InferenceSession& session, const Tensor& window,
                        const Tensor& row) {
  Tensor one({1, window.dim(0), window.dim(1)});
  std::copy_n(window.raw(), window.size(), one.raw());
  const Tensor ref = session.run(one);
  ASSERT_EQ(row.rank(), 1u);
  ASSERT_EQ(row.dim(0), ref.dim(1));
  for (std::size_t h = 0; h < row.dim(0); ++h)
    ASSERT_EQ(row.at(h), ref.at(0, h));
}

TEST(ServeEngine, DeliversBitIdenticalRows) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/8, /*max_delay_us=*/2000,
                                  /*workers=*/2});

  Rng rng(5);
  std::vector<Tensor> windows;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    windows.push_back(random_window(rng));
    futures.push_back(engine.submit(windows.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_row_matches(*session, windows[i], futures[i].get());
}

TEST(ServeEngine, CoalescesIntoOneBatchAndCountsIt) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);

  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  const std::uint64_t requests_before =
      obs::metrics().counter("serve/requests").value();
  const std::uint64_t batches_before =
      obs::metrics().counter("serve/batches").value();

  Rng rng(6);
  std::vector<Tensor> windows;
  std::vector<std::future<Tensor>> futures;
  {
    // A huge delay and max_batch == request count: the single worker must
    // assemble exactly one full batch (the size trigger fires long before
    // the deadline). Counters are read after the destructor joins the
    // worker, so they are quiescent.
    BatchingEngine engine(session, {/*max_batch=*/4,
                                    /*max_delay_us=*/2'000'000,
                                    /*workers=*/1});
    for (std::size_t i = 0; i < 4; ++i) {
      windows.push_back(random_window(rng));
      futures.push_back(engine.submit(windows.back()));
    }
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_row_matches(*session, windows[i], futures[i].get());
  }

  EXPECT_EQ(obs::metrics().counter("serve/requests").value() - requests_before,
            4u);
  EXPECT_EQ(obs::metrics().counter("serve/batches").value() - batches_before,
            1u);
  const auto hist =
      obs::metrics().histogram("serve/batch_size").snapshot();
  EXPECT_GE(hist.max, 4.0);
  obs::set_enabled(was_enabled);
}

TEST(ServeEngine, ServesMixedWindowLengths) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/8, /*max_delay_us=*/500,
                                  /*workers=*/1});

  Rng rng(8);
  std::vector<Tensor> windows;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 10; ++i) {
    windows.push_back(random_window(rng, 3, (i % 2 == 0) ? 16 : 24));
    futures.push_back(engine.submit(windows.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_row_matches(*session, windows[i], futures[i].get());
}

TEST(ServeEngine, BatchFailureReachesEveryFuture) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/3, /*max_delay_us=*/2'000'000,
                                  /*workers=*/1});

  // Wrong feature count passes the rank check at submit() and fails inside
  // the batched forward; the failure must fan out to every request of the
  // batch.
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 3; ++i)
    futures.push_back(engine.submit(Tensor({5, 16})));
  for (auto& fut : futures) EXPECT_THROW(fut.get(), CheckError);

  // The engine survives a failed batch and keeps serving. Three good
  // windows fill the next batch so the size trigger fires immediately.
  Rng rng(9);
  std::vector<Tensor> good;
  std::vector<std::future<Tensor>> ok;
  for (std::size_t i = 0; i < 3; ++i) {
    good.push_back(random_window(rng));
    ok.push_back(engine.submit(good.back()));
  }
  for (std::size_t i = 0; i < ok.size(); ++i)
    expect_row_matches(*session, good[i], ok[i].get());
}

TEST(ServeEngine, SubmitValidatesRank) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {});
  EXPECT_THROW(engine.submit(Tensor({1, 3, 16})), CheckError);
  EXPECT_THROW(engine.submit(Tensor({16})), CheckError);
}

TEST(ServeEngine, DestructorDrainsQueuedRequests) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);

  Rng rng(10);
  std::vector<Tensor> windows;
  std::vector<std::future<Tensor>> futures;
  {
    // Long delay: most of these are still queued when the engine is
    // destroyed, and shutdown must drain them, not drop them.
    BatchingEngine engine(session, {/*max_batch=*/2,
                                    /*max_delay_us=*/2'000'000,
                                    /*workers=*/1});
    for (std::size_t i = 0; i < 6; ++i) {
      windows.push_back(random_window(rng));
      futures.push_back(engine.submit(windows.back()));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expect_row_matches(*session, windows[i], futures[i].get());
  }
}

TEST(ServeEngine, StatsTrackSubmissionsBatchesAndGeneration) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);

  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/4, /*max_delay_us=*/500,
                                  /*workers=*/1});
  {
    const EngineStats fresh = engine.stats();
    EXPECT_EQ(fresh.submitted, 0u);
    EXPECT_EQ(fresh.completed, 0u);
    EXPECT_EQ(fresh.generation, 1u);
    EXPECT_EQ(fresh.swaps, 0u);
  }

  Rng rng(11);
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 8; ++i)
    futures.push_back(engine.submit(random_window(rng)));
  engine.flush();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  // Everything delivered: the backpressure gauge is back to zero.
  EXPECT_EQ(obs::metrics().gauge("serve/queue_depth").value(), 0.0);

  auto replacement = std::make_shared<InferenceSession>(net);
  EXPECT_EQ(engine.swap_session(replacement), 2u);
  EXPECT_EQ(engine.generation(), 2u);
  EXPECT_EQ(engine.stats().swaps, 1u);
  EXPECT_EQ(engine.current().generation, 2u);
  EXPECT_EQ(engine.session(), replacement);
  obs::set_enabled(was_enabled);
}

TEST(ServeEngine, FlushWaitsForEverythingSubmittedBefore) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/2, /*max_delay_us=*/500,
                                  /*workers=*/1});

  Rng rng(12);
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 9; ++i)
    futures.push_back(engine.submit(random_window(rng)));
  engine.flush();
  for (auto& fut : futures)
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "flush returned before a prior submission was delivered";
}

TEST(ServeEngine, HotSwapNeverReplaysStalePlans) {
  // Plan-cache invalidation under swap is structural: each session owns its
  // own PlanCache, so a swapped-in session can never replay a plan captured
  // from the old weights. Stress it: two sessions with different weights, a
  // fixed window set whose expected rows under both sessions are known (and
  // whose shapes are already captured in both plan caches), concurrent
  // submitters racing a swapper that alternates the live session. Every
  // delivered row must be bit-identical to one session's expected row — a
  // stale plan mixing old weights into a new generation would match
  // neither. After the final swap + flush, only the final session's rows
  // may appear.
  auto opt_b = engine_net_options();
  opt_b.seed = 14;  // different weights than engine_net_options()
  nn::RptcnNet net_a(engine_net_options());
  nn::RptcnNet net_b(opt_b);
  auto sess_a = std::make_shared<InferenceSession>(net_a);
  auto sess_b = std::make_shared<InferenceSession>(net_b);

  constexpr std::size_t kWindows = 4;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 48;
  Rng rng(77);
  std::vector<Tensor> windows;
  std::vector<Tensor> exp_a;  // [1, horizon] per window, also seeds plans
  std::vector<Tensor> exp_b;
  for (std::size_t i = 0; i < kWindows; ++i) {
    windows.push_back(random_window(rng));
    Tensor one({1, windows[i].dim(0), windows[i].dim(1)});
    std::copy_n(windows[i].raw(), windows[i].size(), one.raw());
    exp_a.push_back(sess_a->run(one));
    exp_b.push_back(sess_b->run(one));
  }
  const auto row_matches = [](const Tensor& row, const Tensor& expected) {
    for (std::size_t h = 0; h < row.dim(0); ++h)
      if (row.at(h) != expected.at(0, h)) return false;
    return true;
  };

  BatchingEngine engine(sess_a, {/*max_batch=*/8, /*max_delay_us=*/200,
                                 /*workers=*/2});
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop.load()) {
      engine.swap_session(use_b ? sess_b : sess_a);
      use_b = !use_b;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<std::vector<std::size_t>> indices(kThreads);
  std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kThreads; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t w = (c + i) % kWindows;
        indices[c].push_back(w);
        futures[c].push_back(engine.submit(windows[w]));
      }
    });
  for (auto& th : clients) th.join();
  stop.store(true);
  swapper.join();
  engine.flush();

  for (std::size_t c = 0; c < kThreads; ++c)
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const Tensor row = futures[c][i].get();
      const std::size_t w = indices[c][i];
      EXPECT_TRUE(row_matches(row, exp_a[w]) || row_matches(row, exp_b[w]))
          << "row matches neither generation's weights — stale plan?";
    }

  // Fence: after swap + flush, later submissions see only the new session.
  engine.swap_session(sess_b);
  engine.flush();
  for (std::size_t w = 0; w < kWindows; ++w) {
    const Tensor row = engine.submit(windows[w]).get();
    EXPECT_TRUE(row_matches(row, exp_b[w]))
        << "post-swap row did not come from the swapped-in session";
  }
}

TEST(ServeEngine, ConcurrentSubmittersAllGetTheirOwnRow) {
  nn::RptcnNet net(engine_net_options());
  auto session = std::make_shared<InferenceSession>(net);
  BatchingEngine engine(session, {/*max_batch=*/16, /*max_delay_us=*/200,
                                  /*workers=*/2});

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 8;
  std::vector<std::thread> clients;
  std::vector<std::vector<Tensor>> windows(kThreads);
  std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
  for (std::size_t c = 0; c < kThreads; ++c)
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        windows[c].push_back(random_window(rng));
        futures[c].push_back(engine.submit(windows[c].back()));
      }
    });
  for (auto& th : clients) th.join();
  for (std::size_t c = 0; c < kThreads; ++c)
    for (std::size_t i = 0; i < kPerThread; ++i)
      expect_row_matches(*session, windows[c][i], futures[c][i].get());
}

}  // namespace
}  // namespace rptcn::serve
