// Scheduling-layer tests: bin-packer invariants (capacity, single
// placement, determinism, sticky migration counting), autoscaler policy
// arithmetic, replay scoring against a hand-computed mini-trace, the
// closed-loop SchedulerLoop's determinism and infeasibility pricing, and
// fleet integration bit-consistency (the forecast the fleet exposes equals
// an independently mirrored bootstrap-fit + serve of the same history).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "fleet/manager.h"
#include "fleet/options.h"
#include "sched/autoscaler.h"
#include "sched/cluster.h"
#include "sched/fleet_source.h"
#include "sched/forecast.h"
#include "sched/loop.h"
#include "sched/replay.h"
#include "stream/channel.h"
#include "stream/retrain.h"
#include "stream/source.h"
#include "trace/workload_model.h"

namespace rptcn::sched {
namespace {

const std::vector<std::string> kFeatures = {"cpu_util_percent",
                                            "mem_util_percent"};

trace::WorkloadParams regime_a() {
  trace::WorkloadParams p;
  p.base_level = 0.25;
  p.diurnal_amplitude = 0.10;
  p.noise_sigma = 0.03;
  p.ar_coefficient = 0.85;
  p.mutation_rate = 0.0;
  p.burst_rate = 0.0;
  return p;
}

trace::WorkloadParams regime_b() {
  trace::WorkloadParams p = regime_a();
  p.base_level = 0.55;
  p.diurnal_amplitude = 0.05;
  p.noise_sigma = 0.05;
  p.ar_coefficient = 0.65;
  return p;
}

data::TimeSeriesFrame regime_trace(const trace::WorkloadParams& params,
                                   std::size_t length, std::uint64_t seed) {
  return stream::make_mutating_trace(params, params, length, 0, seed).frame;
}

Allocation alloc(const std::string& entity, double cpu, double mem) {
  Allocation a;
  a.entity = entity;
  a.cpu = cpu;
  a.mem = mem;
  return a;
}

// ---------------------------------------------------------------------------
// ClusterModel / bin packer
// ---------------------------------------------------------------------------

TEST(SchedPacker, FirstFitDecreasingPlacesByDescendingCpu) {
  ClusterModel cluster({{1.0, 1.0}, {1.0, 1.0}});
  const std::vector<Allocation> round = {alloc("c", 0.3, 0.1),
                                         alloc("a", 0.6, 0.1),
                                         alloc("b", 0.5, 0.1)};
  const PackResult r = cluster.pack(round);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.machines_used, 2u);
  // FFD order a(0.6) -> m0, b(0.5) -> m1, c(0.3) first-fits back onto m0.
  EXPECT_EQ(cluster.placement_of("a"), 0u);
  EXPECT_EQ(cluster.placement_of("b"), 1u);
  EXPECT_EQ(cluster.placement_of("c"), 0u);
  EXPECT_DOUBLE_EQ(cluster.cpu_used(0), 0.9);
  EXPECT_DOUBLE_EQ(cluster.cpu_used(1), 0.5);
}

TEST(SchedPacker, InvariantsHoldUnderRandomisedRounds) {
  const std::vector<MachineSpec> machines = {
      {1.0, 1.0}, {1.0, 1.0}, {0.5, 0.75}, {2.0, 2.0}};
  ClusterModel cluster(machines);
  ClusterModel twin(machines);

  std::uint64_t s = 123456789;
  const auto next = [&s] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(s >> 33) /
           static_cast<double>(1ULL << 31);
  };

  for (int round = 0; round < 25; ++round) {
    std::vector<Allocation> allocations;
    for (int e = 0; e < 12; ++e)
      allocations.push_back(alloc("e" + std::to_string(e), next() * 0.8,
                                  next() * 0.8));
    const PackResult r = cluster.pack(allocations);
    const PackResult rt = twin.pack(allocations);

    // No machine past capacity.
    for (std::size_t m = 0; m < machines.size(); ++m) {
      EXPECT_LE(cluster.cpu_used(m), machines[m].cpu + 1e-9);
      EXPECT_LE(cluster.mem_used(m), machines[m].mem + 1e-9);
    }
    // Every entity is either placed on exactly one machine or reported
    // unplaced — never both, never neither.
    const std::set<std::string> unplaced(r.unplaced.begin(),
                                         r.unplaced.end());
    double placed_cpu = 0.0;
    for (const Allocation& a : allocations) {
      const bool placed = cluster.placement_of(a.entity) !=
                          ClusterModel::kUnplaced;
      EXPECT_NE(placed, unplaced.count(a.entity) == 1) << a.entity;
      if (placed) placed_cpu += a.cpu;
    }
    EXPECT_EQ(r.feasible, r.unplaced.empty());
    // Machine loads account for exactly the placed requests.
    double used_cpu = 0.0;
    for (std::size_t m = 0; m < machines.size(); ++m)
      used_cpu += cluster.cpu_used(m);
    EXPECT_NEAR(used_cpu, placed_cpu, 1e-9);

    // Determinism: an identical twin fed the same rounds agrees exactly.
    EXPECT_EQ(r.feasible, rt.feasible);
    EXPECT_EQ(r.migrations, rt.migrations);
    EXPECT_EQ(r.unplaced, rt.unplaced);
    for (const Allocation& a : allocations)
      EXPECT_EQ(cluster.placement_of(a.entity), twin.placement_of(a.entity));
  }
}

TEST(SchedPacker, RepackingIdenticalRequestsIsStickyWithZeroMigrations) {
  ClusterModel cluster({{1.0, 1.0}, {1.0, 1.0}});
  const std::vector<Allocation> round = {alloc("a", 0.6, 0.2),
                                         alloc("b", 0.5, 0.2),
                                         alloc("c", 0.3, 0.2)};
  cluster.pack(round);
  const std::size_t a0 = cluster.placement_of("a");
  const std::size_t b0 = cluster.placement_of("b");
  const std::size_t c0 = cluster.placement_of("c");
  const PackResult again = cluster.pack(round);
  EXPECT_EQ(again.migrations, 0u);
  EXPECT_EQ(cluster.placement_of("a"), a0);
  EXPECT_EQ(cluster.placement_of("b"), b0);
  EXPECT_EQ(cluster.placement_of("c"), c0);
}

TEST(SchedPacker, GrowthEvictsToAnotherMachineAndCountsTheMigration) {
  ClusterModel cluster({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  cluster.pack({alloc("a", 0.6, 0.1), alloc("b", 0.5, 0.1),
                alloc("c", 0.45, 0.1)});
  // a -> m0, b -> m1, c -> m1 (0.45 fits beside 0.5).
  ASSERT_EQ(cluster.placement_of("c"), 1u);
  // b grows: sticky m1 still fits b (packed first), but c no longer fits
  // beside it and must migrate to m2 (m0 holds 0.6).
  const PackResult r = cluster.pack({alloc("a", 0.6, 0.1),
                                     alloc("b", 0.7, 0.1),
                                     alloc("c", 0.45, 0.1)});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(cluster.placement_of("b"), 1u);
  EXPECT_EQ(cluster.placement_of("c"), 2u);
  EXPECT_EQ(r.migrations, 1u);
}

TEST(SchedPacker, OverflowIsReportedUnplacedNotOverPacked) {
  ClusterModel cluster({{1.0, 1.0}});
  const PackResult r = cluster.pack({alloc("a", 0.7, 0.1),
                                     alloc("b", 0.6, 0.1)});
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.unplaced.size(), 1u);
  EXPECT_EQ(r.unplaced[0], "b");
  EXPECT_EQ(cluster.placement_of("b"), ClusterModel::kUnplaced);
  EXPECT_LE(cluster.cpu_used(0), 1.0 + 1e-9);
}

// ---------------------------------------------------------------------------
// Autoscaler
// ---------------------------------------------------------------------------

TEST(SchedAutoscaler, HeadroomFloorsCapsAndDeadband) {
  AutoscalerOptions o;
  o.headroom = 1.2;
  o.cpu_floor = 0.05;
  o.mem_floor = 0.05;
  o.down_deadband = 0.1;
  Autoscaler scaler(o);

  ResourceForecast d;
  d.cpu = 0.5;
  d.mem = 0.25;
  Allocation a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 0.6);
  EXPECT_DOUBLE_EQ(a.mem, 0.3);
  EXPECT_EQ(scaler.scale_events(), 0u) << "first allocation is not churn";

  // Scale-up applies immediately.
  d.cpu = 0.58;
  a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 0.58 * 1.2);
  EXPECT_EQ(scaler.scale_events(), 1u);

  // A shrink inside the dead-band keeps the current allocation.
  d.cpu = 0.55;
  a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 0.58 * 1.2);
  EXPECT_EQ(scaler.scale_events(), 1u);

  // A shrink past the dead-band lands exactly on target.
  d.cpu = 0.4;
  a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 0.48);
  EXPECT_EQ(scaler.scale_events(), 2u);

  // Floors bound the shrink, caps bound the growth.
  d.cpu = 0.01;
  d.mem = 0.01;
  a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 0.05);
  EXPECT_DOUBLE_EQ(a.mem, 0.05);
  d.cpu = 2.0;
  d.mem = 2.0;
  a = scaler.decide("e", d);
  EXPECT_DOUBLE_EQ(a.cpu, 1.0);
  EXPECT_DOUBLE_EQ(a.mem, 1.0);
}

TEST(SchedAutoscaler, OptionsValidateNamedFields) {
  AutoscalerOptions o;
  o.headroom = 0.5;
  EXPECT_THROW(o.validate(), CheckError);
  o = AutoscalerOptions{};
  o.down_deadband = 1.0;
  EXPECT_THROW(o.validate(), CheckError);
  o = AutoscalerOptions{};
  o.cpu_cap = 0.01;
  EXPECT_THROW(o.validate(), CheckError);
}

// ---------------------------------------------------------------------------
// ReplayEvaluator
// ---------------------------------------------------------------------------

TEST(SchedReplay, ScoringMatchesHandComputedMiniTrace) {
  CostModel cost;
  cost.over_unit_cost = 1.0;
  cost.under_unit_cost = 8.0;
  cost.violation_cost = 0.05;
  cost.migration_cost = 0.5;
  cost.scale_event_cost = 0.1;
  ReplayEvaluator eval(cost);

  ResourceForecast d0;
  d0.cpu = 0.5;
  d0.mem = 0.3;
  EXPECT_FALSE(eval.observe(0, d0, alloc("e", 0.6, 0.4)));
  ResourceForecast d1;
  d1.cpu = 0.7;
  d1.mem = 0.3;
  EXPECT_TRUE(eval.observe(1, d1, alloc("e", 0.6, 0.4)));
  eval.record_scale_events(0, 3);
  eval.record_migrations(1, 2);

  const ReplayScore s = eval.score();
  EXPECT_EQ(s.entity_ticks, 2u);
  EXPECT_EQ(s.violations, 1u);
  EXPECT_DOUBLE_EQ(s.violation_rate, 0.5);
  // tick 0: over = (0.6-0.5) + (0.4-0.3) = 0.2; tick 1: over mem 0.1,
  // under cpu 0.1.
  EXPECT_NEAR(s.over_integral, 0.3, 1e-12);
  EXPECT_NEAR(s.under_integral, 0.1, 1e-12);
  EXPECT_EQ(s.migrations, 2u);
  EXPECT_EQ(s.scale_events, 3u);
  EXPECT_NEAR(s.over_cost, 0.3, 1e-12);
  EXPECT_NEAR(s.under_cost, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(s.violation_cost, 0.05);
  EXPECT_DOUBLE_EQ(s.migration_cost, 1.0);
  EXPECT_NEAR(s.scale_cost, 0.3, 1e-12);
  EXPECT_NEAR(s.total_cost, 0.3 + 0.8 + 0.05 + 1.0 + 0.3, 1e-12);

  // Windowed scoring isolates tick 1.
  const ReplayScore w = eval.score_window(1, 2);
  EXPECT_EQ(w.entity_ticks, 1u);
  EXPECT_EQ(w.violations, 1u);
  EXPECT_EQ(w.scale_events, 0u);
  EXPECT_EQ(w.migrations, 2u);
  EXPECT_NEAR(w.total_cost, 0.1 + 0.8 + 0.05 + 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Forecast sources
// ---------------------------------------------------------------------------

TEST(SchedForecast, NaiveSourcesReadTheTraceTail) {
  const data::TimeSeriesFrame frame = regime_trace(regime_a(), 64, 3);
  const auto& cpu = frame.column("cpu_util_percent");
  const auto& mem = frame.column("mem_util_percent");

  LastValueSource last;
  const ResourceForecast lf = last.forecast(frame);
  EXPECT_DOUBLE_EQ(lf.cpu, cpu.back());
  EXPECT_DOUBLE_EQ(lf.mem, mem.back());

  MaxWindowSource max8(8);
  const ResourceForecast mf = max8.forecast(frame);
  EXPECT_DOUBLE_EQ(mf.cpu, *std::max_element(cpu.end() - 8, cpu.end()));
  EXPECT_DOUBLE_EQ(mf.mem, mem.back());
  EXPECT_GE(mf.cpu, lf.cpu);
}

TEST(SchedForecast, SessionSourceIsDeterministicAndRefitsGenerations) {
  SessionSourceOptions o;
  o.retrain.model_name = "ARIMA";
  o.retrain.history = 200;
  o.retrain.window.window = 16;
  o.retrain.window.horizon = 1;
  o.retrain.min_ticks_between = 0;
  const data::TimeSeriesFrame bootstrap = regime_trace(regime_a(), 240, 17);

  SessionSource a("arima", bootstrap, o);
  SessionSource b("arima", bootstrap, o);
  EXPECT_EQ(a.generation(), 1u);
  const ResourceForecast fa = a.forecast(bootstrap);
  const ResourceForecast fb = b.forecast(bootstrap);
  EXPECT_TRUE(std::isfinite(fa.cpu));
  EXPECT_EQ(fa.cpu, fb.cpu) << "same fit recipe, same history -> same bits";
  EXPECT_DOUBLE_EQ(fa.mem, bootstrap.column("mem_util_percent").back());

  a.refit(regime_trace(regime_b(), 240, 19));
  EXPECT_EQ(a.generation(), 2u);
}

// ---------------------------------------------------------------------------
// SchedulerLoop
// ---------------------------------------------------------------------------

std::vector<EntityTrace> storm_traces(std::size_t entities,
                                      std::size_t pre, std::size_t post,
                                      std::uint64_t seed) {
  std::vector<EntityTrace> traces;
  for (std::size_t i = 0; i < entities; ++i) {
    EntityTrace t;
    t.id = "svc-" + std::to_string(i);
    t.frame = stream::make_mutating_trace(regime_a(), regime_b(), pre, post,
                                          seed + i)
                  .frame;
    traces.push_back(std::move(t));
  }
  return traces;
}

LoopOptions small_loop_options() {
  LoopOptions o;
  o.machines = {{1.0, 1.0}, {1.0, 1.0}};
  o.bootstrap_ticks = 64;
  o.decision_interval = 4;
  o.refit_history = 256;
  o.tenant = "sched-test";
  return o;
}

TEST(SchedLoop, ClosedLoopIsDeterministic) {
  const auto run_once = [] {
    SchedulerLoop loop(storm_traces(3, 160, 80, 5), small_loop_options());
    std::vector<std::shared_ptr<ForecastSource>> sources;
    for (int i = 0; i < 3; ++i)
      sources.push_back(std::make_shared<LastValueSource>());
    return loop.run(sources);
  };
  const LoopResult r1 = run_once();
  const LoopResult r2 = run_once();

  EXPECT_GT(r1.decisions, 0u);
  EXPECT_EQ(r1.scored_ticks, 240u - 64u);
  EXPECT_EQ(r1.score.entity_ticks, 3u * (240u - 64u));
  EXPECT_EQ(r1.decisions, r2.decisions);
  EXPECT_EQ(r1.score.violations, r2.score.violations);
  EXPECT_EQ(r1.score.migrations, r2.score.migrations);
  EXPECT_EQ(r1.score.scale_events, r2.score.scale_events);
  EXPECT_EQ(r1.score.total_cost, r2.score.total_cost)
      << "bit-identical replay scores";

  // The full-range window equals the headline score.
  const ReplayScore w = r1.evaluator.score_window(0, 240);
  EXPECT_EQ(w.total_cost, r1.score.total_cost);
}

TEST(SchedLoop, UnplaceableEntitiesArePricedAsUnderProvisioned) {
  LoopOptions o = small_loop_options();
  // One sliver of a machine: regime-a demand (~25% cpu) cannot fit once
  // headroom applies, so every round reports infeasible and the unplaced
  // entities score as starved.
  o.machines = {{0.05, 0.05}};
  SchedulerLoop loop(storm_traces(2, 120, 0, 9), o);
  std::vector<std::shared_ptr<ForecastSource>> sources;
  for (int i = 0; i < 2; ++i)
    sources.push_back(std::make_shared<LastValueSource>());
  const LoopResult r = loop.run(sources);

  EXPECT_EQ(r.infeasible_packs, r.decisions);
  EXPECT_GT(r.score.under_integral, 0.0);
  EXPECT_GT(r.score.violation_rate, 0.9);
}

TEST(SchedLoop, HigherHeadroomTradesCostForViolations) {
  const auto run_with_headroom = [](double headroom) {
    LoopOptions o = small_loop_options();
    o.autoscaler.headroom = headroom;
    SchedulerLoop loop(storm_traces(3, 160, 80, 5), o);
    std::vector<std::shared_ptr<ForecastSource>> sources;
    for (int i = 0; i < 3; ++i)
      sources.push_back(std::make_shared<LastValueSource>());
    return loop.run(sources);
  };
  const LoopResult tight = run_with_headroom(1.0);
  const LoopResult slack = run_with_headroom(1.5);
  // More headroom -> fewer violations, more idle capacity: the two ends of
  // the cost/SLA frontier the bench sweeps.
  EXPECT_LT(slack.score.violation_rate, tight.score.violation_rate);
  EXPECT_GT(slack.score.over_integral, tight.score.over_integral);
}

// ---------------------------------------------------------------------------
// Fleet integration
// ---------------------------------------------------------------------------

void ingest_blocking(fleet::FleetManager& fleet, const std::string& id,
                     const data::TimeSeriesFrame& frame, std::size_t from,
                     std::size_t to) {
  const auto& cpu = frame.column("cpu_util_percent");
  const auto& mem = frame.column("mem_util_percent");
  for (std::size_t t = from; t < to; ++t) {
    for (;;) {
      const fleet::Admission verdict = fleet.ingest(id, {cpu[t], mem[t]});
      if (verdict == fleet::Admission::kAccepted) break;
      ASSERT_TRUE(verdict == fleet::Admission::kQueueFull ||
                  verdict == fleet::Admission::kBacklogFull)
          << fleet::admission_name(verdict);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

TEST(SchedFleetIntegration, FleetForecastMatchesMirroredServeBitExactly) {
  fleet::FleetOptions o;
  o.features = kFeatures;
  o.shards = 1;
  o.workers = 1;
  o.retrain.model_name = "ARIMA";
  o.retrain.history = 200;
  o.retrain.window.window = 16;
  o.retrain.window.horizon = 1;
  o.retrain.min_ticks_between = 0;
  o.retrain_on_drift = false;
  o.tenant = "sched-fleet-bit";

  const data::TimeSeriesFrame bootstrap = regime_trace(regime_a(), 240, 11);
  const data::TimeSeriesFrame live = regime_trace(regime_b(), 40, 13);

  fleet::FleetManager manager(o);
  fleet::EntitySpec spec;
  spec.id = "svc-0";
  spec.cohort = "web";
  spec.model.name = "ARIMA";
  manager.add_entity(spec);
  const stream::RetrainOutcome boot =
      manager.bootstrap_cohort("web", bootstrap);
  ASSERT_TRUE(boot.error.empty()) << boot.error;
  ingest_blocking(manager, "svc-0", live, 0, live.length());
  manager.drain();

  const fleet::EntityStats stats = manager.entity_stats("svc-0");
  ASSERT_TRUE(stats.has_forecast);

  // Mirror the fleet's bootstrap fit: scratch channel replay, trailing
  // span, fit_generation_gated under the same options — bit-identical by
  // the retrain layer's determinism guarantee.
  stream::IngestChannel scratch(kFeatures, o.channel);
  std::vector<double> row(kFeatures.size());
  const auto replay = [&row](stream::IngestChannel& ch,
                             const data::TimeSeriesFrame& frame) {
    const auto& cpu = frame.column("cpu_util_percent");
    const auto& mem = frame.column("mem_util_percent");
    for (std::size_t t = 0; t < frame.length(); ++t) {
      row[0] = cpu[t];
      row[1] = mem[t];
      ch.ingest(row);
    }
  };
  replay(scratch, bootstrap);
  const std::size_t retained =
      std::min(scratch.ticks(), o.channel.capacity);
  const std::size_t span = std::min(o.retrain.history, retained);
  stream::RetrainOptions ro = o.retrain;
  ro.model_name = spec.model.name;
  ro.model = spec.model.config;
  ro.tenant = o.tenant;
  const stream::FittedGeneration g = stream::fit_generation_gated(
      scratch.history(span), scratch.normalizer(), ro, 1, "bootstrap:web");
  ASSERT_NE(g.session, nullptr) << g.outcome.error;

  // Mirror the entity's channel: bootstrap seed + live rows, then serve
  // the trailing window exactly as FleetManager::process_tick does.
  stream::IngestChannel mirror(kFeatures, o.channel);
  replay(mirror, bootstrap);
  if (o.freeze_normalizer_at_bootstrap) mirror.freeze_normalizer();
  replay(mirror, live);
  const Tensor window = mirror.latest_window(o.retrain.window.window);
  Tensor batched({1, window.dim(0), window.dim(1)});
  std::copy(window.raw(), window.raw() + window.size(), batched.raw());
  const Tensor out = g.session->run(batched);
  const double expected_norm = static_cast<double>(out.raw()[0]);

  EXPECT_EQ(stats.last_forecast_norm, expected_norm)
      << "fleet forecast must be bit-identical to the mirrored serve";
  EXPECT_EQ(stats.last_forecast_raw,
            mirror.normalizer().denormalize(0, expected_norm));

  // The bulk read and the adapter expose the same bits.
  const std::vector<fleet::EntityForecast> all = manager.latest_forecasts();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].entity, "svc-0");
  EXPECT_EQ(all[0].predicted_norm, expected_norm);
  EXPECT_EQ(all[0].predicted_raw, stats.last_forecast_raw);

  FleetForecastSource source(manager, "svc-0");
  const ResourceForecast f = source.forecast(live);
  EXPECT_EQ(f.cpu, stats.last_forecast_raw);
  EXPECT_DOUBLE_EQ(f.mem, live.column("mem_util_percent").back());
}

TEST(SchedFleetIntegration, AdapterRejectsUnknownEntityAndEmptyForecast) {
  fleet::FleetOptions o;
  o.features = kFeatures;
  o.shards = 1;
  o.workers = 1;
  o.retrain.model_name = "ARIMA";
  o.tenant = "sched-fleet-err";
  fleet::FleetManager manager(o);
  fleet::EntitySpec spec;
  spec.id = "svc-0";
  spec.model.name = "ARIMA";
  manager.add_entity(spec);

  EXPECT_THROW(FleetForecastSource(manager, "nope"), CheckError);
  FleetForecastSource source(manager, "svc-0");
  const data::TimeSeriesFrame history = regime_trace(regime_a(), 8, 3);
  EXPECT_THROW(source.forecast(history), CheckError)
      << "no forecast delivered yet";
}

}  // namespace
}  // namespace rptcn::sched
