#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/correlation.h"

namespace rptcn::data {
namespace {

/// Frame with engineered correlation strengths against "cpu".
TimeSeriesFrame correlated_frame(std::size_t n = 400) {
  Rng rng(77);
  std::vector<double> cpu(n), strong(n), medium(n), weak(n), noise(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpu[i] = rng.normal();
    strong[i] = 0.95 * cpu[i] + 0.05 * rng.normal();
    medium[i] = 0.6 * cpu[i] + 0.4 * rng.normal();
    weak[i] = 0.2 * cpu[i] + 0.8 * rng.normal();
    noise[i] = rng.normal();
  }
  TimeSeriesFrame f;
  f.add("noise", std::move(noise));
  f.add("weak", std::move(weak));
  f.add("cpu", std::move(cpu));
  f.add("strong", std::move(strong));
  f.add("medium", std::move(medium));
  return f;
}

TEST(Correlation, MatrixIsSymmetricWithUnitDiagonal) {
  const auto f = correlated_frame();
  const auto m = correlation_matrix(f);
  ASSERT_EQ(m.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(m[i][i], 1.0, 1e-12);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(m[i][j], m[j][i], 1e-12);
      EXPECT_LE(std::fabs(m[i][j]), 1.0 + 1e-12);
    }
  }
}

TEST(Correlation, RankingOrdersByAbsoluteCorrelation) {
  const auto ranked = rank_by_correlation(correlated_frame(), "cpu");
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0].name, "cpu");
  EXPECT_DOUBLE_EQ(ranked[0].correlation, 1.0);
  EXPECT_EQ(ranked[1].name, "strong");
  EXPECT_EQ(ranked[2].name, "medium");
  EXPECT_EQ(ranked[3].name, "weak");
  EXPECT_EQ(ranked[4].name, "noise");
}

TEST(Correlation, NegativeCorrelationRanksByMagnitude) {
  Rng rng(5);
  std::vector<double> cpu(300), anti(300), mild(300);
  for (std::size_t i = 0; i < 300; ++i) {
    cpu[i] = rng.normal();
    anti[i] = -0.9 * cpu[i] + 0.1 * rng.normal();
    mild[i] = 0.3 * cpu[i] + 0.7 * rng.normal();
  }
  TimeSeriesFrame f;
  f.add("cpu", std::move(cpu));
  f.add("anti", std::move(anti));
  f.add("mild", std::move(mild));
  const auto ranked = rank_by_correlation(f, "cpu");
  EXPECT_EQ(ranked[1].name, "anti");  // |−0.9| beats |0.3|
  EXPECT_LT(ranked[1].correlation, 0.0);
}

TEST(Correlation, SelectTopHalfPutsTargetFirst) {
  // 5 indicators -> top half = ceil(5/2) = 3 kept.
  const auto kept = select_top_half(correlated_frame(), "cpu");
  ASSERT_EQ(kept.indicators(), 3u);
  EXPECT_EQ(kept.name(0), "cpu");
  EXPECT_EQ(kept.name(1), "strong");
  EXPECT_EQ(kept.name(2), "medium");
}

TEST(Correlation, SelectTopCorrelatedClampsCount) {
  const auto all = select_top_correlated(correlated_frame(), "cpu", 99);
  EXPECT_EQ(all.indicators(), 5u);
  const auto one = select_top_correlated(correlated_frame(), "cpu", 1);
  EXPECT_EQ(one.indicators(), 1u);
  EXPECT_EQ(one.name(0), "cpu");
  EXPECT_THROW(select_top_correlated(correlated_frame(), "cpu", 0), CheckError);
}

TEST(Correlation, UnknownTargetThrows) {
  EXPECT_THROW(rank_by_correlation(correlated_frame(), "gpu"), CheckError);
}

TEST(Correlation, ConstantColumnGetsZeroCorrelation) {
  TimeSeriesFrame f;
  f.add("cpu", {1.0, 2.0, 3.0});
  f.add("flat", {5.0, 5.0, 5.0});
  const auto ranked = rank_by_correlation(f, "cpu");
  EXPECT_DOUBLE_EQ(ranked[1].correlation, 0.0);
}

}  // namespace
}  // namespace rptcn::data
