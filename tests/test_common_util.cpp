#include <gtest/gtest.h>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table.h"

namespace rptcn {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("NaN"), "nan");
  EXPECT_EQ(to_lower("abc123"), "abc123");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("cpu_util", "cpu"));
  EXPECT_FALSE(starts_with("cpu", "cpu_util"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 4), "-0.5000");
}

TEST(Check, ThrowsWithMessage) {
  try {
    RPTCN_CHECK(false, "reason " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reason 42"), std::string::npos);
    EXPECT_NE(what.find("check failed"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  RPTCN_CHECK(1 + 1 == 2);
  RPTCN_CHECK(true, "never shown");
}

TEST(Logging, LevelFiltering) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  RPTCN_INFO("suppressed");  // must not crash
  set_log_level(old_level);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  EXPECT_GE(w.elapsed_seconds(), 0.0);
  w.reset();
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t({"model", "mse"});
  t.add_row({"RPTCN", "0.29"});
  t.add_row({"LSTM", "0.31"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("RPTCN"), std::string::npos);
  EXPECT_NE(s.find("| model"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(AsciiTable, TitleAndSeparators) {
  AsciiTable t({"a"});
  t.set_title("Table II");
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("Table II"), 0u);
  EXPECT_EQ(t.rows(), 3u);
}

TEST(AsciiTable, RejectsWrongWidth) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), CheckError);
}

}  // namespace
}  // namespace rptcn
