// Property tests of the trace simulator across configurations: every
// generated trace must satisfy the physical-range, determinism and
// correlation-structure invariants, not just the default config.
#include <gtest/gtest.h>

#include <cmath>

#include "data/correlation.h"
#include "trace/characterize.h"
#include "trace/cluster.h"

namespace rptcn::trace {
namespace {

struct TraceCase {
  std::size_t machines;
  std::size_t steps;
  std::uint64_t seed;
};

class TraceSweep : public ::testing::TestWithParam<TraceCase> {
 protected:
  static ClusterSimulator make(const TraceCase& c) {
    TraceConfig cfg;
    cfg.num_machines = c.machines;
    cfg.duration_steps = c.steps;
    cfg.seed = c.seed;
    return ClusterSimulator(cfg);
  }
};

TEST_P(TraceSweep, AllIndicatorsInPhysicalRanges) {
  auto sim = make(GetParam());
  sim.run();
  for (std::size_t e = 0; e < sim.num_containers(); ++e) {
    const auto& frame = sim.container_trace(e);
    for (const char* pct :
         {"cpu_util_percent", "mem_util_percent", "disk_io_percent"}) {
      for (const double v : frame.column(pct)) {
        ASSERT_GE(v, 0.0) << pct;
        ASSERT_LE(v, 100.0) << pct;
      }
    }
    for (const char* unit : {"mem_gps", "net_in", "net_out"}) {
      for (const double v : frame.column(unit)) {
        ASSERT_GE(v, 0.0) << unit;
        ASSERT_LE(v, 1.0) << unit;
      }
    }
    for (const double v : frame.column("cpi")) ASSERT_GT(v, 0.0);
    for (const double v : frame.column("mpki")) ASSERT_GE(v, 0.0);
  }
}

TEST_P(TraceSweep, MachineSeriesWithinBounds) {
  auto sim = make(GetParam());
  sim.run();
  for (std::size_t m = 0; m < sim.num_machines(); ++m) {
    const auto& cpu = sim.machine_trace(m).column("cpu_util_percent");
    for (const double v : cpu) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 100.0);
    }
    // A machine hosting live containers is never pinned at zero throughout.
    ASSERT_GT(max_value(cpu), 1.0);
  }
}

TEST_P(TraceSweep, DeterministicForSameSeed) {
  auto a = make(GetParam());
  auto b = make(GetParam());
  a.run();
  b.run();
  const auto& ca = a.container_trace(0).column("cpu_util_percent");
  const auto& cb = b.container_trace(0).column("cpu_util_percent");
  for (std::size_t t = 0; t < ca.size(); ++t) ASSERT_DOUBLE_EQ(ca[t], cb[t]);
}

TEST_P(TraceSweep, MemorySystemIndicatorsTrackCpu) {
  auto sim = make(GetParam());
  sim.run();
  // The Fig.-7 structure must hold in aggregate across configs: mpki is
  // always strongly positively correlated with CPU.
  std::size_t strong = 0;
  for (std::size_t e = 0; e < sim.num_containers(); ++e) {
    const auto& frame = sim.container_trace(e);
    if (pearson(frame.column("cpu_util_percent"), frame.column("mpki")) > 0.5)
      ++strong;
  }
  // Short/churny configs can have a few weakly coupled containers; require
  // a clear two-thirds majority.
  EXPECT_GE(strong * 3, sim.num_containers() * 2);
}

TEST_P(TraceSweep, CsvRoundTripPreservesTrace) {
  auto sim = make(GetParam());
  sim.run();
  const auto& frame = sim.container_trace(0);
  const auto back = data::TimeSeriesFrame::from_csv(frame.to_csv());
  ASSERT_EQ(back.indicators(), frame.indicators());
  ASSERT_EQ(back.length(), frame.length());
  // Spot-check numeric identity (CSV conversion is in-memory, no rounding).
  EXPECT_DOUBLE_EQ(back.column("cpi")[5], frame.column("cpi")[5]);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TraceSweep,
    ::testing::Values(TraceCase{1, 300, 1}, TraceCase{4, 500, 2018},
                      TraceCase{8, 800, 7}, TraceCase{2, 2000, 999}));

TEST(TraceChurn, ContainersShowIdleEpisodesInLongRuns) {
  TraceConfig cfg;
  cfg.num_machines = 8;
  cfg.duration_steps = 4000;
  cfg.seed = 11;
  ClusterSimulator sim(cfg);
  sim.run();
  // With departure rate 8e-4 over 4000 steps, several containers should
  // spend some time descheduled (CPU < 3%).
  std::size_t with_idle = 0;
  for (std::size_t e = 0; e < sim.num_containers(); ++e) {
    const auto& cpu = sim.container_trace(e).column("cpu_util_percent");
    std::size_t idle_steps = 0;
    for (const double v : cpu)
      if (v < 3.0) ++idle_steps;
    if (idle_steps > 50) ++with_idle;
  }
  EXPECT_GE(with_idle, 3u);
}

TEST(TraceDrift, LateSeriesVisitsNewLevels) {
  // Non-stationarity: across the cluster, late-window means should differ
  // from early-window means by a visible margin for a fair share of
  // containers.
  TraceConfig cfg;
  cfg.num_machines = 8;
  cfg.duration_steps = 3000;
  cfg.seed = 5;
  ClusterSimulator sim(cfg);
  sim.run();
  std::size_t drifted = 0;
  for (std::size_t e = 0; e < sim.num_containers(); ++e) {
    const auto& cpu = sim.container_trace(e).column("cpu_util_percent");
    const std::span<const double> early(cpu.data(), 600);
    const std::span<const double> late(cpu.data() + cpu.size() - 600, 600);
    if (std::fabs(mean(late) - mean(early)) > 5.0) ++drifted;
  }
  EXPECT_GE(drifted * 10, sim.num_containers() * 3);  // >= 30% drift > 5pp
}

}  // namespace
}  // namespace rptcn::trace
