#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "trace/alibaba_schema.h"
#include "trace/indicators.h"

namespace rptcn::trace {
namespace {

TEST(AlibabaSchema, ParsesContainerUsage) {
  // Two containers, rows deliberately out of time order.
  std::istringstream in(
      "c_1,m_1,20,30.0,40.0,1.2,0.3,10.0,0.1,0.2,5.0\n"
      "c_2,m_1,10,50.0,60.0,1.5,0.4,20.0,0.2,0.3,6.0\n"
      "c_1,m_1,10,25.0,39.0,1.1,0.2,9.0,0.1,0.1,4.0\n");
  const auto frames = load_alibaba_container_usage(in);
  ASSERT_EQ(frames.size(), 2u);
  const auto& c1 = frames.at("c_1");
  ASSERT_EQ(c1.length(), 2u);
  // Sorted by timestamp: t=10 row first.
  EXPECT_DOUBLE_EQ(c1.column("cpu_util_percent")[0], 25.0);
  EXPECT_DOUBLE_EQ(c1.column("cpu_util_percent")[1], 30.0);
  EXPECT_DOUBLE_EQ(c1.column("mpki")[1], 10.0);
  EXPECT_DOUBLE_EQ(c1.column("disk_io_percent")[0], 4.0);
  EXPECT_EQ(c1.indicators(), kIndicatorCount);
}

TEST(AlibabaSchema, EmptyFieldsBecomeNan) {
  std::istringstream in("c_1,m_1,10,30.0,,1.2,0.3,10.0,0.1,0.2,5.0\n");
  const auto frames = load_alibaba_container_usage(in);
  EXPECT_TRUE(std::isnan(frames.at("c_1").column("mem_util_percent")[0]));
}

TEST(AlibabaSchema, RejectsWrongColumnCount) {
  std::istringstream in("c_1,m_1,10,30.0\n");
  EXPECT_THROW(load_alibaba_container_usage(in), CheckError);
}

TEST(AlibabaSchema, RejectsGarbageNumbers) {
  std::istringstream in("c_1,m_1,ten,30.0,40.0,1.2,0.3,10.0,0.1,0.2,5.0\n");
  EXPECT_THROW(load_alibaba_container_usage(in), CheckError);
}

TEST(AlibabaSchema, ParsesMachineUsageWithNanCpi) {
  std::istringstream in(
      "m_1,10,45.0,55.0,0.4,12.0,0.3,0.4,7.0\n"
      "m_1,20,46.0,56.0,0.5,13.0,0.3,0.4,8.0\n");
  const auto frames = load_alibaba_machine_usage(in);
  ASSERT_EQ(frames.size(), 1u);
  const auto& m1 = frames.at("m_1");
  ASSERT_EQ(m1.length(), 2u);
  EXPECT_DOUBLE_EQ(m1.column("cpu_util_percent")[1], 46.0);
  EXPECT_TRUE(std::isnan(m1.column("cpi")[0]));  // absent at machine level
  EXPECT_DOUBLE_EQ(m1.column("mem_gps")[0], 0.4);
}

TEST(AlibabaSchema, SkipsBlankLines) {
  std::istringstream in(
      "\nc_1,m_1,10,30.0,40.0,1.2,0.3,10.0,0.1,0.2,5.0\n\n");
  const auto frames = load_alibaba_container_usage(in);
  EXPECT_EQ(frames.at("c_1").length(), 1u);
}

TEST(AlibabaSchema, MissingFileThrows) {
  EXPECT_THROW(load_alibaba_container_usage_file("/nonexistent/x.csv"),
               CheckError);
  EXPECT_THROW(load_alibaba_machine_usage_file("/nonexistent/x.csv"),
               CheckError);
}

TEST(AlibabaSchema, FrameFeedsThePipelineShape) {
  // A loaded frame has exactly the Table-I layout the pipeline expects.
  std::ostringstream rows;
  for (int t = 0; t < 50; ++t)
    rows << "c_9,m_1," << t * 10 << "," << 30 + t % 5 << ",40,1.2,0.3,10,0.1,0.2,5\n";
  std::istringstream in(rows.str());
  const auto frames = load_alibaba_container_usage(in);
  const auto& frame = frames.at("c_9");
  EXPECT_EQ(frame.indicators(), kIndicatorCount);
  EXPECT_TRUE(frame.has("cpu_util_percent"));
  EXPECT_TRUE(frame.has("mpki"));
  EXPECT_EQ(frame.length(), 50u);
}

}  // namespace
}  // namespace rptcn::trace
