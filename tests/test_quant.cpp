// Int8 quantization tests: the tensor/quant.h primitives (round-trip,
// saturation, degenerate rows, byte-identical determinism) and the
// serve/quant.h quantized serving path (accuracy vs float32, quantized()
// truth-telling, cross-tier bit-stability of the integer path).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/cnn_lstm.h"
#include "nn/lstm.h"
#include "nn/rptcn_net.h"
#include "serve/quant.h"
#include "serve/session.h"
#include "tensor/dispatch.h"
#include "tensor/quant.h"
#include "tensor/tensor_ops.h"

namespace rptcn {
namespace {

TEST(Quant, PerChannelRoundTripWithinHalfStep) {
  Rng rng(11);
  const std::size_t rows = 6, cols = 37;
  std::vector<float> w(rows * cols);
  // Rows at wildly different magnitudes: per-channel scales must adapt.
  for (std::size_t i = 0; i < rows; ++i) {
    const double mag = std::pow(10.0, static_cast<double>(i) - 3.0);
    for (std::size_t j = 0; j < cols; ++j)
      w[i * cols + j] = static_cast<float>(rng.normal(0.0, mag));
  }
  const QuantizedMatrix q = quantize_rows_symmetric(w.data(), rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.data.size(), rows * cols);
  ASSERT_EQ(q.scales.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    float max_abs = 0.0f;
    for (std::size_t j = 0; j < cols; ++j)
      max_abs = std::max(max_abs, std::abs(w[i * cols + j]));
    EXPECT_FLOAT_EQ(q.scales[i], max_abs / 127.0f);
    for (std::size_t j = 0; j < cols; ++j) {
      const float back =
          static_cast<float>(q.data[i * cols + j]) * q.scales[i];
      EXPECT_NEAR(back, w[i * cols + j], q.scales[i] * 0.5f + 1e-12f)
          << "row " << i << " col " << j;
    }
  }
}

TEST(Quant, SaturationClampsToSymmetricRange) {
  const float x[] = {300.0f, -300.0f, 127.4f, -127.6f, 5.0f, -5.0f, 0.0f};
  std::int8_t q[7];
  quantize_with_scale(x, 7, 1.0f, q);
  EXPECT_EQ(q[0], 127);    // clamps high
  EXPECT_EQ(q[1], -127);   // clamps low — never -128, the range is symmetric
  EXPECT_EQ(q[2], 127);
  EXPECT_EQ(q[3], -127);
  EXPECT_EQ(q[4], 5);
  EXPECT_EQ(q[5], -5);
  EXPECT_EQ(q[6], 0);

  // Ties round to even (nearbyintf under the default FP environment).
  const float ties[] = {2.5f, 3.5f, -2.5f, -3.5f};
  std::int8_t t[4];
  quantize_with_scale(ties, 4, 1.0f, t);
  EXPECT_EQ(t[0], 2);
  EXPECT_EQ(t[1], 4);
  EXPECT_EQ(t[2], -2);
  EXPECT_EQ(t[3], -4);
}

TEST(Quant, MaxMagnitudeMapsToExactly127) {
  Rng rng(13);
  std::vector<float> w(64);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 1.0));
  w[17] = 3.25f;  // strictly the largest magnitude
  const QuantizedMatrix q = quantize_rows_symmetric(w.data(), 1, w.size());
  EXPECT_EQ(q.data[17], 127);
  EXPECT_FLOAT_EQ(static_cast<float>(q.data[17]) * q.scales[0], 3.25f);
}

TEST(Quant, ZeroRowIsDegenerateButExact) {
  std::vector<float> w(2 * 9, 0.0f);
  w[9] = 0.5f;  // second row non-zero, first row all zeros
  const QuantizedMatrix q = quantize_rows_symmetric(w.data(), 2, 9);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f);
  for (std::size_t j = 0; j < 9; ++j) EXPECT_EQ(q.data[j], 0);
  EXPECT_FLOAT_EQ(q.scales[1], 0.5f / 127.0f);
  EXPECT_FLOAT_EQ(symmetric_scale(w.data(), 9), 1.0f);
}

TEST(Quant, QuantizationIsByteIdenticallyDeterministic) {
  Rng rng(17);
  std::vector<float> w(5 * 33);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 2.0));
  const QuantizedMatrix a = quantize_rows_symmetric(w.data(), 5, 33);
  const QuantizedMatrix b = quantize_rows_symmetric(w.data(), 5, 33);
  ASSERT_EQ(a.data.size(), b.data.size());
  EXPECT_EQ(std::memcmp(a.data.data(), b.data.data(), a.data.size()), 0);
  EXPECT_EQ(std::memcmp(a.scales.data(), b.scales.data(),
                        a.scales.size() * sizeof(float)),
            0);
}

TEST(Quant, SignFlippedWeightsQuantizeToSignFlippedCodes) {
  Rng rng(19);
  std::vector<float> w(3 * 21), neg(3 * 21);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 1.0));
    neg[i] = -w[i];
  }
  const QuantizedMatrix qp = quantize_rows_symmetric(w.data(), 3, 21);
  const QuantizedMatrix qn = quantize_rows_symmetric(neg.data(), 3, 21);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_FLOAT_EQ(qp.scales[i], qn.scales[i]);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(static_cast<int>(qp.data[i]), -static_cast<int>(qn.data[i]))
        << i;
}

TEST(Quant, GemmS8NtMatchesReference) {
  Rng rng(23);
  const std::size_t m = 7, n = 13, k = 41;
  std::vector<std::int8_t> a(m * k), b(n * k);
  for (auto& v : a)
    v = static_cast<std::int8_t>(rng.uniform_int(0, 254) - 127);
  for (auto& v : b)
    v = static_cast<std::int8_t>(rng.uniform_int(0, 254) - 127);
  std::vector<std::int32_t> c(m * n, -7);
  gemm_s8_nt(m, n, k, a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<std::int32_t>(a[i * k + p]) *
               static_cast<std::int32_t>(b[j * k + p]);
      ASSERT_EQ(c[i * n + j], acc) << i << "," << j;
    }
}

TEST(Quant, DequantizeBiasFoldsScalesAndBias) {
  const std::int32_t c[] = {10, -20, 30, 40};
  const float w_scales[] = {0.5f, 0.25f};
  const float bias[] = {1.0f, -1.0f};
  float out[4];
  dequantize_bias(c, 2, 2, 2.0f, w_scales, bias, out);
  EXPECT_FLOAT_EQ(out[0], 10.0f * (2.0f * 0.5f) + 1.0f);
  EXPECT_FLOAT_EQ(out[1], -20.0f * (2.0f * 0.25f) - 1.0f);
  EXPECT_FLOAT_EQ(out[2], 30.0f * (2.0f * 0.5f) + 1.0f);
  EXPECT_FLOAT_EQ(out[3], 40.0f * (2.0f * 0.25f) - 1.0f);

  float no_bias[4];
  dequantize_bias(c, 2, 2, 2.0f, w_scales, nullptr, no_bias);
  EXPECT_FLOAT_EQ(no_bias[0], 10.0f);
  EXPECT_FLOAT_EQ(no_bias[3], 20.0f);
}

Tensor random_batch(std::size_t n, std::size_t f, std::size_t t,
                    std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({n, f, t});
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

/// Accuracy gate shared by the per-net session tests: the int8 path must
/// track the float32 path closely on normalised [0,1]-style inputs.
void expect_quantized_close(const Tensor& quant, const Tensor& fp32) {
  ASSERT_EQ(quant.size(), fp32.size());
  double se = 0.0;
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < quant.size(); ++i) {
    const double d = static_cast<double>(quant.raw()[i]) -
                     static_cast<double>(fp32.raw()[i]);
    se += d * d;
    max_abs = std::max(max_abs, std::abs(static_cast<float>(d)));
  }
  const double mse = se / static_cast<double>(quant.size());
  EXPECT_LT(mse, 1e-4) << "quantized MSE vs float32";
  EXPECT_LT(max_abs, 0.05f) << "quantized max abs error vs float32";
}

TEST(Quant, LstmSessionServesInt8CloseToFloat) {
  nn::LstmNetOptions opt;
  opt.input_features = 3;
  opt.hidden = 8;
  opt.horizon = 2;
  opt.seed = 29;
  nn::LstmNet net(opt);
  serve::InferenceSession fp32(net);
  serve::InferenceSession q(net, serve::SessionOptions{true});
  EXPECT_FALSE(fp32.quantized());
  EXPECT_TRUE(q.quantized());

  const Tensor x = random_batch(5, 3, 16, 31);
  const Tensor yf = fp32.run(x);
  const Tensor yq = q.run(x);
  ASSERT_EQ(yq.dim(0), 5u);
  ASSERT_EQ(yq.dim(1), 2u);
  expect_quantized_close(yq, yf);

  // Two runs of the quantized session are bit-identical.
  const Tensor again = q.run(x);
  EXPECT_EQ(std::memcmp(yq.raw(), again.raw(), yq.size() * sizeof(float)),
            0);

  // Every quantized run bypassed the plan cache, and says so; the float
  // session served planned executables and reports zero bypasses.
  const serve::SessionStats qs = q.stats();
  EXPECT_EQ(qs.runs, 2u);
  EXPECT_EQ(qs.plan_bypass_quantized, 2u);
  const serve::SessionStats fs = fp32.stats();
  EXPECT_EQ(fs.runs, 1u);
  EXPECT_EQ(fs.plan_bypass_quantized, 0u);
}

TEST(Quant, BiLstmSessionServesInt8CloseToFloat) {
  nn::BiLstmNetOptions opt;
  opt.input_features = 2;
  opt.hidden = 6;
  opt.horizon = 1;
  opt.seed = 37;
  nn::BiLstmNet net(opt);
  serve::InferenceSession fp32(net);
  serve::InferenceSession q(net, serve::SessionOptions{true});
  EXPECT_TRUE(q.quantized());
  const Tensor x = random_batch(4, 2, 12, 41);
  expect_quantized_close(q.run(x), fp32.run(x));
}

TEST(Quant, CnnLstmSessionServesInt8CloseToFloat) {
  nn::CnnLstmOptions opt;
  opt.input_features = 2;
  opt.conv_channels = 4;
  opt.hidden = 6;
  opt.horizon = 1;
  opt.seed = 43;
  nn::CnnLstm net(opt);
  serve::InferenceSession fp32(net);
  serve::InferenceSession q(net, serve::SessionOptions{true});
  EXPECT_TRUE(q.quantized());
  const Tensor x = random_batch(4, 2, 12, 47);
  expect_quantized_close(q.run(x), fp32.run(x));
}

TEST(Quant, RptcnSessionIgnoresQuantizationAndSaysSo) {
  nn::RptcnOptions opt;
  opt.input_features = 2;
  opt.tcn.channels = {4, 4};
  opt.fc_dim = 4;
  opt.seed = 53;
  nn::RptcnNet net(opt);
  serve::InferenceSession fp32(net);
  serve::InferenceSession q(net, serve::SessionOptions{true});
  EXPECT_FALSE(q.quantized()) << "RPTCN is conv-bound and must stay float";

  const Tensor x = random_batch(3, 2, 16, 59);
  const Tensor yf = fp32.run(x);
  const Tensor yq = q.run(x);
  EXPECT_EQ(std::memcmp(yq.raw(), yf.raw(), yq.size() * sizeof(float)), 0)
      << "the declined-quantization session must serve the float path "
         "bit-identically";
  EXPECT_EQ(q.stats().plan_bypass_quantized, 0u)
      << "a declined quantization request must not count as a plan bypass";
}

TEST(Quant, QuantizedServingIsBitIdenticalAcrossTiers) {
  // The int8 GEMM accumulates exactly and the float gates go through the
  // bit-identical dispatched vexp/vtanh, so the quantized output must not
  // depend on the kernel tier at all.
  const KernelArch saved = kernel_arch();
  nn::LstmNetOptions opt;
  opt.input_features = 3;
  opt.hidden = 8;
  opt.seed = 61;
  nn::LstmNet net(opt);
  serve::InferenceSession q(net, serve::SessionOptions{true});
  ASSERT_TRUE(q.quantized());
  const Tensor x = random_batch(4, 3, 16, 67);

  set_kernel_arch_for_testing(KernelArch::kScalar);
  const Tensor scalar_out = q.run(x);
  set_kernel_arch_for_testing(best_supported_arch());
  const Tensor best_out = q.run(x);
  set_kernel_arch_for_testing(saved);

  EXPECT_EQ(std::memcmp(scalar_out.raw(), best_out.raw(),
                        scalar_out.size() * sizeof(float)),
            0)
      << "quantized serving diverged between scalar and "
      << kernel_arch_name(best_supported_arch());
}

TEST(Quant, SnapshotQuantizationIsDeterministic) {
  nn::LstmNetOptions opt;
  opt.input_features = 2;
  opt.hidden = 5;
  opt.seed = 71;
  nn::LstmNet net(opt);
  const serve::LstmNetSnap snap = serve::snapshot(net);
  const serve::QLstmNetSnap a = serve::quantize(snap);
  const serve::QLstmNetSnap b = serve::quantize(snap);
  ASSERT_EQ(a.lstm.w.data.size(), b.lstm.w.data.size());
  EXPECT_EQ(std::memcmp(a.lstm.w.data.data(), b.lstm.w.data.data(),
                        a.lstm.w.data.size()),
            0);
  EXPECT_EQ(std::memcmp(a.head.w.data.data(), b.head.w.data.data(),
                        a.head.w.data.size()),
            0);
  EXPECT_EQ(a.lstm.hidden, 5u);
}

}  // namespace
}  // namespace rptcn
