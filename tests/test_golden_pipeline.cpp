// Golden-trajectory regression test.
//
// Runs the full fixed-seed pipeline — simulated trace -> Algorithm 1
// (clean, normalise, PCC screen, expansion, windows) -> 2-epoch RPTCN
// train -> predict — and compares a handful of trajectory metrics against
// the committed fixture in tests/golden/. Every metric carries an explicit
// absolute + relative tolerance: wide enough to absorb libm variation
// across toolchains, tight enough that a kernel or preprocessing bug that
// moves a Table II metric fails loudly.
//
// To regenerate after an intentional numerics change:
//   RPTCN_UPDATE_GOLDEN=1 ./rptcn_tests --gtest_filter='GoldenPipeline.*'
// and commit the rewritten tests/golden/rptcn_pipeline.csv (and
// tests/golden/lstm_quant_serving.csv — the quantized-serving lane below
// uses the same fixture format and the same regen switch).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "graph/plan.h"
#include "serve/session.h"
#include "trace/cluster.h"

#ifndef RPTCN_GOLDEN_DIR
#error "RPTCN_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace rptcn {
namespace {

struct GoldenEntry {
  double value = 0.0;
  double abs_tol = 0.0;
  double rel_tol = 0.0;
};

using GoldenMap = std::map<std::string, GoldenEntry>;

std::string golden_path() {
  return std::string(RPTCN_GOLDEN_DIR) + "/rptcn_pipeline.csv";
}

GoldenMap read_golden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden fixture: " << path;
  GoldenMap golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string key, value, abs_tol, rel_tol;
    if (!std::getline(row, key, ',') || !std::getline(row, value, ',') ||
        !std::getline(row, abs_tol, ',') || !std::getline(row, rel_tol, ','))
      ADD_FAILURE() << "malformed golden line: " << line;
    else
      golden[key] = {std::stod(value), std::stod(abs_tol), std::stod(rel_tol)};
  }
  return golden;
}

void write_golden(const std::string& path, const GoldenMap& golden) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden fixture: " << path;
  out << "# Golden trajectory for the fixed-seed RPTCN pipeline\n"
         "# (tests/test_golden_pipeline.cpp). Regenerate with\n"
         "# RPTCN_UPDATE_GOLDEN=1 after intentional numerics changes.\n"
         "# key,value,abs_tol,rel_tol\n";
  out.precision(17);
  for (const auto& [key, entry] : golden)
    out << key << ',' << entry.value << ',' << entry.abs_tol << ','
        << entry.rel_tol << '\n';
}

/// The fixed-seed pipeline behind the trajectory: tiny simulated cluster,
/// Mul-Exp scenario, 2-epoch RPTCN. Every knob is pinned; any observable
/// drift comes from the code, not the configuration.
std::unique_ptr<core::RptcnPipeline> fit_golden_pipeline() {
  trace::TraceConfig trace_cfg;
  trace_cfg.num_machines = 2;
  trace_cfg.duration_steps = 400;
  trace_cfg.seed = 123;
  trace::ClusterSimulator sim(trace_cfg);
  sim.run();

  core::PipelineConfig cfg;
  cfg.target = "cpu_util_percent";
  cfg.model_name = "RPTCN";
  cfg.scenario = core::Scenario::kMulExp;
  cfg.prepare.window.window = 16;
  cfg.prepare.window.horizon = 1;
  cfg.model.nn.max_epochs = 2;
  cfg.model.nn.patience = 2;
  cfg.model.nn.seed = 7;
  cfg.model.rptcn.tcn.channels = {8, 8};
  cfg.model.rptcn.fc_dim = 8;

  auto pipeline = std::make_unique<core::RptcnPipeline>(cfg);
  pipeline->fit(sim.machine_trace(0));
  return pipeline;
}

std::map<std::string, double> run_trajectory() {
  const auto pipeline_ptr = fit_golden_pipeline();
  core::RptcnPipeline& pipeline = *pipeline_ptr;

  const auto acc = pipeline.test_accuracy();
  const auto& curves = pipeline.curves();
  const Tensor preds = pipeline.predict_test();
  double pred_abs_sum = 0.0;
  for (float v : preds.data()) pred_abs_sum += std::abs(v);
  const auto next = pipeline.predict_next();

  std::map<std::string, double> m;
  m["test_mse"] = acc.mse;
  m["test_mae"] = acc.mae;
  m["final_train_loss"] = curves.train_loss.back();
  m["final_valid_loss"] = curves.valid_loss.back();
  m["pred_mean_abs"] = pred_abs_sum / static_cast<double>(preds.size());
  m["predict_next_0"] = next.front();
  return m;
}

GoldenEntry with_default_tolerance(const std::string& key, double value) {
  // 2% relative catches any kernel/preprocessing regression (those move
  // losses by 10s of percent) while absorbing cross-toolchain libm noise
  // (measured well under 0.1%). The absolute floor covers near-zero values.
  GoldenEntry e;
  e.value = value;
  e.rel_tol = 2e-2;
  e.abs_tol = key == "predict_next_0" ? 1e-3 : 1e-6;
  return e;
}

TEST(GoldenPipeline, TrajectoryMatchesCommittedFixture) {
  const auto metrics = run_trajectory();

  if (std::getenv("RPTCN_UPDATE_GOLDEN") != nullptr) {
    GoldenMap fresh;
    for (const auto& [key, value] : metrics)
      fresh[key] = with_default_tolerance(key, value);
    write_golden(golden_path(), fresh);
    GTEST_LOG_(INFO) << "rewrote " << golden_path();
  }

  const GoldenMap golden = read_golden(golden_path());
  ASSERT_EQ(golden.size(), metrics.size())
      << "fixture key set out of sync with the test; regenerate with "
         "RPTCN_UPDATE_GOLDEN=1";
  for (const auto& [key, entry] : golden) {
    const auto it = metrics.find(key);
    ASSERT_NE(it, metrics.end()) << "fixture has unknown key " << key;
    const double tol = entry.abs_tol + entry.rel_tol * std::abs(entry.value);
    EXPECT_NEAR(it->second, entry.value, tol)
        << key << " drifted from the golden trajectory (allowed ±" << tol
        << "); if intentional, regenerate with RPTCN_UPDATE_GOLDEN=1";
  }
}

TEST(GoldenPipeline, PlannedServingIsBitIdenticalOnGoldenTrajectory) {
  // End-to-end gate for the JIT-lite executor: serve the golden pipeline's
  // fitted RPTCN (realistic feature count after PCC screening + Mul-Exp
  // expansion) through an InferenceSession and require every planned batched
  // row to be bit-identical to the eager single-window forward — the same
  // contract test_graph.cpp checks on synthetic nets, here on the full
  // Algorithm 1 data path.
  const bool planning_was = graph::planning_enabled();
  const auto pipeline = fit_golden_pipeline();
  ASSERT_TRUE(pipeline->fitted());
  serve::InferenceSession session(*pipeline->forecaster());

  const auto& test = pipeline->dataset().test;
  const std::size_t n = std::min<std::size_t>(6, test.samples());
  const std::size_t f = test.inputs.dim(1);
  const std::size_t t = test.inputs.dim(2);
  ASSERT_GT(n, 0u);
  Tensor batch({n, f, t});
  std::copy_n(test.inputs.raw(), n * f * t, batch.raw());

  graph::set_planning_enabled(true);
  const Tensor planned = session.run(batch);

  graph::set_planning_enabled(false);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor one({1, f, t});
    std::copy_n(test.inputs.raw() + i * f * t, f * t, one.raw());
    const Tensor eager = session.run(one);
    for (std::size_t h = 0; h < planned.dim(1); ++h)
      ASSERT_EQ(planned.at(i, h), eager.at(0, h))
          << "planned row " << i << " diverges from the eager forward";
  }
  graph::set_planning_enabled(planning_was);
}

/// Fixed-seed LSTM pipeline for the quantized-serving lane (the RPTCN net
/// is conv-bound and declines quantization, so the int8 path is gated on
/// the LSTM it actually serves).
std::unique_ptr<core::RptcnPipeline> fit_golden_lstm_pipeline() {
  trace::TraceConfig trace_cfg;
  trace_cfg.num_machines = 2;
  trace_cfg.duration_steps = 400;
  trace_cfg.seed = 123;
  trace::ClusterSimulator sim(trace_cfg);
  sim.run();

  core::PipelineConfig cfg;
  cfg.target = "cpu_util_percent";
  cfg.model_name = "LSTM";
  cfg.scenario = core::Scenario::kMulExp;
  cfg.prepare.window.window = 16;
  cfg.prepare.window.horizon = 1;
  cfg.model.nn.max_epochs = 2;
  cfg.model.nn.patience = 2;
  cfg.model.nn.seed = 7;
  cfg.model.lstm.hidden = 8;

  auto pipeline = std::make_unique<core::RptcnPipeline>(cfg);
  pipeline->fit(sim.machine_trace(0));
  return pipeline;
}

std::string quant_golden_path() {
  return std::string(RPTCN_GOLDEN_DIR) + "/lstm_quant_serving.csv";
}

TEST(GoldenPipeline, QuantizedLstmServingStaysOnGoldenTrajectory) {
  // The int8 quantized lane: fit the fixed-seed LSTM pipeline, serve its
  // held-out test windows through a float32 session and an int8 session,
  // and gate (a) the absolute quantized trajectory against the committed
  // fixture and (b) the quantized-vs-float32 delta against hard bounds.
  // The delta bounds are the accuracy contract of serve/quant.h: they do
  // not come from the fixture, so no regeneration can loosen them.
  const auto pipeline = fit_golden_lstm_pipeline();
  ASSERT_TRUE(pipeline->fitted());
  serve::InferenceSession fp32(*pipeline->forecaster());
  serve::InferenceSession quant(*pipeline->forecaster(),
                                serve::SessionOptions{true});
  ASSERT_TRUE(quant.quantized());
  ASSERT_FALSE(fp32.quantized());

  const auto& test = pipeline->dataset().test;
  const std::size_t n = test.samples();
  ASSERT_GT(n, 0u);
  const Tensor yf = fp32.run(test.inputs);
  const Tensor yq = quant.run(test.inputs);
  ASSERT_EQ(yq.size(), yf.size());

  double se = 0.0, ape = 0.0, q_abs = 0.0;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < yq.size(); ++i) {
    const double f = yf.raw()[i];
    const double q = yq.raw()[i];
    se += (q - f) * (q - f);
    ape += std::abs(q - f) / (std::abs(f) + 1e-6);
    q_abs += std::abs(q);
    max_abs = std::max(max_abs, std::abs(q - f));
  }
  const double count = static_cast<double>(yq.size());
  const double delta_mse = se / count;
  const double delta_mape = ape / count;

  // Hard accuracy bounds (normalised [0,1] targets).
  EXPECT_LT(delta_mse, 1e-4) << "int8 serving drifted from float32 (MSE)";
  EXPECT_LT(delta_mape, 2e-2) << "int8 serving drifted from float32 (MAPE)";
  EXPECT_LT(max_abs, 0.05) << "int8 serving drifted from float32 (max)";

  std::map<std::string, double> metrics;
  metrics["quant_pred_mean_abs"] = q_abs / count;
  metrics["quant_vs_float_mse"] = delta_mse;
  metrics["quant_vs_float_mape"] = delta_mape;

  if (std::getenv("RPTCN_UPDATE_GOLDEN") != nullptr) {
    GoldenMap fresh;
    for (const auto& [key, value] : metrics) {
      GoldenEntry e;
      e.value = value;
      // The delta metrics sit near the int8 noise floor, so they get a
      // generous relative band plus an absolute floor; the absolute
      // trajectory gets the usual 2%.
      e.rel_tol = key == "quant_pred_mean_abs" ? 2e-2 : 0.5;
      e.abs_tol = key == "quant_pred_mean_abs" ? 1e-6 : 1e-6;
      fresh[key] = e;
    }
    write_golden(quant_golden_path(), fresh);
    GTEST_LOG_(INFO) << "rewrote " << quant_golden_path();
  }

  const GoldenMap golden = read_golden(quant_golden_path());
  ASSERT_EQ(golden.size(), metrics.size())
      << "fixture key set out of sync with the test; regenerate with "
         "RPTCN_UPDATE_GOLDEN=1";
  for (const auto& [key, entry] : golden) {
    const auto it = metrics.find(key);
    ASSERT_NE(it, metrics.end()) << "fixture has unknown key " << key;
    const double tol = entry.abs_tol + entry.rel_tol * std::abs(entry.value);
    EXPECT_NEAR(it->second, entry.value, tol)
        << key << " drifted from the quantized golden trajectory (allowed ±"
        << tol << "); if intentional, regenerate with RPTCN_UPDATE_GOLDEN=1";
  }
}

TEST(GoldenPipeline, TrajectoryIsDeterministic) {
  // The comparison above is only meaningful if the trajectory itself is
  // reproducible within one binary.
  const auto a = run_trajectory();
  const auto b = run_trajectory();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, value] : a) {
    ASSERT_TRUE(b.count(key)) << key;
    EXPECT_DOUBLE_EQ(value, b.at(key)) << key;
  }
}

}  // namespace
}  // namespace rptcn
